#!/usr/bin/env python
"""Static checker: every ``.event(...)`` call matches the log schema.

The structured logger validates event names and fields at runtime, but
a misspelled field on a rarely-hit path (a drift warning, a fault
branch) only blows up when that path fires — in production, not in CI.
This checker closes the gap statically: it walks every ``.event(...)``
call in ``src/`` whose receiver looks like a structured logger and
asserts, against the registry in :mod:`repro.obs.log`:

* the event name is a string literal registered in ``EVENTS``;
* every keyword is either an envelope field (``level``, ``device_id``,
  ``shard``, ``sim_time_ns``, ``seed``, ``trace``) or declared in the
  event's field set;
* no ``**kwargs`` unpacking (it would defeat static checking) and no
  computed event names.

Usage::

    PYTHONPATH=src python tools/check_log_schema.py [src/]

Exits non-zero listing every violation.  Wired into ``make test-fast``
and the CI lint lane.
"""

from __future__ import annotations

import ast
import pathlib
import sys

#: Receiver names that we treat as structured loggers.  Matches the
#: repo convention: ``log = obs.logger()`` / ``self._log``.
LOGGER_NAMES = frozenset({"log", "_log", "logger", "_logger", "parent_log"})

#: Envelope keywords accepted by ``StructuredLogger.event`` on top of
#: each event's declared field set.
ENVELOPE_KEYWORDS = frozenset(
    {"level", "device_id", "shard", "sim_time_ns", "seed", "trace"}
)


def _load_events():
    from repro.obs.log import EVENTS

    return EVENTS


def _receiver_is_logger(func: ast.Attribute) -> bool:
    """True for ``log.event`` / ``self._log.event`` / ``obs.logger().event``."""
    target = func.value
    if isinstance(target, ast.Name):
        return target.id in LOGGER_NAMES
    if isinstance(target, ast.Attribute):
        return target.attr in LOGGER_NAMES
    if isinstance(target, ast.Call):
        callee = target.func
        return (
            isinstance(callee, ast.Attribute) and callee.attr == "logger"
        ) or (isinstance(callee, ast.Name) and callee.id == "logger")
    return False


def check_file(path: pathlib.Path, events) -> list:
    violations = []
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:  # pragma: no cover - the suite would fail first
        return [(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "event"):
            continue
        if not _receiver_is_logger(func):
            continue
        where = (path, node.lineno)
        if not node.args:
            violations.append((*where, "event() call without an event name"))
            continue
        name_node = node.args[0]
        if not (isinstance(name_node, ast.Constant) and isinstance(name_node.value, str)):
            violations.append(
                (*where, "event name must be a string literal (got an expression)")
            )
            continue
        name = name_node.value
        spec = events.get(name)
        if spec is None:
            violations.append((*where, f"unregistered event {name!r}"))
            continue
        for keyword in node.keywords:
            if keyword.arg is None:
                violations.append(
                    (*where, f"{name}: **kwargs unpacking defeats static checking")
                )
                continue
            if keyword.arg in ENVELOPE_KEYWORDS:
                continue
            if keyword.arg not in spec.fields:
                declared = ", ".join(sorted(spec.fields)) or "(none)"
                violations.append(
                    (
                        *where,
                        f"{name}: undeclared field {keyword.arg!r} "
                        f"(declares: {declared})",
                    )
                )
    return violations


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    roots = [pathlib.Path(arg) for arg in argv] or [pathlib.Path("src")]
    events = _load_events()
    files = []
    for root in roots:
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.py")))
    violations = []
    for path in files:
        violations.extend(check_file(path, events))
    for path, line, message in violations:
        print(f"{path}:{line}: {message}", file=sys.stderr)
    checked = len(files)
    if violations:
        print(
            f"check_log_schema: {len(violations)} violation(s) "
            f"across {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"check_log_schema: OK ({checked} files, {len(events)} registered events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Coverage gate: enforce per-package line-coverage floors.

Reads the JSON report produced by ``pytest --cov ...
--cov-report=json:coverage.json`` and enforces two kinds of floors:

* **gated packages** (the ``GATES`` table) — subsystems whose PRs
  landed with a hard coverage requirement must stay at or above their
  floor: ``src/repro/serve/``, ``src/repro/attacks/``,
  ``src/repro/conformance/`` and the second-modality modules
  ``src/repro/learn/contexts.py`` / ``src/repro/learn/ensemble.py``
  at **85 %** aggregate line coverage.  The event-bus control plane
  gets *per-module* floors on top of the ``serve/`` aggregate —
  ``src/repro/serve/bus.py`` and ``src/repro/serve/recalibrate.py``
  each at 85 % — so a well-covered data plane cannot mask an
  untested control plane;
* the rest of ``src/repro/`` — must never regress below the captured
  baseline in ``tools/coverage_baseline.json``.

Run ``python tools/check_coverage.py coverage.json --update-baseline``
to ratchet the baseline up after a coverage improvement (review the
diff like any other change; the baseline may only go up).

Exit codes: 0 = every gate passes, 1 = a gate failed or the report is
unreadable.  Kept dependency-free (stdlib only) so the gate itself
needs nothing beyond the JSON report.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: Package prefix -> hard aggregate line-coverage floor (percent).
GATES = {
    "src/repro/serve/": 85.0,
    "src/repro/serve/bus.py": 85.0,
    "src/repro/serve/recalibrate.py": 85.0,
    "src/repro/attacks/": 85.0,
    "src/repro/conformance/": 85.0,
    "src/repro/learn/contexts.py": 85.0,
    "src/repro/learn/ensemble.py": 85.0,
}
BASELINE_PATH = pathlib.Path(__file__).parent / "coverage_baseline.json"


def aggregate(files: dict, predicate) -> tuple:
    covered = statements = 0
    for path, entry in files.items():
        normalized = path.replace("\\", "/")
        if predicate(normalized):
            summary = entry["summary"]
            covered += summary["covered_lines"]
            statements += summary["num_statements"]
    percent = 100.0 * covered / statements if statements else 100.0
    return percent, covered, statements


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="coverage.json produced by pytest-cov")
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite tools/coverage_baseline.json from this report "
        "(only ever raises the floor)",
    )
    args = parser.parse_args(argv)

    try:
        report = json.loads(pathlib.Path(args.report).read_text())
        files = report["files"]
    except (OSError, KeyError, json.JSONDecodeError) as exc:
        print(f"coverage gate: unreadable report {args.report}: {exc}")
        return 1

    rest_pct, rest_cov, rest_stmts = aggregate(
        files,
        lambda p: "src/repro/" in p
        and not any(prefix in p for prefix in GATES),
    )

    baseline = json.loads(BASELINE_PATH.read_text())
    rest_floor = float(baseline["rest_of_repro_percent"])

    if args.update_baseline:
        new_floor = max(rest_floor, round(rest_pct, 1))
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "comment": baseline.get("comment", ""),
                    "rest_of_repro_percent": new_floor,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"baseline: rest-of-repro floor {rest_floor} -> {new_floor}")

    failed = False
    for prefix, floor in GATES.items():
        pct, cov, stmts = aggregate(files, lambda p, pre=prefix: pre in p)
        print(
            f"coverage {prefix:<30}: {pct:5.1f}% "
            f"({cov}/{stmts} lines, floor {floor}%)"
        )
        if stmts == 0:
            print(f"coverage gate: no {prefix} files in the report")
            failed = True
        elif pct < floor:
            print(f"coverage gate FAILED: {prefix} below {floor}%")
            failed = True

    print(
        f"coverage rest of src/repro: {rest_pct:5.1f}% "
        f"({rest_cov}/{rest_stmts} lines, floor {rest_floor}%)"
    )
    if rest_pct < rest_floor:
        print(f"coverage gate FAILED: rest of repro below baseline {rest_floor}%")
        failed = True
    if not failed:
        print("coverage gate passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

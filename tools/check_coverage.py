#!/usr/bin/env python
"""Coverage gate: enforce per-package line-coverage floors.

Reads the JSON report produced by ``pytest --cov ...
--cov-report=json:coverage.json`` and enforces two floors:

* ``src/repro/serve/`` — the serving subsystem must stay at or above
  **85 %** aggregate line coverage (a hard requirement of its PR);
* the rest of ``src/repro/`` — must never regress below the captured
  baseline in ``tools/coverage_baseline.json``.

Run ``python tools/check_coverage.py coverage.json --update-baseline``
to ratchet the baseline up after a coverage improvement (review the
diff like any other change; the baseline may only go up).

Exit codes: 0 = both gates pass, 1 = a gate failed or the report is
unreadable.  Kept dependency-free (stdlib only) so the gate itself
needs nothing beyond the JSON report.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

SERVE_PREFIX = "src/repro/serve/"
SERVE_FLOOR = 85.0
BASELINE_PATH = pathlib.Path(__file__).parent / "coverage_baseline.json"


def aggregate(files: dict, predicate) -> tuple:
    covered = statements = 0
    for path, entry in files.items():
        normalized = path.replace("\\", "/")
        if predicate(normalized):
            summary = entry["summary"]
            covered += summary["covered_lines"]
            statements += summary["num_statements"]
    percent = 100.0 * covered / statements if statements else 100.0
    return percent, covered, statements


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="coverage.json produced by pytest-cov")
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite tools/coverage_baseline.json from this report "
        "(only ever raises the floor)",
    )
    args = parser.parse_args(argv)

    try:
        report = json.loads(pathlib.Path(args.report).read_text())
        files = report["files"]
    except (OSError, KeyError, json.JSONDecodeError) as exc:
        print(f"coverage gate: unreadable report {args.report}: {exc}")
        return 1

    serve_pct, serve_cov, serve_stmts = aggregate(
        files, lambda p: SERVE_PREFIX in p
    )
    rest_pct, rest_cov, rest_stmts = aggregate(
        files, lambda p: SERVE_PREFIX not in p and "src/repro/" in p
    )

    baseline = json.loads(BASELINE_PATH.read_text())
    rest_floor = float(baseline["rest_of_repro_percent"])

    if args.update_baseline:
        new_floor = max(rest_floor, round(rest_pct, 1))
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "comment": baseline.get("comment", ""),
                    "rest_of_repro_percent": new_floor,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"baseline: rest-of-repro floor {rest_floor} -> {new_floor}")

    print(
        f"coverage src/repro/serve/ : {serve_pct:5.1f}% "
        f"({serve_cov}/{serve_stmts} lines, floor {SERVE_FLOOR}%)"
    )
    print(
        f"coverage rest of src/repro: {rest_pct:5.1f}% "
        f"({rest_cov}/{rest_stmts} lines, floor {rest_floor}%)"
    )

    failed = False
    if serve_stmts == 0:
        print("coverage gate: no src/repro/serve/ files in the report")
        failed = True
    if serve_pct < SERVE_FLOOR:
        print(f"coverage gate FAILED: serve below {SERVE_FLOOR}%")
        failed = True
    if rest_pct < rest_floor:
        print(f"coverage gate FAILED: rest of repro below baseline {rest_floor}%")
        failed = True
    if not failed:
        print("coverage gate passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

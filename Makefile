PYTHON ?= python

.PHONY: install test bench report examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

report: bench
	@echo "see REPORT.md and benchmarks/out/"

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

clean:
	rm -rf benchmarks/out REPORT.md test_output.txt bench_output.txt \
	       .pytest_cache $$(find . -name __pycache__ -type d)

PYTHON ?= python
export PYTHONPATH := src

.PHONY: install test test-fast test-faults test-contexts test-bus bench bench-smoke bench-kernels check report examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

# Coverage is opt-in by installation: when pytest-cov is importable
# (CI installs it; see .github/workflows/ci.yml) test-fast collects
# line coverage and enforces the floors in tools/check_coverage.py
# (>=85% on src/repro/serve/, src/repro/attacks/ and
# src/repro/conformance/, per-module floors on serve/bus.py and
# serve/recalibrate.py, never below tools/coverage_baseline.json
# for the rest).  Without pytest-cov the suite runs uninstrumented.
COVFLAGS := $(shell $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1 \
    && echo "--cov=src/repro --cov-report=html:htmlcov --cov-report=json:coverage.json")

# Tier-1 without the cacheprovider plugin (no .pytest_cache churn) and
# with any warning raised *from repro code* promoted to an error, so
# new deprecations in our own modules fail CI instead of scrolling by.
# Tests marked @pytest.mark.slow (exhaustive sweeps, end-to-end monitor
# runs) are skipped here; `make test` and CI's full job still run them.
# The fused fleet-kernel differential suite (tests/kernels/test_fused.py
# — float64 bitwise pins, float32 ULP budget, padding purity) is
# unmarked and therefore part of this tier.
test-fast:
	$(PYTHON) tools/check_log_schema.py src
	$(PYTHON) -m pytest tests/ -p no:cacheprovider -q -m "not slow" -W "error:::repro" $(COVFLAGS)
ifneq ($(COVFLAGS),)
	$(PYTHON) tools/check_coverage.py coverage.json
endif

# The fault campaign: plan semantics, runner hardening drills
# (retry/timeout/crash), serial-vs-parallel manifest identity, cache
# sabotage, monitor degradation, golden fault fixture, and the
# hypothesis property suites.  Failure manifests are published to
# $REPRO_TEST_ARTIFACTS (CI uploads them on a red run).
test-faults:
	$(PYTHON) -m pytest tests/faults tests/learn/test_properties.py \
	    tests/learn/test_contexts_properties.py \
	    tests/pipeline/test_faults.py tests/pipeline/test_runner_hardening.py \
	    tests/pipeline/test_monitoring_faults.py tests/pipeline/test_golden_faults.py \
	    -p no:cacheprovider -q -W "error:::repro"

# The second-modality suite alone: ContextDetector units, the
# hypothesis differential/property layer, ensemble fusion math, and
# the serve-layer shard-invariance tests — everything marked
# @pytest.mark.contexts (fresh-interpreter seed stability included,
# since the marker filter overrides the slow exclusion here).
test-contexts:
	$(PYTHON) -m pytest tests/ -p no:cacheprovider -q -m contexts -W "error:::repro"

# The event-bus control-plane suite alone: bus unit tests, the
# hypothesis scheduling properties, the chaos campaigns against the
# bus fault sites, the lockstep ≡ async conformance oracle and the
# recalibration state machine — everything marked @pytest.mark.bus.
# Deterministic by construction: no wall-clock sleeps anywhere in the
# suite (interleavings come from seeded SchedulingJitter, time from
# the simulator clock), so it is safe at any parallelism.
test-bus:
	$(PYTHON) -m pytest tests/ -p no:cacheprovider -q -m bus -W "error:::repro"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Fast perf guard: asserts disabled observability adds <5% to the
# Memometer burst datapath.  Seconds, not minutes — safe for every push.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/test_obs_overhead.py -q -s

# Kernel speedup gate: times every repro.kernels hot path under both
# backends (the fused fleet path and the fleet-throughput payload
# included), writes BENCH_kernels.json, exits 5 if the vectorized
# backend falls below its per-kernel speedup floor.
bench-kernels:
	$(PYTHON) -m repro.cli bench --smoke --check --out BENCH_kernels.json

check: test bench-smoke

report: bench
	@echo "see REPORT.md and benchmarks/out/"

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

clean:
	rm -rf benchmarks/out REPORT.md test_output.txt bench_output.txt \
	       htmlcov coverage.json .coverage \
	       .pytest_cache $$(find . -name __pycache__ -type d)

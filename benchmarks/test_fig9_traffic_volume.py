"""Figure 9: memory traffic volume when the read syscall is hijacked.

Paper observations: "The moment when the rootkit is being loaded is
distinguishable as expected.  However, after the launch the traffic
does not show abnormalities in terms of the volume" — because the
hijacking wrapper still calls the original read handler.

This is the paper's case against volume monitoring; the benchmark
measures the volume-baseline classifier.
"""

import numpy as np

from repro.learn.baselines import TrafficVolumeDetector
from repro.viz.ascii import render_series


def test_fig9_traffic_volume(benchmark, report, paper_artifacts, rootkit_outcome):
    outcome = rootkit_outcome
    volumes = outcome.traffic_volumes()
    load = outcome.scenario.attack_interval

    baseline = TrafficVolumeDetector(p_percent=0.5).fit(
        paper_artifacts.data.training
    )
    flags = baseline.classify_series(outcome.scenario.series)

    pre_mean = volumes[:load].mean()
    post = volumes[load + 2 :]
    report.table(
        ["quantity", "paper", "measured"],
        [
            ["trace length", "400 intervals", f"{len(volumes)}"],
            ["rootkit load interval", "~150", f"{load}"],
            [
                "load spike vs normal",
                "clearly distinguishable (~6-8x)",
                f"{volumes[load] / pre_mean:.1f}x",
            ],
            [
                "post-load volume shift",
                "no abnormality",
                f"{abs(post.mean() - pre_mean) / pre_mean:.1%}",
            ],
            [
                "volume detector: load flagged",
                "yes",
                str(bool(flags[load])),
            ],
            [
                "volume detector: post-load flag rate",
                "~0 (cannot see hijack)",
                f"{flags[load + 2:].mean():.1%}",
            ],
        ],
        title="Figure 9 — memory traffic volume under the rootkit",
    )
    report.add(
        "total accesses per interval:",
        render_series(
            volumes.astype(float), events={"load": load}, height=12, width=100
        ),
    )

    # Shape assertions.
    assert volumes[load] > 3 * pre_mean  # the load spike
    assert abs(post.mean() - pre_mean) < 0.1 * pre_mean  # stealthy after
    assert flags[load]  # volume sees the load...
    assert flags[load + 2 :].mean() <= 0.02  # ...but nothing afterwards

    benchmark(lambda: baseline.classify_series(outcome.scenario.series))

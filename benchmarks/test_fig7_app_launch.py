"""Figure 7: log probability density when qsort is launched and exits.

Paper observations over a 500-interval trace:

* before the attack (250 intervals): 0 MHMs below theta_0.5 (FPR 0 %)
  and 2 below theta_1 (FPR 0.8 %);
* qsort (6 ms / 30 ms) launches "some moments after the 250th
  interval": densities drop immediately and stay low;
* some attack-phase MHMs still look normal ("during those intervals
  qsort does not execute"), yet most are low because the other tasks'
  timings shift;
* after qsort exits the densities recover.

The benchmark measures online scoring of the full 480-interval series.
"""

import numpy as np

from repro.viz.ascii import render_series


def test_fig7_app_launch(benchmark, report, paper_artifacts, fig7_outcome):
    outcome = fig7_outcome
    detector = paper_artifacts.detector
    densities = outcome.log10_densities
    inject = outcome.scenario.attack_interval
    revert = outcome.scenario.revert_interval

    report.table(
        ["quantity", "paper", "measured"],
        [
            ["trace length", "500 intervals", f"{len(densities)}"],
            ["launch interval", "~250", f"{inject}"],
            ["exit interval", "(before end)", f"{revert}"],
            [
                "pre-attack abnormal @ theta_0.5",
                "0 (FPR 0%)",
                f"{outcome.pre_attack_false_positives(0.5)} "
                f"(FPR {outcome.pre_attack_fpr(0.5):.1%})",
            ],
            [
                "pre-attack abnormal @ theta_1",
                "2 (FPR 0.8%)",
                f"{outcome.pre_attack_false_positives(1.0)} "
                f"(FPR {outcome.pre_attack_fpr(1.0):.1%})",
            ],
            [
                "attack intervals below theta_1",
                "most (some look normal)",
                f"{outcome.attack_detection_rate(1.0):.1%}",
            ],
            [
                "detection latency @ theta_1",
                "immediate",
                f"{outcome.detection_latency_intervals(1.0)} intervals",
            ],
            [
                "post-exit FPR @ theta_1",
                "recovers to normal",
                f"{outcome.post_revert_fpr(1.0):.1%}",
            ],
        ],
        title="Figure 7 — application addition/deletion (qsort)",
    )
    report.add(
        "log10 Pr(M) series (markers: | = launch/exit, -- = theta lines):",
        render_series(
            densities,
            thresholds={
                "t.5": detector.log10_threshold(0.5),
                "t1": detector.log10_threshold(1.0),
            },
            events={"launch": inject, "exit": revert},
            height=14,
            width=100,
        ),
    )

    # Shape assertions (the figure's story).
    pre = densities[:inject]
    active = densities[outcome.ground_truth]
    post = densities[revert + 3 :]
    assert outcome.pre_attack_fpr(0.5) <= 0.008
    assert outcome.pre_attack_fpr(1.0) <= 0.02
    assert np.median(active) < np.median(pre) - 5
    assert outcome.attack_detection_rate(1.0) >= 0.5
    assert outcome.detection_latency_intervals(1.0) <= 3
    assert np.median(post) > np.median(active) + 3

    benchmark(lambda: detector.log10_series(outcome.scenario.series))

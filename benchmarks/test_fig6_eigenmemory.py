"""Figure 6: dimensionality reduction with 16 eigenmemories.

The paper illustrates Eq. (1): an original MHM (L = 1,472) is
mean-shifted and projected onto 16 eigenmemories, giving a reduced MHM
of 16 weights; the linear combination Sum_k w_k u_k approximates the
mean-shifted map, and more eigenmemories give a better approximation.

The benchmark measures the projection (the secure core's per-MHM
transform step).
"""

import numpy as np

from repro.learn.pca import Eigenmemory


def test_fig6_eigenmemory(benchmark, report, paper_artifacts):
    training = paper_artifacts.data.training
    matrix = training.matrix()

    model = Eigenmemory(num_components=16).fit(matrix)
    sample = matrix[37]
    weights = model.transform(sample[np.newaxis])[0]

    report.add(
        "Figure 6 — projection of one MHM onto 16 eigenmemories",
        f"original dimensionality L  : {matrix.shape[1]}",
        f"reduced dimensionality L'  : {len(weights)}",
        "",
        "reduced MHM (weights w_1..w_16):",
        "  " + ", ".join(f"{w:9.1f}" for w in weights[:8]),
        "  " + ", ".join(f"{w:9.1f}" for w in weights[8:]),
        "",
    )

    rows = []
    for k in (1, 2, 4, 9, 16, 32):
        sub = Eigenmemory(num_components=k).fit(matrix)
        err = sub.reconstruction_error(matrix).mean()
        retained = sub.retained_variance_
        rows.append([k, f"{retained:.6%}", f"{err:.2f}"])
    report.table(
        ["L'", "variance retained", "mean RMS reconstruction error"],
        rows,
        title="Approximation quality vs number of eigenmemories",
    )

    # Shape claims: error decreases monotonically with L'; 16 components
    # reconstruct the sample well.
    errors = [float(row[2]) for row in rows]
    assert all(a >= b for a, b in zip(errors, errors[1:]))
    reconstructed = model.inverse_transform(weights)
    shifted = sample - model.mean_
    residual = np.linalg.norm((sample - reconstructed)) / max(
        1.0, np.linalg.norm(shifted)
    )
    assert residual < 0.5

    benchmark(lambda: model.transform(sample[np.newaxis]))

"""Ablation A11: adding temporal structure to the detector.

The paper's detector is memoryless across intervals.  A first-order
Markov chain over the GMM component sequence (the hyperperiod's phase
order) adds a second detection channel.  Two questions:

1. does it cost false positives on normal behaviour?
2. what does it catch that the per-interval test cannot?  The clean
   demonstration is a *scrambled replay*: individually-normal MHMs in
   a random order, which leaves per-interval densities untouched by
   construction.
"""

import numpy as np

from repro.learn.temporal import TemporalDetector
from repro.pipeline.experiments import run_rootkit_experiment
from repro.sim.platform import Platform


def test_ablation_temporal(benchmark, report, paper_artifacts):
    base_detector = paper_artifacts.detector
    temporal = TemporalDetector(base_detector, p_percent=1.0).fit(
        paper_artifacts.data.training, paper_artifacts.data.validation
    )

    # Normal behaviour: the extra channel must stay quiet.
    platform = Platform(paper_artifacts.config.with_seed(930))
    normal = platform.collect_intervals(200)
    base_fpr = float(base_detector.classify_series(normal, 1.0).mean())
    temporal_fpr = float(temporal.classify_series(normal).mean())

    # Scrambled replay: permute a normal validation window.
    rng = np.random.default_rng(0)
    matrix = paper_artifacts.data.validation.matrix()
    scrambled = matrix[rng.permutation(len(matrix))]
    base_replay = float(base_detector.classify_series(scrambled, 1.0).mean())
    temporal_replay = float(temporal.classify_series(scrambled).mean())

    # The rootkit's stealthy phase: timing drift is temporal by nature.
    outcome = run_rootkit_experiment(paper_artifacts, scenario_seed=931)
    load = outcome.scenario.attack_interval
    series = outcome.scenario.series
    base_rootkit = float(
        base_detector.classify_series(series, 1.0)[load + 2 :].mean()
    )
    temporal_rootkit = float(temporal.classify_series(series)[load + 2 :].mean())

    rows = [
        ["normal boot FPR", f"{base_fpr:.1%}", f"{temporal_fpr:.1%}"],
        [
            "scrambled replay (flag rate)",
            f"{base_replay:.1%}",
            f"{temporal_replay:.1%}",
        ],
        [
            "rootkit stealthy-phase detection",
            f"{base_rootkit:.1%}",
            f"{temporal_rootkit:.1%}",
        ],
    ]
    report.table(
        ["condition", "per-interval (paper)", "+ temporal channel"],
        rows,
        title="A11 — Markov transition channel on top of the paper's detector",
    )
    report.add(
        "A permutation of normal MHMs cannot move per-interval densities",
        "(the paper's detector is provably blind to it); the transition",
        "channel flags the broken hyperperiod order immediately.  On the",
        "rootkit's stealthy phase — a timing anomaly — the temporal",
        "channel matches or improves the per-interval rate, at a small",
        "false-positive premium on normal boots.",
    )

    # 1) modest FPR cost;
    assert temporal_fpr <= base_fpr + 0.10
    # 2) the replay is invisible per-interval, visible temporally;
    assert base_replay <= 0.05
    assert temporal_replay >= 5 * max(base_replay, 0.01)
    # 3) never worse on the rootkit's stealthy phase.
    assert temporal_rootkit >= base_rootkit

    benchmark(lambda: temporal.classify_series(normal[:50]))

"""Ablation A10: rootkit stealth sweep — how slow must evil be?

Section 5.3 observes that the rootkit's *only* post-load channel into
the MHM is the timing perturbation its per-call delay induces (the
wrapper itself is outside the monitored region).  That makes the delay
a stealth knob: a patient attacker who adds less work per hijacked
call perturbs the schedule less.  This ablation sweeps the wrapper's
extra latency and measures the post-load detection rate — the
detection-vs-stealth trade-off curve implicit in Figure 10.
"""

import numpy as np

from repro.attacks import SyscallHijackRootkit
from repro.pipeline.experiments import run_rootkit_experiment

LATENCIES_US = (0, 5, 25, 60, 120)


def test_ablation_stealth(benchmark, report, paper_artifacts):
    rows = []
    rates = {}
    for latency_us in LATENCIES_US:
        outcome = run_rootkit_experiment(
            paper_artifacts,
            scenario_seed=920 + latency_us,
            extra_latency_ns=latency_us * 1_000,
        )
        flags = outcome.flags(1.0)
        load = outcome.scenario.attack_interval
        post_rate = float(flags[load + 2 :].mean())
        shift = float(
            np.median(outcome.log10_densities[load + 2 :])
            - np.median(outcome.log10_densities[:load])
        )
        rates[latency_us] = post_rate
        rows.append(
            [
                f"{latency_us} us",
                str(bool(flags[load] or flags[load + 1])),
                f"{post_rate:.1%}",
                f"{shift:+.2f}",
            ]
        )

    report.table(
        [
            "wrapper delay per read",
            "load flagged",
            "post-load flag rate",
            "density shift (log10)",
        ],
        rows,
        title="A10 — rootkit stealth sweep (paper uses ~25 us-class delays)",
    )
    report.add(
        "A zero-delay wrapper is invisible after the load (it executes",
        "entirely outside the monitored region and perturbs nothing);",
        "detection rises with the per-call delay as sha's timing shifts.",
        "The load spike itself is caught at every stealth level — the",
        "one thing a hijacking LKM cannot avoid is being loaded.",
    )

    # The load is always caught.
    for row in rows:
        assert row[1] == "True", row
    # The stealth trade-off is monotone-ish: heavy delays are easier to
    # see than near-zero ones.
    assert rates[0] <= 0.05
    assert rates[120] >= rates[0]
    assert rates[120] >= 0.05

    benchmark.pedantic(
        lambda: run_rootkit_experiment(
            paper_artifacts, scenario_seed=999, extra_latency_ns=25_000
        ),
        rounds=1,
        iterations=1,
    )

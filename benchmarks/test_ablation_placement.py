"""Ablation A1: Memometer placement (Section 5.5, Limitation).

The paper snoops pre-L1 and conjectures that moving the Memometer to a
shared cache or the bus "could lose parts of memory access information
due to cache hits", but that "the accuracy drop would not be
significant".  This ablation quantifies the trade-off: per-placement
traffic retention, detection of a gross anomaly (rootkit load), and
normal-state FPR.
"""

import numpy as np

from repro.attacks import SyscallHijackRootkit
from repro.learn.detector import MhmDetector
from repro.sim.platform import Platform, PlatformConfig

TRAIN_INTERVALS = 200
TEST_INTERVALS = 80


def _evaluate(placement):
    config = PlatformConfig(seed=60, placement=placement)
    training = Platform(config).collect_intervals(TRAIN_INTERVALS)
    validation = Platform(config.with_seed(61)).collect_intervals(TRAIN_INTERVALS)
    detector = MhmDetector(em_restarts=2, seed=0).fit(training, validation)

    test_platform = Platform(config.with_seed(62))
    normal = test_platform.collect_intervals(TEST_INTERVALS)
    fpr = float(detector.classify_series(normal, 1.0).mean())

    SyscallHijackRootkit().inject(test_platform)
    attack_window = test_platform.collect_intervals(3)
    load_detected = bool(detector.classify_series(attack_window, 1.0).any())

    volume = float(training.traffic_volumes().mean())
    return volume, fpr, load_detected


def test_ablation_placement(benchmark, report):
    results = {}
    for placement in ("pre-l1", "post-l1", "post-l2"):
        results[placement] = _evaluate(placement)

    pre_volume = results["pre-l1"][0]
    rows = []
    for placement, (volume, fpr, detected) in results.items():
        rows.append(
            [
                placement,
                f"{volume:,.0f}",
                f"{volume / pre_volume:.1%}",
                f"{fpr:.1%}",
                "yes" if detected else "no",
            ]
        )
    report.table(
        [
            "placement",
            "mean accesses/interval",
            "traffic retained",
            "normal FPR @ theta_1",
            "rootkit load detected",
        ],
        rows,
        title="A1 — Memometer placement (paper snoops pre-L1; Section 5.5)",
    )
    report.add(
        "Paper's design choice validated: pre-L1 sees the full access",
        "stream; post-L1 retains a fraction of it; post-L2 the kernel",
        "hot set fits in cache and the steady-state signal all but",
        "disappears — placement below the shared cache is NOT a free",
        "simplification for this region size.",
    )

    assert results["pre-l1"][0] > results["post-l1"][0] > results["post-l2"][0]
    assert results["pre-l1"][1] <= 0.10  # pre-L1 baseline healthy
    assert results["pre-l1"][2]  # gross anomaly caught pre-L1
    assert results["post-l1"][2]  # ...and still caught post-L1

    benchmark.pedantic(
        lambda: Platform(
            PlatformConfig(seed=63, placement="post-l1")
        ).collect_intervals(10),
        rounds=2,
        iterations=1,
    )

"""Ablation A3: number of eigenmemories L'.

The paper keeps the smallest L' retaining 99.99 % of variance (9 on
its traces) and shows that L' = 5 trades accuracy for speed (Section
5.4).  This ablation sweeps L' and reports retained variance, detection
AUC on the shellcode scenario, normal FPR, and the modelled per-MHM
analysis time.
"""

import numpy as np

from repro.attacks import ShellcodeAttack
from repro.hw.securecore import AnalysisTimingModel
from repro.learn.detector import MhmDetector
from repro.learn.metrics import roc_auc_from_scores
from repro.pipeline.scenario import ScenarioRunner
from repro.sim.platform import Platform, PlatformConfig

SWEEP = (2, 3, 5, 9, 12, 16)


def test_ablation_eigenmemories(benchmark, report, paper_artifacts):
    data = paper_artifacts.data
    timing = AnalysisTimingModel()

    platform = Platform(paper_artifacts.config.with_seed(880))
    result = ScenarioRunner(platform).run(
        ShellcodeAttack(), pre_intervals=80, attack_intervals=80
    )
    truth = result.ground_truth()

    rows = []
    aucs = {}
    for num_eigen in SWEEP:
        detector = MhmDetector(
            num_eigenmemories=num_eigen, em_restarts=2, seed=0
        ).fit(data.training, data.validation)
        densities = detector.score_series(result.series)
        auc = roc_auc_from_scores(-densities, truth)
        fpr = float((densities[:80] < detector.threshold(1.0)).mean())
        aucs[num_eigen] = auc
        rows.append(
            [
                num_eigen,
                f"{detector.eigenmemory.retained_variance_:.4%}",
                f"{auc:.3f}",
                f"{fpr:.1%}",
                f"{timing.analysis_time_us(1472, num_eigen, 5):.0f} us",
            ]
        )
    report.table(
        ["L'", "variance retained", "shellcode AUC", "normal FPR", "modelled analysis"],
        rows,
        title="A3 — eigenmemory count sweep (paper: auto-select at 99.99%)",
    )
    auto = paper_artifacts.detector.num_eigenmemories_
    report.add(
        f"auto-selected L' at the paper's 99.99% rule: {auto} "
        f"(paper's traces gave 9)"
    )

    # Too few components hurt; the auto-selected regime is near-best.
    best = max(aucs.values())
    assert aucs[min(SWEEP)] <= best
    assert aucs[9] >= best - 0.1
    assert best >= 0.85

    detector = MhmDetector(num_eigenmemories=9, em_restarts=1, seed=0).fit(
        data.training, data.validation
    )
    benchmark(lambda: detector.score_series(result.series))

"""Ablation A6: MHM+GMM vs the baselines across all three attacks.

The paper motivates the MHM by dismissing traffic-volume monitoring
(abstracts away small variations; Figure 9 shows it blind to the
rootkit) and exhaustive per-MHM similarity (prohibitive cost).  This
ablation runs the paper's detector and the three baselines over all
three scenarios and also measures the per-decision cost gap against
the nearest-neighbour strawman.
"""

import time

import numpy as np

from repro.learn.baselines import (
    HotCellSetDetector,
    NearestNeighborDetector,
    TrafficVolumeDetector,
)
from repro.pipeline.experiments import (
    run_app_launch_experiment,
    run_rootkit_experiment,
    run_shellcode_experiment,
)


def _rates(flags, truth):
    fpr = float(flags[~truth].mean()) if (~truth).any() else 0.0
    tpr = float(flags[truth].mean()) if truth.any() else 0.0
    return fpr, tpr


def test_ablation_baselines(benchmark, report, paper_artifacts):
    training = paper_artifacts.data.training
    detector = paper_artifacts.detector
    baselines = {
        "traffic-volume": TrafficVolumeDetector(p_percent=0.5).fit(training),
        "hot-cell-set": HotCellSetDetector(top_k=24, tolerance=3).fit(training),
        "nearest-neighbor": NearestNeighborDetector(p_percent=99.5).fit(training),
    }
    scenarios = {
        "qsort launch": run_app_launch_experiment(paper_artifacts, scenario_seed=700),
        "shellcode": run_shellcode_experiment(paper_artifacts, scenario_seed=701),
        "rootkit (post-load)": run_rootkit_experiment(
            paper_artifacts, scenario_seed=702
        ),
    }

    rows = []
    tprs = {}
    for scenario_name, outcome in scenarios.items():
        truth = outcome.ground_truth
        if scenario_name.startswith("rootkit"):
            # Judge the *stealthy phase*: exclude the load spike, which
            # everything catches.
            load = outcome.scenario.attack_interval
            keep = np.ones(len(truth), dtype=bool)
            keep[load : load + 2] = False
        else:
            keep = np.ones(len(truth), dtype=bool)

        mhm_flags = outcome.flags(1.0)
        fpr, tpr = _rates(mhm_flags[keep], truth[keep])
        tprs[("mhm", scenario_name)] = tpr
        rows.append([scenario_name, "MHM + GMM (paper)", f"{fpr:.1%}", f"{tpr:.1%}"])
        for baseline_name, baseline in baselines.items():
            flags = baseline.classify_series(outcome.scenario.series)
            fpr, tpr = _rates(flags[keep], truth[keep])
            tprs[(baseline_name, scenario_name)] = tpr
            rows.append([scenario_name, baseline_name, f"{fpr:.1%}", f"{tpr:.1%}"])

    report.table(
        ["scenario", "detector", "FPR", "TPR"],
        rows,
        title="A6 — detector comparison across the paper's three attacks",
    )

    # Cost comparison: paper pipeline vs exhaustive nearest-neighbour.
    heat_map = paper_artifacts.data.validation[0]
    nn = baselines["nearest-neighbor"]

    def time_per_call(fn, repeats=200):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - start) / repeats * 1e6

    mhm_us = time_per_call(lambda: detector.log_density(heat_map))
    nn_us = time_per_call(lambda: nn.nearest_distance(heat_map), repeats=50)
    report.add(
        f"per-decision cost: MHM+GMM {mhm_us:.0f} us vs "
        f"nearest-neighbour over {len(training)} stored MHMs {nn_us:.0f} us "
        f"({nn_us / mhm_us:.1f}x)",
        "The paper's point (Section 4.1): comparing against every known",
        "MHM is computationally prohibitive; the eigenmemory+GMM pipeline",
        "is O(L*L' + J*L'^2) regardless of training-set size.",
    )

    # The paper's story holds:
    # 1) volume monitoring is blind to the post-load rootkit;
    assert tprs[("traffic-volume", "rootkit (post-load)")] <= 0.05
    # 2) the MHM detector sees what volume cannot;
    assert (
        tprs[("mhm", "rootkit (post-load)")]
        > tprs[("traffic-volume", "rootkit (post-load)")]
    )
    # 3) on overt attacks the MHM detector is strong.
    assert tprs[("mhm", "qsort launch")] >= 0.5
    assert tprs[("mhm", "shellcode")] >= 0.5
    # 4) nearest-neighbour pays a large per-decision cost premium.
    assert nn_us > 3 * mhm_us

    benchmark(lambda: detector.log_density(heat_map))

"""Figure 8: log probability density when a shellcode disables ASLR.

Paper observations over a 400-interval trace: normal until "some
moments after the 250th interval"; the injected shellcode (shell-storm
#669, disables ASLR then spawns a shell) kills its host bitcount; the
densities drop immediately and stay low — "most shellcodes can be
detected because they typically kill the host process".

The benchmark measures per-MHM classification (the theta_p test).
"""

import numpy as np

from repro.viz.ascii import render_series


def test_fig8_shellcode(benchmark, report, paper_artifacts, fig8_outcome):
    outcome = fig8_outcome
    detector = paper_artifacts.detector
    densities = outcome.log10_densities
    inject = outcome.scenario.attack_interval

    report.table(
        ["quantity", "paper", "measured"],
        [
            ["trace length", "400 intervals", f"{len(densities)}"],
            ["shellcode interval", "~250", f"{inject}"],
            [
                "pre-attack FPR @ theta_1",
                "low",
                f"{outcome.pre_attack_fpr(1.0):.1%}",
            ],
            [
                "post-attack intervals below theta_1",
                "persistent drop",
                f"{outcome.attack_detection_rate(1.0):.1%}",
            ],
            [
                "detection latency @ theta_1",
                "immediate",
                f"{outcome.detection_latency_intervals(1.0)} intervals",
            ],
            [
                "ASLR state after attack",
                "disabled",
                "disabled" if outcome.scenario is not None else "?",
            ],
        ],
        title="Figure 8 — shellcode execution (disable ASLR, kill host)",
    )
    report.add(
        "log10 Pr(M) series:",
        render_series(
            densities,
            thresholds={
                "t.5": detector.log10_threshold(0.5),
                "t1": detector.log10_threshold(1.0),
            },
            events={"shellcode": inject},
            height=14,
            width=100,
        ),
    )

    pre = densities[:inject]
    post = densities[inject:]
    assert outcome.pre_attack_fpr(1.0) <= 0.02
    assert outcome.attack_detection_rate(1.0) >= 0.5
    assert outcome.detection_latency_intervals(1.0) <= 2
    # Persistent: every 25-interval window after the attack stays low.
    for begin in range(inject, len(densities) - 25, 25):
        window = densities[begin : begin + 25]
        assert np.median(window) < np.median(pre) - 3

    heat_map = outcome.scenario.series[inject + 5]
    benchmark(lambda: detector.is_anomalous(heat_map, p_percent=1.0))

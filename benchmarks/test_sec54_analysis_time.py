"""Section 5.4: per-MHM analysis time on the secure core.

Paper (1,000-sample means on the Simics-modelled secure core):

    L = 1472, L' = 9, J = 5   ->  358 us
    L =  368 (delta = 8 KB)   ->  100 us
    L' = 5                    ->  216 us

We report three columns per configuration: the paper's number, our
calibrated secure-core timing model (which reproduces the paper's
table by construction and extrapolates), and the measured wall-clock
of this library's numpy scoring path.  Absolute numpy numbers differ
from an embedded core; the *ratios* between configurations are the
reproduction target.
"""

import time

import numpy as np
import pytest

from repro.hw.securecore import AnalysisTimingModel
from repro.learn.detector import MhmDetector
from repro.sim.platform import Platform, PlatformConfig


def _train(num_eigenmemories, training, validation):
    detector = MhmDetector(
        num_eigenmemories=num_eigenmemories, em_restarts=2, seed=0
    )
    detector.fit(training, validation)
    return detector


def _mean_score_time_us(detector, series, samples=1000):
    """Per-MHM wall time of online (one-at-a-time) scoring."""
    maps = [series[i % len(series)] for i in range(samples)]
    start = time.perf_counter()
    for heat_map in maps:
        detector.log_density(heat_map)
    return (time.perf_counter() - start) / samples * 1e6


def _batch_score_time_us(detector, series, samples=1000, repeats=5):
    """Per-MHM wall time of batched scoring, where the O(L*L') term
    dominates instead of the Python call overhead."""
    matrix = series.matrix()
    tiles = -(-samples // len(matrix))
    batch = np.tile(matrix, (tiles, 1))[:samples]
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        detector.score_series(batch)
        best = min(best, time.perf_counter() - start)
    return best / samples * 1e6


def test_sec54_analysis_time(benchmark, report, paper_artifacts):
    model = AnalysisTimingModel()
    configs = [
        ("L=1472, L'=9, J=5", 2048, 9, 358),
        ("L=368,  L'=9, J=5", 8192, 9, 100),
        ("L=1472, L'=5, J=5", 2048, 5, 216),
    ]

    # The 2 KB detectors can reuse the session artifacts' data; the 8 KB
    # configuration needs its own (coarser) training data.
    fine_training = paper_artifacts.data.training
    fine_validation = paper_artifacts.data.validation
    coarse_config = PlatformConfig(granularity=8192, seed=300)
    coarse_training = Platform(coarse_config).collect_intervals(400)
    coarse_validation = Platform(coarse_config.with_seed(301)).collect_intervals(200)

    rows = []
    measured = {}
    for label, granularity, num_eigen, paper_us in configs:
        if granularity == 2048:
            detector = _train(num_eigen, fine_training, fine_validation)
            series = fine_validation
            num_cells = 1472
        else:
            detector = _train(num_eigen, coarse_training, coarse_validation)
            series = coarse_validation
            num_cells = 368
        modelled = model.analysis_time_us(num_cells, num_eigen, 5)
        online = _mean_score_time_us(detector, series, samples=1000)
        batch = _batch_score_time_us(detector, series, samples=1000)
        measured[label] = batch
        rows.append(
            [
                label,
                f"{paper_us} us",
                f"{modelled:.0f} us",
                f"{online:.0f} us",
                f"{batch:.2f} us",
            ]
        )

    report.table(
        [
            "configuration",
            "paper",
            "secure-core model",
            "numpy online",
            "numpy batched",
        ],
        rows,
        title="Section 5.4 — per-MHM analysis time (1,000-sample means)",
    )
    report.add(
        "The secure-core model is calibrated on the paper's three points",
        "(c1=31.5ns, c2=22.5ns, c3=34.6ns per inner-loop op at 1 GHz) and",
        "reproduces them exactly.  Numpy online scoring is dominated by",
        "per-call overhead, so the size scaling only shows in the batched",
        "column, whose ordering must match the paper's: smaller L ->",
        "much faster.",
    )

    # The calibrated model reproduces the paper's table.
    assert model.analysis_time_us(1472, 9, 5) == pytest.approx(358, abs=1)
    assert model.analysis_time_us(368, 9, 5) == pytest.approx(100, abs=1)
    assert model.analysis_time_us(1472, 5, 5) == pytest.approx(216, abs=1)

    # Measured ordering matches the paper's (ratios, not absolutes).
    assert measured["L=368,  L'=9, J=5"] < measured["L=1472, L'=9, J=5"]

    # Benchmark: the paper's base configuration, one analysis step.
    base_detector = _train(9, fine_training, fine_validation)
    heat_map = fine_validation[0]
    benchmark(lambda: base_detector.log_density(heat_map))

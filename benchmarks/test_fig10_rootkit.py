"""Figure 10: log probability density when a rootkit hijacks read.

Paper observations: the load is flagged; afterwards "even such stealthy
activities showed somewhat low probability densities, though not always
statistically distinguishable", and the abnormal MHMs "appear
synchronized with sha (whose period is 100 ms)" because the per-call
read delays perturb sha's timing.

The benchmark measures one full secure-core analysis step
(mean-shift + projection + GMM density + theta test).
"""

import numpy as np

from repro.viz.ascii import render_series


def test_fig10_rootkit(benchmark, report, paper_artifacts, rootkit_outcome):
    outcome = rootkit_outcome
    detector = paper_artifacts.detector
    densities = outcome.log10_densities
    load = outcome.scenario.attack_interval
    flags = outcome.flags(1.0)

    # sha's period is 100 ms = 10 intervals: check the phase alignment
    # of the post-load flagged intervals.
    post_flagged = np.flatnonzero(flags[load + 2 :]) + load + 2
    phase_counts = np.bincount(post_flagged % 10, minlength=10)
    top_phase_share = (
        phase_counts.max() / phase_counts.sum() if phase_counts.sum() else 0.0
    )

    report.table(
        ["quantity", "paper", "measured"],
        [
            ["trace length", "400 intervals", f"{len(densities)}"],
            ["load interval", "~150", f"{load}"],
            ["load flagged @ theta_1", "yes", str(bool(flags[load] or flags[load + 1]))],
            [
                "pre-attack FPR @ theta_1",
                "low",
                f"{outcome.pre_attack_fpr(1.0):.1%}",
            ],
            [
                "post-hijack intervals below theta_1",
                "intermittent, not always",
                f"{flags[load + 2:].mean():.1%}",
            ],
            [
                "post-hijack density shift",
                "somewhat low",
                f"{np.median(densities[load + 2:]) - np.median(densities[:load]):+.2f} log10",
            ],
            [
                "flag concentration on one 10-interval phase",
                "synchronized with sha",
                f"{top_phase_share:.0%} on phase {int(phase_counts.argmax())}",
            ],
        ],
        title="Figure 10 — MHM densities under the read-hijacking rootkit",
    )
    report.add(
        "log10 Pr(M) series:",
        render_series(
            densities,
            thresholds={
                "t.5": detector.log10_threshold(0.5),
                "t1": detector.log10_threshold(1.0),
            },
            events={"load": load},
            height=14,
            width=100,
        ),
    )

    # Shape assertions.
    assert flags[load] or flags[load + 1]  # the load is caught
    assert outcome.pre_attack_fpr(1.0) <= 0.02
    post_rate = flags[load + 2 :].mean()
    assert 0.02 <= post_rate <= 0.8  # intermittent, not silent, not total
    assert np.median(densities[load + 2 :]) <= np.median(densities[:load])
    if post_flagged.size >= 5:
        # Flags cluster on few phases of the 100 ms hyper-pattern.
        assert top_phase_share >= 0.3

    heat_map = outcome.scenario.series[load + 7]
    benchmark(lambda: detector.as_scorer(1.0)(heat_map))

"""Section 5.2: the training protocol.

Paper: 10 normal runs x 3 s -> 3,000 MHMs of 1,472 cells each; 9
eigenmemories retain > 99.99 % of the variance; GMM with J = 5 fitted
by 10-restart EM; thresholds set to p-quantiles of a separate normal
set's densities.

The benchmark measures the end-to-end training step on the reduced
representation (the expensive part after data collection).
"""

import numpy as np
import pytest

from repro.learn.gmm import GaussianMixtureModel


def test_sec52_training(benchmark, report, paper_artifacts):
    data = paper_artifacts.data
    detector = paper_artifacts.detector
    eigen = detector.eigenmemory

    report.table(
        ["quantity", "paper", "measured"],
        [
            ["training MHMs", "3,000 (10 x 3 s)", f"{data.num_training:,}"],
            ["cells per MHM (L)", "1,472", f"{detector.eigenmemory.mean_.shape[0]:,}"],
            ["eigenmemories (L')", "9", f"{eigen.num_components_}"],
            [
                "variance retained",
                "> 99.99 %",
                f"{eigen.retained_variance_:.6%}",
            ],
            ["GMM components (J)", "5", f"{detector.num_gaussians}"],
            ["EM restarts", "10", f"{detector.em_restarts}"],
            ["validation MHMs", "another normal set", f"{data.num_validation:,}"],
            [
                "theta_0.5 (log10)",
                "0.5%-quantile",
                f"{detector.log10_threshold(0.5):.2f}",
            ],
            [
                "theta_1 (log10)",
                "1%-quantile",
                f"{detector.log10_threshold(1.0):.2f}",
            ],
        ],
        title="Section 5.2 — training protocol (paper vs measured)",
    )
    spectrum = ", ".join(
        f"{v:.4f}" for v in eigen.explained_variance_ratio_[:10]
    )
    report.add(f"leading variance ratios: {spectrum}")

    assert data.num_training == 3000
    assert eigen.retained_variance_ >= 0.9999
    # The paper found 9 on its Simics traces; our synthetic kernel's
    # activity count is in the same regime.
    assert 5 <= eigen.num_components_ <= 20
    assert detector.threshold(0.5) <= detector.threshold(1.0)

    # Expected FPR equals p on the calibration set by construction.
    flags = detector.classify_series(data.validation, p_percent=1.0)
    assert flags.mean() == pytest.approx(0.01, abs=0.005)

    # Benchmark: GMM training (J=5, one k-means-seeded restart) on the
    # reduced 3,000-sample training set.
    reduced = eigen.transform(data.training)

    def fit_gmm_once():
        return GaussianMixtureModel(
            num_components=5, num_restarts=1, seed=0
        ).fit(reduced)

    model = benchmark.pedantic(fit_gmm_once, rounds=3, iterations=1)
    assert np.isfinite(model.training_log_likelihood_)

"""Observability overhead smoke benchmark (``make bench-smoke``).

The zero-overhead claim of :mod:`repro.obs` is structural — with
observability disabled, every instrument is a shared no-op object, so
the hot snoop datapath pays a handful of bound-method calls per
*burst* (never per access).  This benchmark pins the claim down with a
number: driving one million snooped accesses through
``Memometer.observe_burst`` must cost at most 5% more than a
hand-inlined copy of the same datapath with every instrument call
deleted.

Run directly (no session-scoped training involved)::

    PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py -q
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.hw.memometer import COUNTER_MAX, ControlRegisters, Memometer
from repro.sim.trace import AccessBurst

BURSTS = 1_000
ACCESSES_PER_BURST = 1_000  # 1e6 accesses total
REPEATS = 9
MAX_OVERHEAD = 0.05

REGISTERS = ControlRegisters(
    base_address=0xC000_0000,
    region_size=0x20_0000,  # 2 MB kernel .text
    granularity=2048,
    interval_ns=10_000_000,
)


def _make_stream(seed: int = 0) -> list[AccessBurst]:
    rng = np.random.default_rng(seed)
    base, size = REGISTERS.base_address, REGISTERS.region_size
    stream = []
    for i in range(BURSTS):
        addresses = rng.integers(
            base - size // 8, base + size + size // 8, size=ACCESSES_PER_BURST
        ).astype(np.int64)
        weights = np.ones(ACCESSES_PER_BURST, dtype=np.int64)
        stream.append(AccessBurst(time_ns=i, addresses=addresses, weights=weights))
    return stream


class RawMemometer:
    """``Memometer.observe_burst`` with every instrument call deleted.

    Kept byte-for-byte in step with the real datapath (same filtering,
    same bincount, same saturating clamp) so the comparison isolates
    exactly the cost of the no-op instrument calls.
    """

    def __init__(self, registers: ControlRegisters):
        self.registers = registers
        self.spec = registers.spec
        self._buffers = [
            np.zeros(self.spec.num_cells, dtype=np.uint64) for _ in range(2)
        ]
        self._active = 0
        self.snooped_accesses = 0
        self.accepted_accesses = 0

    def observe_burst(self, burst: AccessBurst) -> None:
        total = int(burst.weights.sum())
        self.snooped_accesses += total
        indices, in_region = self.spec.cell_indices(burst.addresses)
        kept = burst.weights[in_region]
        if not kept.size:
            return
        increments = np.bincount(
            indices, weights=kept, minlength=self.spec.num_cells
        ).astype(np.uint64)
        buf = self._buffers[self._active]
        summed = buf + increments
        np.minimum(summed, COUNTER_MAX, out=buf, casting="unsafe")
        self.accepted_accesses += int(kept.sum())


def _time_once(meter, stream) -> int:
    start = time.perf_counter_ns()
    for burst in stream:
        meter.observe_burst(burst)
    return time.perf_counter_ns() - start


def _paired_rounds(stream):
    """Per-round (raw, instrumented) wall times, measured back-to-back.

    Timing both datapaths inside the same round means they share one
    CPU-frequency/noise window; the per-round *ratio* is therefore far
    more stable than either absolute time on a busy machine.
    """
    rounds = []
    for _ in range(REPEATS):
        baseline = _time_once(RawMemometer(REGISTERS), stream)
        instrumented = _time_once(Memometer(REGISTERS), stream)
        rounds.append((baseline, instrumented))
    return rounds


def test_obs_overhead(report):
    obs.disable()  # the claim under test is the *disabled* path
    stream = _make_stream()

    _paired_rounds(stream[:50])  # warm-up both sides
    rounds = _paired_rounds(stream)

    ratios = sorted(instr / base for base, instr in rounds)
    overhead = ratios[len(ratios) // 2] - 1.0  # median paired ratio
    baseline_ns = min(base for base, _ in rounds)
    accesses = BURSTS * ACCESSES_PER_BURST
    report.add(
        "Disabled-observability overhead on Memometer.observe_burst",
        f"(median of {REPEATS} paired rounds, {accesses:.0e} accesses each)",
        "",
    )
    report.table(
        ["quantity", "value"],
        [
            ["raw datapath (best)", f"{baseline_ns / 1e6:.1f} ms"],
            ["median paired overhead", f"{overhead:+.2%}"],
            ["spread", f"{ratios[0] - 1.0:+.2%} .. {ratios[-1] - 1.0:+.2%}"],
            ["budget", f"{MAX_OVERHEAD:.0%}"],
        ],
    )
    assert overhead < MAX_OVERHEAD, (
        f"no-op instruments cost {overhead:.2%} on observe_burst "
        f"(budget {MAX_OVERHEAD:.0%})"
    )


def test_raw_and_instrumented_agree_bit_for_bit():
    """The shadow datapath must stay in step with the real one."""
    obs.disable()
    stream = _make_stream(seed=7)[:100]
    raw, real = RawMemometer(REGISTERS), Memometer(REGISTERS)
    for burst in stream:
        raw.observe_burst(burst)
        real.observe_burst(burst)
    np.testing.assert_array_equal(raw._buffers[0], real.active_counts())
    assert raw.snooped_accesses == real.snooped_accesses
    assert raw.accepted_accesses == real.accepted_accesses

"""Ablation A5: monitoring interval sweep.

The paper's 10 ms interval is "arbitrarily chosen".  The interval sets
the detection latency floor (one MHM per interval) and how many task
phases each MHM aggregates — too short and maps get sparse/noisy, too
long and anomalies are averaged away.  This ablation sweeps the
interval against the shellcode scenario.
"""

import numpy as np

from repro.attacks import ShellcodeAttack
from repro.learn.detector import MhmDetector
from repro.learn.metrics import roc_auc_from_scores
from repro.pipeline.scenario import ScenarioRunner
from repro.sim.engine import NS_PER_MS
from repro.sim.platform import Platform, PlatformConfig

INTERVALS_MS = (5, 10, 20, 50)


def _evaluate(interval_ms):
    config = PlatformConfig(interval_ns=interval_ms * NS_PER_MS, seed=90)
    # Keep total observed time constant (~2.5 s of training).
    train_count = int(2_500 / interval_ms)
    training = Platform(config).collect_intervals(train_count)
    validation = Platform(config.with_seed(91)).collect_intervals(train_count // 2)
    detector = MhmDetector(em_restarts=2, seed=0).fit(training, validation)

    platform = Platform(config.with_seed(92))
    pre = int(800 / interval_ms)
    during = int(800 / interval_ms)
    result = ScenarioRunner(platform).run(
        ShellcodeAttack(), pre_intervals=pre, attack_intervals=during
    )
    densities = detector.score_series(result.series)
    truth = result.ground_truth()
    auc = roc_auc_from_scores(-densities, truth)
    flags = densities < detector.threshold(1.0)
    fpr = float(flags[:pre].mean())
    latency_intervals = int(np.argmax(flags[pre:])) if flags[pre:].any() else -1
    latency_ms = latency_intervals * interval_ms if latency_intervals >= 0 else -1
    return auc, fpr, latency_ms


def test_ablation_interval(benchmark, report):
    rows = []
    results = {}
    for interval_ms in INTERVALS_MS:
        auc, fpr, latency_ms = _evaluate(interval_ms)
        results[interval_ms] = (auc, fpr, latency_ms)
        rows.append(
            [
                f"{interval_ms} ms",
                f"{auc:.3f}",
                f"{fpr:.1%}",
                f"{latency_ms} ms" if latency_ms >= 0 else "missed",
            ]
        )
    report.table(
        ["interval", "shellcode AUC", "normal FPR", "detection latency"],
        rows,
        title="A5 — monitoring interval sweep (paper: 10 ms, arbitrary)",
    )
    report.add(
        "Detection works across the sweep; the interval mainly sets the",
        "latency floor (one interval) and the storage/analysis rate.",
        "Very short intervals aggregate fewer activities per map (noisier",
        "scores, lower AUC); very long ones give fewer training maps per",
        "second of observation (worse theta calibration).  The paper's",
        "10 ms sits comfortably in the middle.",
    )

    for interval_ms, (auc, fpr, latency_ms) in results.items():
        assert auc >= 0.70, interval_ms
        assert latency_ms >= 0, interval_ms
        assert latency_ms <= 3 * interval_ms, interval_ms
    assert results[10][0] >= results[5][0]  # 10 ms beats the noisy 5 ms

    config = PlatformConfig(interval_ns=5 * NS_PER_MS, seed=93)
    benchmark.pedantic(
        lambda: Platform(config).collect_intervals(20), rounds=2, iterations=1
    )

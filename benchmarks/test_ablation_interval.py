"""Ablation A5: monitoring interval sweep.

The paper's 10 ms interval is "arbitrarily chosen".  The interval sets
the detection latency floor (one MHM per interval) and how many task
phases each MHM aggregates — too short and maps get sparse/noisy, too
long and anomalies are averaged away.  This ablation sweeps the
interval against the shellcode scenario.

Each interval is one seeded :class:`~repro.pipeline.runner.ExperimentJob`
(training seed 90, validation 91, scenario 92 — the historical values);
the sweep keeps total observed time constant (~2.5 s of training).
"""

from repro.pipeline.runner import ExperimentJob, ExperimentRunner, TrainSpec, expand_grid
from repro.sim.engine import NS_PER_MS
from repro.sim.platform import Platform, PlatformConfig

INTERVALS_MS = (5, 10, 20, 50)


def _grid():
    jobs = []
    for point in expand_grid({"interval_ms": INTERVALS_MS}):
        interval_ms = point["interval_ms"]
        train_count = int(2_500 / interval_ms)
        span = int(800 / interval_ms)
        jobs.append(
            ExperimentJob(
                name=f"interval-{interval_ms}ms",
                config=PlatformConfig(interval_ns=interval_ms * NS_PER_MS, seed=90),
                train=TrainSpec(
                    runs=1,
                    intervals_per_run=train_count,
                    validation_intervals=train_count // 2,
                    base_seed=90,
                ),
                scenario="shellcode",
                detector_params=(("em_restarts", 2), ("seed", 0)),
                pre_intervals=span,
                attack_intervals=span,
                scenario_seed=92,
            )
        )
    return jobs


def test_ablation_interval(benchmark, report, tmp_path):
    run_results = ExperimentRunner(jobs=1, cache_dir=tmp_path / "cache").run(_grid())

    rows = []
    results = {}
    for interval_ms, res in zip(INTERVALS_MS, run_results):
        auc = res.summary["auc"]
        fpr = res.summary["pre_fpr_theta_1"]
        latency_intervals = res.summary["latency_theta_1"]
        latency_ms = latency_intervals * interval_ms if latency_intervals >= 0 else -1
        results[interval_ms] = (auc, fpr, latency_ms)
        rows.append(
            [
                f"{interval_ms} ms",
                f"{auc:.3f}",
                f"{fpr:.1%}",
                f"{latency_ms} ms" if latency_ms >= 0 else "missed",
            ]
        )
    report.table(
        ["interval", "shellcode AUC", "normal FPR", "detection latency"],
        rows,
        title="A5 — monitoring interval sweep (paper: 10 ms, arbitrary)",
    )
    report.add(
        "Detection works across the sweep; the interval mainly sets the",
        "latency floor (one interval) and the storage/analysis rate.",
        "Very short intervals aggregate fewer activities per map (noisier",
        "scores, lower AUC); very long ones give fewer training maps per",
        "second of observation (worse theta calibration).  The paper's",
        "10 ms sits comfortably in the middle.",
    )

    for interval_ms, (auc, fpr, latency_ms) in results.items():
        assert auc >= 0.70, interval_ms
        assert latency_ms >= 0, interval_ms
        assert latency_ms <= 3 * interval_ms, interval_ms
    assert results[10][0] >= results[5][0]  # 10 ms beats the noisy 5 ms

    config = PlatformConfig(interval_ns=5 * NS_PER_MS, seed=93)
    benchmark.pedantic(
        lambda: Platform(config).collect_intervals(20), rounds=2, iterations=1
    )

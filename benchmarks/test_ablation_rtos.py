"""Ablation A7: Linux-like vs RTOS-like platform (paper Section 7).

The paper's closing claim: "RTOSes have a more deterministic memory
usage; hence our techniques will be even more effective when applied
to such a context."  We test it head-to-head: same detector recipe,
same rootkit, two platforms — the Linux-like default and an RTOS-like
configuration (harmonic periods, memory-locked tasks, deterministic
kernel paths).
"""

import numpy as np

from repro.attacks import SyscallHijackRootkit
from repro.learn.detector import MhmDetector
from repro.learn.metrics import roc_auc_from_scores
from repro.pipeline.scenario import ScenarioRunner
from repro.sim.platform import Platform, PlatformConfig
from repro.sim.workloads.rtos import rtos_config


def _evaluate(config, label):
    training = Platform(config).collect_intervals(300)
    validation = Platform(config.with_seed(config.seed + 1)).collect_intervals(200)
    detector = MhmDetector(em_restarts=3, seed=0).fit(training, validation)

    platform = Platform(config.with_seed(config.seed + 2))
    result = ScenarioRunner(platform).run(
        SyscallHijackRootkit(extra_latency_ns=25_000),
        pre_intervals=100,
        attack_intervals=200,
    )
    densities = detector.score_series(result.series)
    flags = densities < detector.threshold(1.0)
    load = result.attack_interval

    normal_spread = float(np.std(densities[:load]))
    post_rate = float(flags[load + 2 :].mean())
    fpr = float(flags[:load].mean())
    auc = roc_auc_from_scores(-densities, result.ground_truth())
    return [label, f"{normal_spread:.2f}", f"{fpr:.1%}", f"{post_rate:.1%}", f"{auc:.3f}"]


def test_ablation_rtos(benchmark, report):
    linux_row = _evaluate(PlatformConfig(seed=150), "Linux-like (paper)")
    rtos_row = _evaluate(rtos_config(seed=250), "RTOS-like (Sec. 7)")

    report.table(
        [
            "platform",
            "normal density spread (ln)",
            "normal FPR",
            "post-hijack flag rate",
            "rootkit AUC",
        ],
        [linux_row, rtos_row],
        title="A7 — Linux-like vs RTOS-like detectability (same rootkit)",
    )
    report.add(
        "The paper's Section 7 conjecture: an RTOS's tighter normal",
        "behaviour leaves less room for a stealthy rootkit to hide in,",
        "so the post-hijack drift is flagged more often.",
    )

    # The conjecture holds: tighter normal model, better stealth-phase
    # detection, no FPR penalty.
    linux_spread, rtos_spread = float(linux_row[1]), float(rtos_row[1])
    linux_post = float(linux_row[3].rstrip("%")) / 100
    rtos_post = float(rtos_row[3].rstrip("%")) / 100
    assert rtos_spread < linux_spread
    assert rtos_post >= linux_post
    assert float(rtos_row[2].rstrip("%")) / 100 <= 0.05

    benchmark.pedantic(
        lambda: Platform(rtos_config(seed=5)).collect_intervals(20),
        rounds=2,
        iterations=1,
    )

"""Ablation A8: SMP scaling (Limitation, Section 5.5).

The paper: for SMP "the Memometer would need only one set of MHM
memories ... the address snoop and filtering logic needs to be
replicated for each core".  The platform implements exactly that; this
ablation checks that a single aggregated MHM stream remains learnable
and that the detector still catches attacks when the task set is
partitioned across two monitored cores.
"""

import numpy as np

from repro.attacks import ShellcodeAttack, SyscallHijackRootkit
from repro.learn.detector import MhmDetector
from repro.pipeline.scenario import ScenarioRunner
from repro.sim.platform import Platform, PlatformConfig
from repro.sim.smp import partition_tasks, per_core_utilization
from repro.sim.workloads.mibench import paper_taskset, crc32_task, dijkstra_task


def _smp_config(seed):
    # A six-task set that needs two cores (total utilisation ~0.88).
    tasks = paper_taskset() + [crc32_task(), dijkstra_task()]
    assigned = partition_tasks(tasks, 2)
    return PlatformConfig(seed=seed, monitored_cores=2, tasks=tuple(assigned))


def test_ablation_smp(benchmark, report):
    config = _smp_config(seed=160)
    loads = per_core_utilization(config.tasks, 2)

    training = Platform(config).collect_intervals(300)
    validation = Platform(config.with_seed(161)).collect_intervals(200)
    detector = MhmDetector(em_restarts=3, seed=0).fit(training, validation)

    # Normal behaviour on a fresh SMP boot.
    normal_platform = Platform(config.with_seed(162))
    normal = normal_platform.collect_intervals(100)
    fpr = float(detector.classify_series(normal, 1.0).mean())

    # A shellcode on a task running on core 1.
    victim = next(t.name for t in config.tasks if t.core == 1)
    shell_platform = Platform(config.with_seed(163))
    shell_result = ScenarioRunner(shell_platform).run(
        ShellcodeAttack(host=victim), pre_intervals=80, attack_intervals=80
    )
    shell_flags = detector.classify_series(shell_result.series, 1.0)
    shell_rate = float(shell_flags[shell_result.attack_interval :].mean())

    # The rootkit (kernel-wide: hijacked table is shared by both cores).
    rk_platform = Platform(config.with_seed(164))
    rk_result = ScenarioRunner(rk_platform).run(
        SyscallHijackRootkit(), pre_intervals=80, attack_intervals=80
    )
    rk_flags = detector.classify_series(rk_result.series, 1.0)
    load = rk_result.attack_interval

    report.table(
        ["quantity", "value"],
        [
            ["monitored cores", "2 (partitioned RM)"],
            ["per-core utilisation", f"{loads[0]:.2f} / {loads[1]:.2f}"],
            ["tasks per core", f"{[t.core for t in config.tasks].count(0)} / "
                               f"{[t.core for t in config.tasks].count(1)}"],
            ["aggregate MHM volume vs 1-core", f"{training.traffic_volumes().mean():,.0f} accesses/interval"],
            ["eigenmemories L'", detector.num_eigenmemories_],
            ["normal FPR @ theta_1 (fresh boot)", f"{fpr:.1%}"],
            [f"shellcode on core-1 task ({victim}): post-attack flags", f"{shell_rate:.1%}"],
            ["rootkit load flagged", str(bool(rk_flags[load] or rk_flags[load + 1]))],
        ],
        title="A8 — SMP: one Memometer, two monitored cores (Section 5.5)",
    )
    report.add(
        "A single MHM memory aggregating both cores' kernel activity is",
        "still learnable: the composition argument of Section 2 does not",
        "care which core contributed an access.",
    )

    assert fpr <= 0.08
    assert shell_rate >= 0.4
    assert rk_flags[load] or rk_flags[load + 1]

    benchmark.pedantic(
        lambda: Platform(_smp_config(seed=9)).collect_intervals(20),
        rounds=2,
        iterations=1,
    )

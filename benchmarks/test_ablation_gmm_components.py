"""Ablation A4: GMM component count J + Figueiredo-Jain selection.

The paper "arbitrarily chose J = 5" and cites Figueiredo & Jain [8]
for automatic selection.  This ablation sweeps J, reports validation
log-likelihood and detection quality, and runs the Figueiredo-Jain
extension to see what J it would have picked on the same training set.
"""

import numpy as np

from repro.attacks import AppLaunchAttack
from repro.learn.detector import MhmDetector
from repro.learn.fj import FigueiredoJainGmm
from repro.learn.metrics import roc_auc_from_scores
from repro.pipeline.scenario import ScenarioRunner
from repro.sim.platform import Platform

SWEEP = (1, 2, 3, 5, 8, 12)


def test_ablation_gmm_components(benchmark, report, paper_artifacts):
    data = paper_artifacts.data

    platform = Platform(paper_artifacts.config.with_seed(890))
    result = ScenarioRunner(platform).run(
        AppLaunchAttack(), pre_intervals=80, attack_intervals=80
    )
    truth = result.ground_truth()

    rows = []
    aucs = {}
    for num_gaussians in SWEEP:
        detector = MhmDetector(
            num_gaussians=num_gaussians, em_restarts=3, seed=0
        ).fit(data.training, data.validation)
        validation_ll = float(
            detector.score_series(data.validation).mean()
        )
        densities = detector.score_series(result.series)
        auc = roc_auc_from_scores(-densities, truth)
        fpr = float((densities[:80] < detector.threshold(1.0)).mean())
        aucs[num_gaussians] = auc
        rows.append(
            [num_gaussians, f"{validation_ll:.1f}", f"{auc:.3f}", f"{fpr:.1%}"]
        )
    report.table(
        ["J", "mean val log-density", "qsort AUC", "normal FPR"],
        rows,
        title="A4 — GMM component sweep (paper: J = 5, chosen arbitrarily)",
    )

    # Figueiredo-Jain automatic selection on the reduced training set.
    reduced = paper_artifacts.detector.eigenmemory.transform(data.training)
    fj = FigueiredoJainGmm(max_components=12, seed=0).fit(reduced)
    report.add(
        f"Figueiredo-Jain automatic selection: J = {fj.num_components_} "
        f"(message-length history: "
        f"{[(j, round(l, 1)) for j, l in fj.history_]})",
        "The paper's hand-picked J = 5 sits in the flat region of the",
        "sweep: detection quality is insensitive to J once J >= 2.",
    )

    assert aucs[5] >= 0.80  # the paper's choice works
    assert max(aucs.values()) - aucs[5] <= 0.1  # and is near-optimal
    assert 1 <= fj.num_components_ <= 12

    benchmark.pedantic(
        lambda: FigueiredoJainGmm(max_components=8, seed=0).fit(reduced[:500]),
        rounds=2,
        iterations=1,
    )

"""Ablation A2: MHM granularity sweep.

The paper picks delta = 2 KB "arbitrarily" and notes the Memometer's
8 KB MHM memories cap the cell count at ~2,000 (so the kernel region
needs delta >= 2 KB).  This ablation sweeps delta, checking the cell
count against the hardware cap, detection quality on the qsort
scenario, and modelled analysis time.

The sweep runs as an :class:`~repro.pipeline.runner.ExperimentRunner`
grid — one seeded job per granularity — instead of a hand-rolled loop.
Seeds are pinned to the historical values (training 70, validation 71,
scenario 72) so the numbers are unchanged.
"""

from repro.hw.memometer import MAX_CELLS
from repro.hw.securecore import AnalysisTimingModel
from repro.pipeline.runner import ExperimentJob, ExperimentRunner, TrainSpec, expand_grid
from repro.sim.platform import Platform, PlatformConfig

GRANULARITIES = (2048, 4096, 8192, 16384)


def _grid():
    return [
        ExperimentJob(
            name=f"granularity-{point['granularity']}",
            config=PlatformConfig(granularity=point["granularity"], seed=70),
            train=TrainSpec(
                runs=1, intervals_per_run=250, validation_intervals=150, base_seed=70
            ),
            scenario="app-launch",
            detector_params=(("em_restarts", 2), ("seed", 0)),
            pre_intervals=60,
            attack_intervals=60,
            scenario_seed=72,
        )
        for point in expand_grid({"granularity": GRANULARITIES})
    ]


def test_ablation_granularity(benchmark, report, tmp_path):
    timing = AnalysisTimingModel()
    results = ExperimentRunner(jobs=1, cache_dir=tmp_path / "cache").run(_grid())

    rows = []
    aucs = {}
    for granularity, res in zip(GRANULARITIES, results):
        aucs[granularity] = res.summary["auc"]
        rows.append(
            [
                f"{granularity // 1024} KB",
                res.num_cells,
                f"{res.num_cells / MAX_CELLS:.0%}",
                res.num_eigenmemories,
                f"{res.summary['auc']:.3f}",
                f"{res.summary['pre_fpr_theta_1']:.1%}",
                f"{timing.analysis_time_us(res.num_cells, res.num_eigenmemories, 5):.0f} us",
            ]
        )
    report.table(
        [
            "delta",
            "cells L",
            "MHM memory used",
            "L'",
            "qsort AUC",
            "normal FPR",
            "modelled analysis",
        ],
        rows,
        title="A2 — granularity sweep (paper: delta = 2 KB, L = 1472)",
    )
    report.add(
        "1 KB would need 2,943 cells — over the 8 KB on-chip memory cap",
        f"({MAX_CELLS} cells), exactly as the paper's hardware sizing implies.",
    )

    # Detection stays strong across the sweep; coarser is cheaper.
    for granularity in GRANULARITIES:
        assert aucs[granularity] >= 0.75, granularity
    assert rows[0][1] == 1472
    assert rows[2][1] == 368

    config = PlatformConfig(granularity=8192, seed=73)
    benchmark.pedantic(
        lambda: Platform(config).collect_intervals(10), rounds=2, iterations=1
    )

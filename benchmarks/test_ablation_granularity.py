"""Ablation A2: MHM granularity sweep.

The paper picks delta = 2 KB "arbitrarily" and notes the Memometer's
8 KB MHM memories cap the cell count at ~2,000 (so the kernel region
needs delta >= 2 KB).  This ablation sweeps delta, checking the cell
count against the hardware cap, detection quality on the qsort
scenario, and modelled analysis time.
"""

import numpy as np

from repro.attacks import AppLaunchAttack
from repro.hw.memometer import MAX_CELLS
from repro.hw.securecore import AnalysisTimingModel
from repro.learn.detector import MhmDetector
from repro.learn.metrics import roc_auc_from_scores
from repro.pipeline.scenario import ScenarioRunner
from repro.sim.platform import Platform, PlatformConfig

GRANULARITIES = (2048, 4096, 8192, 16384)


def _evaluate(granularity):
    config = PlatformConfig(granularity=granularity, seed=70)
    training = Platform(config).collect_intervals(250)
    validation = Platform(config.with_seed(71)).collect_intervals(150)
    detector = MhmDetector(em_restarts=2, seed=0).fit(training, validation)

    platform = Platform(config.with_seed(72))
    result = ScenarioRunner(platform).run(
        AppLaunchAttack(), pre_intervals=60, attack_intervals=60
    )
    densities = detector.score_series(result.series)
    auc = roc_auc_from_scores(-densities, result.ground_truth())
    fpr = float(
        (densities[:60] < detector.threshold(1.0)).mean()
    )
    return config.spec.num_cells, detector.num_eigenmemories_, auc, fpr


def test_ablation_granularity(benchmark, report):
    timing = AnalysisTimingModel()
    rows = []
    aucs = {}
    for granularity in GRANULARITIES:
        num_cells, num_eigen, auc, fpr = _evaluate(granularity)
        aucs[granularity] = auc
        rows.append(
            [
                f"{granularity // 1024} KB",
                num_cells,
                f"{num_cells / MAX_CELLS:.0%}",
                num_eigen,
                f"{auc:.3f}",
                f"{fpr:.1%}",
                f"{timing.analysis_time_us(num_cells, num_eigen, 5):.0f} us",
            ]
        )
    report.table(
        [
            "delta",
            "cells L",
            "MHM memory used",
            "L'",
            "qsort AUC",
            "normal FPR",
            "modelled analysis",
        ],
        rows,
        title="A2 — granularity sweep (paper: delta = 2 KB, L = 1472)",
    )
    report.add(
        "1 KB would need 2,943 cells — over the 8 KB on-chip memory cap",
        f"({MAX_CELLS} cells), exactly as the paper's hardware sizing implies.",
    )

    # Detection stays strong across the sweep; coarser is cheaper.
    for granularity in GRANULARITIES:
        assert aucs[granularity] >= 0.75, granularity
    assert rows[0][1] == 1472
    assert rows[2][1] == 368

    config = PlatformConfig(granularity=8192, seed=73)
    benchmark.pedantic(
        lambda: Platform(config).collect_intervals(10), rounds=2, iterations=1
    )

"""Shared benchmark fixtures.

The benchmarks reproduce the paper's evaluation at full scale
(PAPER_SCALE: 3,000 training MHMs, 10 EM restarts, full-length
scenarios).  Training happens once per session; every benchmark also
writes a human-readable report into ``benchmarks/out/`` with the
paper-vs-measured rows that EXPERIMENTS.md summarises.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.pipeline.experiments import (
    PAPER_SCALE,
    get_reference_artifacts,
    run_app_launch_experiment,
    run_rootkit_experiment,
    run_shellcode_experiment,
)

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def paper_artifacts():
    """The Section 5.2 reference detector (trained once per session)."""
    return get_reference_artifacts(PAPER_SCALE)


@pytest.fixture(scope="session")
def fig7_outcome(paper_artifacts):
    return run_app_launch_experiment(paper_artifacts)


@pytest.fixture(scope="session")
def fig8_outcome(paper_artifacts):
    return run_shellcode_experiment(paper_artifacts)


@pytest.fixture(scope="session")
def rootkit_outcome(paper_artifacts):
    """Shared by the Figure 9 and Figure 10 benches (same run)."""
    return run_rootkit_experiment(paper_artifacts)


class Report:
    """Collects lines and writes them to benchmarks/out/<name>.txt."""

    def __init__(self, name: str):
        self.name = name
        self.lines: list[str] = []

    def add(self, *lines: str) -> None:
        self.lines.extend(lines)

    def table(self, headers, rows, title=""):
        from repro.viz.tables import format_table

        self.add(format_table(headers, rows, title=title), "")

    def flush(self) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{self.name}.txt"
        path.write_text("\n".join(self.lines) + "\n")
        print(f"\n[{self.name}] report -> {path}")
        print("\n".join(self.lines))


@pytest.fixture()
def report(request):
    rep = Report(request.node.name.replace("/", "_"))
    yield rep
    rep.flush()


def pytest_sessionfinish(session, exitstatus):
    """Stitch the per-benchmark reports into REPORT.md after every run."""
    from repro.viz.report import write_report

    if OUT_DIR.exists():
        destination = OUT_DIR.parent.parent / "REPORT.md"
        write_report(OUT_DIR, destination)

"""Figure 1: an example memory heat map of the kernel .text segment.

Paper parameters (the table embedded in Figure 1):

    AddrBase             0xC0008000
    Memory Region Size   3,013,284 bytes
    Granularity          2,048 bytes
    # Cells              1,472

measured for a 10 ms interval.  The benchmark measures the Memometer's
snoop throughput — the datapath that builds such a map.
"""

import numpy as np

from repro.hw.memometer import ControlRegisters, Memometer
from repro.sim.platform import Platform, PlatformConfig
from repro.sim.trace import AccessBurst
from repro.viz.ascii import render_heatmap


def test_fig1_example_mhm(benchmark, report):
    platform = Platform(PlatformConfig(seed=2015))
    platform.run_intervals(5)  # warm up, then take one representative map
    heat_map = platform.collect_intervals(1)[0]

    spec = heat_map.spec
    report.table(
        ["parameter", "paper", "measured"],
        [
            ["AddrBase", "0xC0008000", f"{spec.base_address:#X}"],
            ["Memory Region Size", "3,013,284 bytes", f"{spec.region_size:,} bytes"],
            ["Granularity", "2,048 bytes", f"{spec.granularity:,} bytes"],
            ["# Cells", "1,472", f"{spec.num_cells:,}"],
            ["Interval", "10 ms", f"{platform.config.interval_ns / 1e6:g} ms"],
        ],
        title="Figure 1 — MHM of the kernel .text segment (10 ms interval)",
    )
    report.add(
        f"total accesses in interval: {heat_map.total_accesses:,}",
        f"touched cells: {heat_map.touched_cells} / {heat_map.num_cells}",
        "",
        render_heatmap(heat_map, width=92, log_scale=True),
    )

    assert spec.base_address == 0xC0008000
    assert spec.region_size == 3_013_284
    assert spec.granularity == 2048
    assert spec.num_cells == 1472
    assert heat_map.total_accesses > 0

    # Benchmark: the snoop datapath filling an MHM from bursts.
    registers = ControlRegisters(
        base_address=spec.base_address,
        region_size=spec.region_size,
        granularity=spec.granularity,
        interval_ns=platform.config.interval_ns,
    )
    memometer = Memometer(registers)
    rng = np.random.default_rng(0)
    bursts = [
        AccessBurst(
            time_ns=0,
            addresses=rng.integers(
                spec.base_address, spec.end_address, size=300, dtype=np.int64
            ),
            weights=rng.integers(1, 5, size=300).astype(np.int64),
        )
        for _ in range(100)
    ]

    def snoop_100_bursts():
        for burst in bursts:
            memometer.observe_burst(burst)

    benchmark(snoop_100_bursts)

"""Ablation A9: global eigenmemory+GMM vs local-feature detector.

The paper's Limitation (Section 5.5): "Some systems may exhibit highly
unpredictable, but yet legitimate, memory usage caused by, for example,
network activities or user interactions ... our current model may alarm
many false positives.  To deal with such problems, we plan to build a
robust classification algorithm by extracting local features from MHMs
in an unsupervised manner."

Setup: both detectors train on a platform *with* network activity
(Poisson interrupt trains at a nominal rate).  They are then evaluated
in two regimes:

* **matched** — a fresh boot with the same traffic model (plus the
  shellcode attack, to compare sensitivity);
* **legitimate variation** — the same system under a 4x traffic surge
  with extra execution jitter: nothing malicious, just the
  unpredictable load §5.5 describes.

The expectation (the paper's, and ours): the global model is the more
sensitive detector in its home regime but floods with false alarms
under the legitimate surge; the bag-of-patches local-feature detector
(the classical stand-in for the paper's deep-learning plan) absorbs a
large share of that variation.
"""

import numpy as np
from dataclasses import replace

from repro.attacks import ShellcodeAttack
from repro.learn.detector import MhmDetector
from repro.learn.localfeatures import LocalFeatureDetector
from repro.pipeline.scenario import ScenarioRunner
from repro.sim.devices import NetworkDeviceConfig
from repro.sim.platform import Platform, PlatformConfig


def _base_config() -> PlatformConfig:
    return PlatformConfig(
        seed=970,
        network_devices=(
            NetworkDeviceConfig(mean_rate_hz=300.0, burst_length_mean=2.0),
        ),
    )


def _surge_config(base: PlatformConfig) -> PlatformConfig:
    """Legitimate-but-unpredictable: 4x traffic + jittery tasks."""
    return replace(
        base.with_seed(base.seed + 9),
        network_devices=(
            NetworkDeviceConfig(mean_rate_hz=1200.0, burst_length_mean=4.0),
        ),
        tasks=tuple(replace(t, exec_jitter=0.08) for t in base.tasks),
        kernel_jitter_scale=2.0,
    )


def test_ablation_localfeatures(benchmark, report):
    base = _base_config()
    training = Platform(base).collect_intervals(400)
    validation = Platform(base.with_seed(971)).collect_intervals(200)

    global_detector = MhmDetector(em_restarts=3, seed=0).fit(training, validation)
    local_detector = LocalFeatureDetector(
        patch_cells=16, stride=8, num_codewords=24, em_restarts=3, seed=0
    ).fit(training, validation)

    # Regime 1: matched traffic, shellcode attack.
    platform = Platform(base.with_seed(972))
    result = ScenarioRunner(platform).run(
        ShellcodeAttack(), pre_intervals=80, attack_intervals=80
    )
    truth = result.ground_truth()
    global_flags = global_detector.classify_series(result.series, 1.0)
    local_flags = local_detector.classify_series(result.series, 1.0)

    # Regime 2: legitimate traffic surge, nothing malicious.
    legit_series = Platform(_surge_config(base)).collect_intervals(120)
    global_legit_fpr = float(
        global_detector.classify_series(legit_series, 1.0).mean()
    )
    local_legit_fpr = float(
        local_detector.classify_series(legit_series, 1.0).mean()
    )

    rows = [
        [
            "MHM + GMM (paper)",
            f"{float(global_flags[:80].mean()):.1%}",
            f"{float(global_flags[truth].mean()):.1%}",
            f"{global_legit_fpr:.1%}",
        ],
        [
            "local features (bag-of-patches)",
            f"{float(local_flags[:80].mean()):.1%}",
            f"{float(local_flags[truth].mean()):.1%}",
            f"{local_legit_fpr:.1%}",
        ],
    ]
    report.table(
        [
            "detector",
            "FPR (matched traffic)",
            "shellcode TPR",
            "FPR (legitimate 4x surge)",
        ],
        rows,
        title="A9 — global vs local-feature detector (Section 5.5 future work)",
    )
    report.add(
        "Both detectors trained on a system with 300 Hz network traffic.",
        "Under a legitimate 4x surge the global model alarms on nearly",
        "every interval, the paper's predicted failure mode; the",
        "patch-level detector absorbs a large share of the variation",
        "because L2-normalised local shapes are rate-insensitive.",
    )

    # The paper's global detector is the sensitive one in-regime...
    assert float(global_flags[truth].mean()) >= 0.5
    assert float(global_flags[:80].mean()) <= 0.1
    # ...but fragile to unseen legitimate variation...
    assert global_legit_fpr > 0.5
    # ...where the local-feature extension is substantially more robust.
    assert local_legit_fpr <= 0.7 * global_legit_fpr

    heat_map = validation[0]
    benchmark(lambda: local_detector.log_density(heat_map))

"""Ablation A12: how much normal profiling is enough?

Section 5.1's footnote: "we leave for future work to evaluate the
number of proper training samples, eigenmemories, and GMM components
for different settings of application periods."  A3/A4 cover the
latter two; this ablation answers the first: sweep the training-set
size (with the validation set scaled alongside) and measure what a
deployment cares about — false positives on *fresh* boots (assumption
(ii): were enough execution contexts profiled?) and detection quality.
"""

import numpy as np

from repro.attacks import AppLaunchAttack
from repro.learn.detector import MhmDetector
from repro.learn.metrics import roc_auc_from_scores
from repro.pipeline.scenario import ScenarioRunner
from repro.pipeline.training import collect_training_data
from repro.sim.platform import Platform, PlatformConfig

#: (runs, intervals per run) — total training MHMs = product.
SWEEP = ((1, 100), (1, 300), (4, 250), (10, 300))


def test_ablation_training_size(benchmark, report):
    config = PlatformConfig()

    # One fixed evaluation workload for every detector.
    fresh_boot = Platform(config.with_seed(940)).collect_intervals(150)
    attack_platform = Platform(config.with_seed(941))
    result = ScenarioRunner(attack_platform).run(
        AppLaunchAttack(), pre_intervals=60, attack_intervals=60
    )
    truth = result.ground_truth()

    rows = []
    fresh_fprs = {}
    for runs, per_run in SWEEP:
        total = runs * per_run
        data = collect_training_data(
            config,
            runs=runs,
            intervals_per_run=per_run,
            validation_intervals=max(100, total // 5),
            base_seed=500,
        )
        detector = MhmDetector(em_restarts=3, seed=0).fit(
            data.training, data.validation
        )
        fresh_fpr = float(detector.classify_series(fresh_boot, 1.0).mean())
        densities = detector.score_series(result.series)
        auc = roc_auc_from_scores(-densities, truth)
        fresh_fprs[total] = fresh_fpr
        rows.append(
            [
                f"{total:,} ({runs} x {per_run})",
                detector.num_eigenmemories_,
                f"{fresh_fpr:.1%}",
                f"{auc:.3f}",
            ]
        )

    report.table(
        [
            "training MHMs (runs x size)",
            "L'",
            "fresh-boot FPR @ theta_1",
            "qsort AUC",
        ],
        rows,
        title="A12 — training-set size sweep (Section 5.1's deferred question)",
    )
    report.add(
        "A single short run under-covers the execution contexts",
        "(assumption (ii)): unseen-boot FPR is inflated.  Diverse runs",
        "matter more than raw sample count; the paper's 10 x 300 recipe",
        "sits safely on the converged plateau.",
    )

    totals = [runs * per for runs, per in SWEEP]
    # Coverage improves (weakly) with more/diverse training data, and
    # the paper-scale corner must behave.
    assert fresh_fprs[totals[-1]] <= fresh_fprs[totals[0]] + 0.02
    assert fresh_fprs[totals[-1]] <= 0.05
    assert float(rows[-1][3]) >= 0.8

    benchmark.pedantic(
        lambda: MhmDetector(em_restarts=1, seed=0).fit(fresh_boot),
        rounds=2,
        iterations=1,
    )

"""Ablation A12: how much normal profiling is enough?

Section 5.1's footnote: "we leave for future work to evaluate the
number of proper training samples, eigenmemories, and GMM components
for different settings of application periods."  A3/A4 cover the
latter two; this ablation answers the first: sweep the training-set
size (with the validation set scaled alongside) and measure what a
deployment cares about — false positives on *fresh* boots (assumption
(ii): were enough execution contexts profiled?) and detection quality.

The sweep is a runner grid: one job per (runs, intervals) point, all
sharing the fixed evaluation scenario (seed 941) — which the artifact
cache therefore simulates exactly once.  Each job's fitted detector is
rebuilt from its stored arrays (``JobResult.detector``) to score the
fresh-boot series, without retraining.
"""

from repro.learn.detector import MhmDetector
from repro.pipeline.runner import ExperimentJob, ExperimentRunner, TrainSpec
from repro.sim.platform import Platform, PlatformConfig

#: (runs, intervals per run) — total training MHMs = product.
SWEEP = ((1, 100), (1, 300), (4, 250), (10, 300))


def _grid(config):
    return [
        ExperimentJob(
            name=f"train-{runs}x{per_run}",
            config=config,
            train=TrainSpec(
                runs=runs,
                intervals_per_run=per_run,
                validation_intervals=max(100, runs * per_run // 5),
                base_seed=500,
            ),
            scenario="app-launch",
            detector_params=(("em_restarts", 3), ("seed", 0)),
            pre_intervals=60,
            attack_intervals=60,
            scenario_seed=941,
        )
        for runs, per_run in SWEEP
    ]


def test_ablation_training_size(benchmark, report, tmp_path):
    config = PlatformConfig()

    # One fixed evaluation workload for every detector: the attack
    # scenario lives inside each job (same seed -> one cache entry);
    # the fresh boot is scored locally against each rebuilt detector.
    fresh_boot = Platform(config.with_seed(940)).collect_intervals(150)

    results = ExperimentRunner(jobs=1, cache_dir=tmp_path / "cache").run(_grid(config))

    rows = []
    fresh_fprs = {}
    for (runs, per_run), res in zip(SWEEP, results):
        total = runs * per_run
        detector = res.detector()
        fresh_fpr = float(detector.classify_series(fresh_boot, 1.0).mean())
        fresh_fprs[total] = fresh_fpr
        rows.append(
            [
                f"{total:,} ({runs} x {per_run})",
                res.num_eigenmemories,
                f"{fresh_fpr:.1%}",
                f"{res.summary['auc']:.3f}",
            ]
        )

    # The shared evaluation scenario must have been simulated once and
    # served from cache for the remaining sweep points.
    assert sum(r.cache_hits.get("scenario", 0) for r in results) == len(SWEEP) - 1

    report.table(
        [
            "training MHMs (runs x size)",
            "L'",
            "fresh-boot FPR @ theta_1",
            "qsort AUC",
        ],
        rows,
        title="A12 — training-set size sweep (Section 5.1's deferred question)",
    )
    report.add(
        "A single short run under-covers the execution contexts",
        "(assumption (ii)): unseen-boot FPR is inflated.  Diverse runs",
        "matter more than raw sample count; the paper's 10 x 300 recipe",
        "sits safely on the converged plateau.",
    )

    totals = [runs * per for runs, per in SWEEP]
    # Coverage improves (weakly) with more/diverse training data, and
    # the paper-scale corner must behave.
    assert fresh_fprs[totals[-1]] <= fresh_fprs[totals[0]] + 0.02
    assert fresh_fprs[totals[-1]] <= 0.05
    assert float(rows[-1][3]) >= 0.8

    benchmark.pedantic(
        lambda: MhmDetector(em_restarts=1, seed=0).fit(fresh_boot),
        rounds=2,
        iterations=1,
    )

"""Section 5.1's task-set table and the 78 % system load.

    app        exec time  period   category
    FFT        2 ms       10 ms    telecomm
    bitcount   3 ms       20 ms    automotive
    basicmath  9 ms       50 ms    automotive
    sha        25 ms      100 ms   security

The benchmark measures simulation throughput (simulated monitoring
intervals per wall second).
"""

import pytest

from repro.sim.engine import NS_PER_MS, NS_PER_SEC
from repro.sim.platform import Platform, PlatformConfig
from repro.sim.workloads.mibench import TASK_CATEGORIES, paper_taskset


def test_table_taskset(benchmark, report):
    platform = Platform(PlatformConfig(seed=2015))
    platform.run_for(3 * NS_PER_SEC)

    rows = []
    for task in paper_taskset():
        stats = platform.scheduler.task(task.name).stats
        rows.append(
            [
                task.name,
                f"{task.exec_time_ns / NS_PER_MS:g} ms",
                f"{task.period_ns / NS_PER_MS:g} ms",
                TASK_CATEGORIES[task.name],
                stats.releases,
                stats.completions,
                stats.deadline_misses,
                f"{stats.mean_response_ns / NS_PER_MS:.2f} ms",
                f"{stats.max_response_ns / NS_PER_MS:.2f} ms",
            ]
        )
    report.table(
        [
            "task",
            "exec",
            "period",
            "category",
            "releases",
            "done",
            "misses",
            "mean resp",
            "max resp",
        ],
        rows,
        title="Section 5.1 — MiBench task set over 3 s (paper: 78 % load)",
    )
    nominal = platform.scheduler.total_utilization()
    measured = platform.scheduler.measured_utilization()
    report.add(
        f"nominal utilisation : {nominal:.2%}   (paper: 78%)",
        f"measured utilisation: {measured:.2%}  (incl. syscall kernel time)",
        f"context switches    : {platform.scheduler.context_switches}",
    )

    assert nominal == pytest.approx(0.78)
    assert 0.72 <= measured <= 0.88
    for task in paper_taskset():
        assert platform.scheduler.task(task.name).stats.deadline_misses == 0

    def simulate_ten_intervals():
        fresh = Platform(PlatformConfig(seed=1))
        fresh.run_intervals(10)
        return fresh.intervals_completed

    intervals = benchmark(simulate_ten_intervals)
    assert intervals == 10

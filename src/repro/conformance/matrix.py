"""The attack × detector conformance matrix.

Every scenario registered in :data:`repro.pipeline.stages.SCENARIOS`
is run against the reference detector on seeded boots and scored by
every detector column; the observed outcome of each cell is compared
against the outcome the attack class *declares* in its
``expected_outcomes`` mapping (:class:`repro.attacks.base.Attack`).
The build refuses to run if any registered attack leaves a cell
undeclared, declares an unknown column, or uses an out-of-vocabulary
outcome — so a new attack (or a new detector column) cannot land
without stating how every cell is supposed to fare.

Detector columns
----------------

``gmm-alarm``
    The serving layer's alarm rule: ``consecutive_for_alarm``
    consecutive sub-θ_p intervals after injection.  Outcome ``detect``
    or ``miss``.
``gmm-interval``
    Raw per-interval GMM verdicts: the post-injection flag rate must
    clear an alert floor well above the calibrated false-positive
    budget.  Outcome ``detect`` or ``miss``.
``drift``
    :func:`repro.serve.drift.evaluate_drift` over the post-injection
    log-density series — does the score distribution shift enough to
    trip the drift monitor even when individual intervals stay quiet?
    Outcome ``drift-flag`` or ``no-drift``.
``fpr-budget``
    Sanity column: before injection the scenario boot must flag at
    (binomially) no more than the calibrated p-percent budget.
    Outcome ``within-budget`` or ``over-budget``.
``context``
    The second modality
    (:class:`~repro.learn.contexts.ContextDetector`): per-interval
    syscall-distribution scores against the learned execution
    contexts, OR'd with the phase-drift channel — the column that
    catches the mimicry attack the four MHM-side columns declare as
    misses.  Outcome ``detect`` or ``miss``.

Everything is deterministic: fixed training seed, fixed scenario
seed, pure simulation.  Two builds at the same sizing produce
byte-identical canonical JSON (the golden/fresh-interpreter tests
hold the matrix to that).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..pipeline.experiments import (
    QUICK_SCALE,
    ExperimentScale,
    ScenarioOutcome,
    get_reference_artifacts,
    run_scenario_experiment,
)
from ..pipeline.stages import SCENARIOS, make_attack
from ..serve.drift import DriftPolicy, evaluate_drift

__all__ = [
    "MatrixSizing",
    "TINY_SIZING",
    "CI_SIZING",
    "SIZINGS",
    "DETECTOR_COLUMNS",
    "OUTCOME_VOCABULARY",
    "MATRIX_DRIFT_POLICY",
    "MatrixCell",
    "ConformanceMatrix",
    "validate_declarations",
    "build_matrix",
]

SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Sizing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MatrixSizing:
    """How big a matrix run is (training protocol + scenario windows)."""

    name: str
    scale: ExperimentScale
    pre_intervals: int
    attack_intervals: int
    seed: int = 0
    scenario_seed: int = 999
    p_percent: float = 1.0
    consecutive_for_alarm: int = 3

    def __post_init__(self) -> None:
        if self.pre_intervals < 1:
            raise ValueError("pre_intervals must be >= 1")
        # The drift column needs enough post-injection samples for a
        # verdict (DriftPolicy.min_samples) — fail loudly at
        # construction, not with a silent no-verdict cell.
        if self.attack_intervals < DriftPolicy().min_samples:
            raise ValueError(
                "attack_intervals must be >= "
                f"{DriftPolicy().min_samples} for a drift verdict"
            )
        if self.consecutive_for_alarm < 1:
            raise ValueError("consecutive_for_alarm must be >= 1")


#: Smallest sizing with enough post-injection intervals for every
#: column to reach a verdict — unit tests and the golden fixture.
TINY_SIZING = MatrixSizing(
    name="tiny",
    scale=ExperimentScale(
        name="matrix-tiny",
        training_runs=2,
        intervals_per_run=60,
        validation_intervals=60,
        pre_attack_intervals=30,
        attack_intervals=48,
        post_attack_intervals=0,
        em_restarts=2,
    ),
    pre_intervals=30,
    attack_intervals=48,
)

#: CI sizing reuses the test suite's QUICK_SCALE training protocol so
#: the in-process artifact memo is shared with the fixtures.
CI_SIZING = MatrixSizing(
    name="ci",
    scale=QUICK_SCALE,
    pre_intervals=60,
    attack_intervals=80,
)

SIZINGS: Dict[str, MatrixSizing] = {s.name: s for s in (TINY_SIZING, CI_SIZING)}


# ----------------------------------------------------------------------
# Detector columns
# ----------------------------------------------------------------------
def _round(value: float) -> float:
    return round(float(value), 9)


def _max_consecutive(flags: np.ndarray) -> int:
    best = run = 0
    for flag in np.asarray(flags, dtype=bool):
        run = run + 1 if flag else 0
        best = max(best, run)
    return best


def _gmm_alarm(
    outcome: ScenarioOutcome, sizing: MatrixSizing
) -> Tuple[str, Dict[str, float]]:
    start = outcome.scenario.attack_interval
    post = outcome.flags(sizing.p_percent)[start:]
    longest = _max_consecutive(post)
    detected = longest >= sizing.consecutive_for_alarm
    return (
        "detect" if detected else "miss",
        {
            "max_consecutive_flags": longest,
            "alarm_after": sizing.consecutive_for_alarm,
            "detection_latency_intervals": outcome.detection_latency_intervals(
                sizing.p_percent
            ),
        },
    )


def _interval_alert_floor(p_percent: float) -> float:
    """Post-injection flag rate that counts as a per-interval detect.

    An order of magnitude above the calibrated budget (5× the expected
    benign rate, never below an absolute 10% floor).  The margin is
    deliberate: at matrix window sizes any injected activity perturbs
    the platform's RNG trajectory enough to scatter a few boundary
    flags (~up to 4 in 48 intervals on quiet scenarios), and those
    must not read as a detection.
    """
    return max(5.0 * p_percent / 100.0, 0.10)


def _gmm_interval(
    outcome: ScenarioOutcome, sizing: MatrixSizing
) -> Tuple[str, Dict[str, float]]:
    rate = outcome.attack_detection_rate(sizing.p_percent)
    floor = _interval_alert_floor(sizing.p_percent)
    return (
        "detect" if rate >= floor else "miss",
        {"detection_rate": _round(rate), "alert_floor": _round(floor)},
    )


#: Drift policy for matrix-sized windows.  The serving default
#: (``min_excess=0.02``) is tuned for 256-sample windows; at the 48–80
#: samples a matrix run scores, a few benign boundary flags already
#: exceed 2%, so the absolute margin is raised to 8% — a drift-flag
#: here means at least ~9% of post-injection intervals sat below θ_p,
#: an order of magnitude outside the calibrated 1% budget and above
#: the trajectory-perturbation noise band quiet scenarios produce.
MATRIX_DRIFT_POLICY = DriftPolicy(min_excess=0.08)


def _drift(
    outcome: ScenarioOutcome, sizing: MatrixSizing
) -> Tuple[str, Dict[str, float]]:
    start = outcome.scenario.attack_interval
    theta = outcome.log10_thresholds[sizing.p_percent]
    status = evaluate_drift(
        outcome.log10_densities[start:],
        theta,
        sizing.p_percent,
        policy=MATRIX_DRIFT_POLICY,
    )
    observed = -1.0 if status.observed_rate is None else status.observed_rate
    return (
        "drift-flag" if status.drifted else "no-drift",
        {
            "observed_rate": _round(observed),
            "expected_rate": _round(status.expected_rate),
            "samples": status.samples,
        },
    )


def _fpr_budget(
    outcome: ScenarioOutcome, sizing: MatrixSizing
) -> Tuple[str, Dict[str, float]]:
    pre = outcome.scenario.attack_interval
    fpr = outcome.pre_attack_fpr(sizing.p_percent)
    expected = sizing.p_percent / 100.0
    # Binomial slack: two standard deviations plus one interval of
    # granularity, so short pre-windows don't trip on a single flag.
    allowed = expected + 2.0 * math.sqrt(expected * (1 - expected) / pre) + 1 / pre
    return (
        "within-budget" if fpr <= allowed else "over-budget",
        {"pre_attack_fpr": _round(fpr), "allowed_fpr": _round(allowed)},
    )


def _context(
    outcome: ScenarioOutcome, sizing: MatrixSizing
) -> Tuple[str, Dict[str, float]]:
    """Second modality: context score channel OR phase-drift channel.

    Detect when either the post-injection context flag rate clears the
    same alert floor the ``gmm-interval`` column uses, or the drift
    statistic exceeds its calibrated clean-stream bound (the channel
    that exposes mimicry's in-envelope padding).
    """
    if not outcome.has_context:
        raise RuntimeError(
            "scenario outcome carries no context-modality scores; "
            "the matrix must be built through run_scenario_experiment"
        )
    rate = outcome.context_detection_rate(sizing.p_percent)
    floor = _interval_alert_floor(sizing.p_percent)
    drifted = outcome.context_drift_exceeded
    detected = rate >= floor or drifted
    return (
        "detect" if detected else "miss",
        {
            "detection_rate": _round(rate),
            "alert_floor": _round(floor),
            "drift_max": _round(outcome.context_drift_max),
            "drift_bound": _round(outcome.context_drift_bound),
        },
    )


#: Column name → (vocabulary, scorer).  Order is the column order of
#: the emitted matrix.
DETECTOR_COLUMNS: Dict[
    str,
    Callable[[ScenarioOutcome, MatrixSizing], Tuple[str, Dict[str, float]]],
] = {
    "gmm-alarm": _gmm_alarm,
    "gmm-interval": _gmm_interval,
    "drift": _drift,
    "fpr-budget": _fpr_budget,
    "context": _context,
}

#: Legal outcomes per column (declared *and* observed values).
OUTCOME_VOCABULARY: Dict[str, Tuple[str, ...]] = {
    "gmm-alarm": ("detect", "miss"),
    "gmm-interval": ("detect", "miss"),
    "drift": ("drift-flag", "no-drift"),
    "fpr-budget": ("within-budget", "over-budget"),
    "context": ("detect", "miss"),
}


def validate_declarations(scenarios: Sequence[str]) -> None:
    """Refuse to build unless every scenario declares every cell.

    Raises ``ValueError`` naming the offending scenario and cell —
    this is the guard that makes an undeclared attack or detector
    column a hard error rather than a silently empty row.
    """
    problems: List[str] = []
    for name in scenarios:
        declared = dict(SCENARIOS[name].expected_outcomes)
        for column, vocabulary in OUTCOME_VOCABULARY.items():
            if column not in declared:
                problems.append(
                    f"{name!r} declares no expected outcome for "
                    f"detector column {column!r}"
                )
                continue
            value = declared.pop(column)
            if value not in vocabulary:
                problems.append(
                    f"{name!r} declares {value!r} for {column!r}; "
                    f"legal outcomes are {list(vocabulary)}"
                )
        for column in declared:
            problems.append(
                f"{name!r} declares unknown detector column {column!r}; "
                f"registered columns are {list(DETECTOR_COLUMNS)}"
            )
        for column in getattr(SCENARIOS[name], "expected_notes", {}):
            if column not in OUTCOME_VOCABULARY:
                problems.append(
                    f"{name!r} annotates unknown detector column "
                    f"{column!r}; registered columns are "
                    f"{list(DETECTOR_COLUMNS)}"
                )
    if problems:
        raise ValueError(
            "conformance declarations are incomplete:\n  "
            + "\n  ".join(problems)
        )


# ----------------------------------------------------------------------
# Matrix
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MatrixCell:
    """One scenario scored by one detector column."""

    scenario: str
    detector: str
    expected: str
    observed: str
    metrics: Mapping[str, float] = field(default_factory=dict)
    #: Free-text annotation from the attack's ``expected_notes`` —
    #: typically a declared miss pointing at the roadmap item that
    #: would close it.
    note: str = ""

    @property
    def matched(self) -> bool:
        return self.expected == self.observed

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "detector": self.detector,
            "expected": self.expected,
            "observed": self.observed,
            "matched": self.matched,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            "note": self.note,
        }


@dataclass(frozen=True)
class ConformanceMatrix:
    """A complete, deterministic attack × detector scoring."""

    sizing: str
    p_percent: float
    scenarios: Tuple[str, ...]
    detectors: Tuple[str, ...]
    cells: Tuple[MatrixCell, ...]

    def cell(self, scenario: str, detector: str) -> MatrixCell:
        for cell in self.cells:
            if cell.scenario == scenario and cell.detector == detector:
                return cell
        raise KeyError(f"no cell ({scenario!r}, {detector!r})")

    def mismatches(self) -> List[MatrixCell]:
        return [cell for cell in self.cells if not cell.matched]

    @property
    def conformant(self) -> bool:
        return not self.mismatches()

    def to_dict(self) -> dict:
        """Canonical, JSON-ready form (stable key and cell order)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "sizing": self.sizing,
            "p_percent": self.p_percent,
            "scenarios": list(self.scenarios),
            "detectors": list(self.detectors),
            "conformant": self.conformant,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def digest(self) -> str:
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def build_matrix(
    sizing: MatrixSizing = TINY_SIZING,
    scenarios: Optional[Sequence[str]] = None,
    config=None,
    cache=None,
    use_memo: bool = True,
) -> ConformanceMatrix:
    """Score every scenario against every detector column.

    ``scenarios`` defaults to the full registry (sorted).  ``cache``
    optionally names an on-disk
    :class:`~repro.pipeline.cache.ArtifactCache` for the training
    stage; ``use_memo`` controls the in-process artifact memo.
    """
    names = sorted(scenarios if scenarios is not None else SCENARIOS)
    for name in names:
        if name not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
            )
    validate_declarations(names)

    artifacts = get_reference_artifacts(
        sizing.scale,
        config,
        seed=sizing.seed,
        use_cache=use_memo,
        cache=cache,
    )

    cells: List[MatrixCell] = []
    for name in names:
        outcome = run_scenario_experiment(
            make_attack(name),
            artifacts,
            pre_intervals=sizing.pre_intervals,
            attack_intervals=sizing.attack_intervals,
            post_intervals=0,
            scenario_seed=sizing.scenario_seed,
        )
        declared = SCENARIOS[name].expected_outcomes
        notes = SCENARIOS[name].expected_notes
        for column, scorer in DETECTOR_COLUMNS.items():
            observed, metrics = scorer(outcome, sizing)
            cells.append(
                MatrixCell(
                    scenario=name,
                    detector=column,
                    expected=declared[column],
                    observed=observed,
                    metrics=metrics,
                    note=notes.get(column, ""),
                )
            )

    return ConformanceMatrix(
        sizing=sizing.name,
        p_percent=sizing.p_percent,
        scenarios=tuple(names),
        detectors=tuple(DETECTOR_COLUMNS),
        cells=tuple(cells),
    )

"""Conformance machinery: every attack scored against every detector.

:mod:`repro.conformance.matrix` builds the attack × detector
conformance matrix — the contract that keeps the adversarial corpus
honest.  See ``docs/attacks.md`` for the semantics.
"""

from .matrix import (
    CI_SIZING,
    DETECTOR_COLUMNS,
    MATRIX_DRIFT_POLICY,
    OUTCOME_VOCABULARY,
    SIZINGS,
    TINY_SIZING,
    ConformanceMatrix,
    MatrixCell,
    MatrixSizing,
    build_matrix,
    validate_declarations,
)

__all__ = [
    "CI_SIZING",
    "DETECTOR_COLUMNS",
    "MATRIX_DRIFT_POLICY",
    "OUTCOME_VOCABULARY",
    "SIZINGS",
    "TINY_SIZING",
    "ConformanceMatrix",
    "MatrixCell",
    "MatrixSizing",
    "build_matrix",
    "validate_declarations",
]

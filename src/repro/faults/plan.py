"""Fault plans: which injection sites misbehave, how, and when.

A :class:`FaultPlan` maps *named injection sites* (threaded through the
pipeline hot paths — see :data:`KNOWN_SITES`) to :class:`FaultSpec`
behaviours.  The central design constraint is the runner's determinism
contract: serial and parallel executions of the same grid must observe
the *same* faults, so a fault decision cannot depend on process-local
state like call counts or wall-clock time.

Instead, every site invocation carries a **token** — a stable string
describing *what* is being touched (a cache key, ``job-name@attempt``,
an interval index) — and the decision is a pure function::

    fires  ⇔  U(seed, site, token) < probability

where ``U`` is a uniform [0, 1) variate derived by hashing
``(seed, site, token)`` with SHA-256.  Two processes evaluating the
same site/token under the same plan always agree, whatever the
interleaving.  ``max_triggers`` adds a *per-process* cap on top (useful
interactively; it is deliberately excluded from the cross-process
determinism guarantee and documented as such in ``docs/faults.md``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = [
    "KNOWN_SITES",
    "FAULT_MODES",
    "FaultError",
    "FaultSpec",
    "FaultPlan",
    "uniform_hash",
]

#: Injection sites wired into the code base.  Plans naming an unknown
#: site fail fast at construction — a typo must not silently disable a
#: fault campaign.
KNOWN_SITES = frozenset(
    {
        "cache.read",  # ArtifactCache.get, before the entry file is read
        "cache.write",  # ArtifactCache.put, before the blob is published
        "runner.job",  # run_job entry (per attempt)
        "stages.fit",  # detector training compute (cache miss path)
        "stages.replay",  # scenario simulation compute (cache miss path)
        "monitor.verdict",  # OnlineMonitor per-interval scoring
        "serve.score",  # ShardWorker per-record scoring (fleet service)
        "bus.publish",  # EventBus.publish, before fan-out (retried once)
        "bus.deliver",  # per queued subscription enqueue (retried once)
        "subscriber.handle",  # subscriber callback (poisons on fire)
    }
)

#: What a fired fault does at its site.
#:
#: * ``raise``    — raise :class:`FaultError` (a crashed dependency);
#: * ``delay``    — sleep ``delay_seconds`` of wall-clock time (a stall;
#:   exercises per-job timeouts);
#: * ``corrupt``  — hand the caller a deterministically bit-flipped copy
#:   of the payload bytes (a torn/rotted artifact);
#: * ``truncate`` — hand the caller the first half of the payload (a
#:   partial write/read);
#: * ``crash``    — ``os._exit`` the process (a hard worker death;
#:   exercises crashed-worker replacement — only meaningful in worker
#:   processes, never inject it serially).
FAULT_MODES = ("raise", "delay", "corrupt", "truncate", "crash")


class FaultError(RuntimeError):
    """Raised by a fired ``raise``-mode fault.

    Carries the site so failure manifests can attribute the crash.
    """

    def __init__(self, site: str, message: str = "injected fault"):
        super().__init__(f"{message} [site={site}]")
        self.site = site


def uniform_hash(seed: int, site: str, token: str) -> float:
    """Pure uniform [0, 1) variate from ``(seed, site, token)``.

    The basis of every fault decision; also reused by the runner for
    seeded retry-backoff jitter.
    """
    digest = hashlib.sha256(f"{seed}:{site}:{token}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultSpec:
    """How one site misbehaves when its fault fires.

    Parameters
    ----------
    mode:
        One of :data:`FAULT_MODES`.
    probability:
        Chance a given ``(site, token)`` invocation fires, evaluated as
        a pure hash of ``(plan seed, site, token)`` — identical across
        processes and repeat calls with the same token.
    match:
        Optional substring filter: the fault only fires for tokens
        containing it (e.g. ``"shellcode"`` to target one job, ``"@0"``
        to target only first attempts).
    max_triggers:
        Per-process cap on fires (``None`` = unlimited).  Counted in
        whichever process evaluates the site; not part of the
        cross-process determinism guarantee.
    delay_seconds:
        Sleep length for ``delay`` mode.
    message:
        Carried into :class:`FaultError` for ``raise`` mode.
    """

    mode: str
    probability: float = 1.0
    match: Optional[str] = None
    max_triggers: Optional[int] = None
    delay_seconds: float = 0.1
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; choose from {FAULT_MODES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.max_triggers is not None and self.max_triggers < 1:
            raise ValueError("max_triggers must be >= 1")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")


@dataclass
class FaultPlan:
    """A seeded assignment of :class:`FaultSpec` behaviours to sites.

    Picklable (travels to runner worker processes); the per-process
    ``fires`` bookkeeping does not follow the pickle — each worker
    counts its own triggers.
    """

    sites: Dict[str, FaultSpec] = field(default_factory=dict)
    seed: int = 0
    #: Per-process fire counts by site (diagnostics + ``max_triggers``).
    fires: Dict[str, int] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        unknown = set(self.sites) - KNOWN_SITES
        if unknown:
            raise ValueError(
                f"unknown fault site(s) {sorted(unknown)}; "
                f"known sites: {sorted(KNOWN_SITES)}"
            )

    def decide(self, site: str, token: str) -> Optional[FaultSpec]:
        """The spec to apply at this invocation, or ``None``.

        Pure in ``(seed, site, token)`` except for the optional
        per-process ``max_triggers`` cap.
        """
        spec = self.sites.get(site)
        if spec is None:
            return None
        if spec.match is not None and spec.match not in token:
            return None
        if spec.probability < 1.0 and (
            uniform_hash(self.seed, site, token) >= spec.probability
        ):
            return None
        fired = self.fires.get(site, 0)
        if spec.max_triggers is not None and fired >= spec.max_triggers:
            return None
        self.fires[site] = fired + 1
        return spec

    def would_fire(self, site: str, token: str) -> bool:
        """Pure preview of :meth:`decide` (no trigger accounting)."""
        spec = self.sites.get(site)
        if spec is None:
            return False
        if spec.match is not None and spec.match not in token:
            return False
        return (
            spec.probability >= 1.0
            or uniform_hash(self.seed, site, token) < spec.probability
        )

    # ------------------------------------------------------------------
    # (De)serialisation — the CLI ``--fault-plan`` file format.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        sites = {}
        for site, spec in sorted(self.sites.items()):
            entry = {"mode": spec.mode, "probability": spec.probability}
            if spec.match is not None:
                entry["match"] = spec.match
            if spec.max_triggers is not None:
                entry["max_triggers"] = spec.max_triggers
            if spec.mode == "delay":
                entry["delay_seconds"] = spec.delay_seconds
            sites[site] = entry
        return {"seed": self.seed, "sites": sites}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultPlan":
        sites = {
            site: FaultSpec(**entry)
            for site, entry in dict(payload.get("sites", {})).items()
        }
        return cls(sites=sites, seed=int(payload.get("seed", 0)))

    def __getstate__(self) -> dict:
        return {"sites": self.sites, "seed": self.seed}

    def __setstate__(self, state: dict) -> None:
        self.sites = state["sites"]
        self.seed = state["seed"]
        self.fires = {}

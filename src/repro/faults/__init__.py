"""``repro.faults`` — deterministic, seedable fault injection.

The paper's architecture is built around surviving misbehaviour: the
SecureCore monitor must keep producing verdicts while the monitored
core is compromised.  This package lets the reproduction hold its own
pipeline to that standard.  Named injection sites are threaded through
the hot paths (artifact-cache reads/writes, worker job execution, the
fit/replay stages, the online-verdict loop); a :class:`FaultPlan`
decides — purely, from a seed and a per-invocation token — which
invocations raise, stall, corrupt or truncate.

Usage::

    from repro import faults

    plan = faults.FaultPlan(
        sites={"cache.read": faults.FaultSpec(mode="corrupt", probability=0.2)},
        seed=7,
    )
    with faults.injected(plan):
        runner.run(jobs)          # ~20% of cache reads hand back rotten bytes

or process-wide with :func:`install` / :func:`uninstall`.  The
:class:`~repro.pipeline.runner.ExperimentRunner` accepts a plan
directly (``fault_plan=``) and ships it to its worker processes.

**Zero-overhead when idle**: with no plan installed, every site check
is one global read and a ``None`` comparison; pipeline outputs are
bit-identical with and without this package in the picture (asserted
by the fault-campaign test suite and the golden fixtures).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Optional

from .. import obs
from .plan import (
    FAULT_MODES,
    KNOWN_SITES,
    FaultError,
    FaultPlan,
    FaultSpec,
    uniform_hash,
)

__all__ = [
    "FAULT_MODES",
    "KNOWN_SITES",
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "uniform_hash",
    "active",
    "install",
    "uninstall",
    "injected",
    "check",
    "mangle",
]

_active: Optional[FaultPlan] = None


def active() -> Optional[FaultPlan]:
    """The currently installed plan (``None`` = faults disabled)."""
    return _active


def install(plan: FaultPlan) -> FaultPlan:
    """Install a plan process-wide; subsequent site checks consult it."""
    global _active
    _active = plan
    return plan


def uninstall() -> None:
    global _active
    _active = None


@contextmanager
def injected(plan: Optional[FaultPlan]):
    """Scoped :func:`install`; restores the previous plan on exit.

    ``injected(None)`` is a no-op pass-through, so callers can thread
    an optional plan without branching.
    """
    global _active
    previous = _active
    if plan is not None:
        _active = plan
    try:
        yield plan
    finally:
        _active = previous


def check(site: str, token: str = "-") -> Optional[FaultSpec]:
    """Evaluate an injection site; the hot-path entry point.

    With no plan installed this returns ``None`` immediately.  When the
    plan fires a fault here:

    * ``raise`` mode raises :class:`FaultError` (callers do *not*
      catch it unless graceful degradation is their contract — the
      online monitor does, the cache does not);
    * ``delay`` mode sleeps ``delay_seconds`` and returns the spec;
    * ``corrupt`` / ``truncate`` modes return the spec — the caller
      applies :func:`mangle` to the payload it owns;
    * ``crash`` mode terminates the process via ``os._exit`` (a hard
      worker death for crashed-worker-replacement drills).

    Every fired fault increments ``faults.injected.<site>`` in the live
    metrics registry and emits a ``fault.injected`` trace event.
    """
    plan = _active
    if plan is None:
        return None
    spec = plan.decide(site, str(token))
    if spec is None:
        return None
    registry = obs.metrics()
    registry.counter(f"faults.injected.{site}").inc()
    tracer = obs.tracer()
    if tracer.enabled:
        tracer.instant(
            "fault.injected",
            time.perf_counter_ns(),
            category="faults",
            args={"site": site, "token": str(token), "mode": spec.mode},
        )
    if spec.mode == "raise":
        raise FaultError(site, spec.message)
    if spec.mode == "delay":
        time.sleep(spec.delay_seconds)
        return spec
    if spec.mode == "crash":  # pragma: no cover - kills the process
        import os

        os._exit(70)
    return spec  # corrupt / truncate: caller mangles its payload


def mangle(spec: FaultSpec, data: bytes, site: str, token: str = "-") -> bytes:
    """Deterministically damage ``data`` according to a fired spec.

    ``corrupt`` flips one bit at a hash-derived offset (so checksums
    fail but lengths agree); ``truncate`` keeps the first half.  Both
    are pure in ``(site, token, data)`` — repeat invocations tear the
    payload identically, which keeps fault campaigns reproducible.
    """
    if not data:
        return data
    if spec.mode == "truncate":
        return data[: len(data) // 2]
    if spec.mode == "corrupt":
        offset = int(uniform_hash(0, site, f"{token}:offset") * len(data))
        flipped = data[offset] ^ 0x01
        return data[:offset] + bytes([flipped]) + data[offset + 1 :]
    return data

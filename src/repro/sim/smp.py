"""SMP support: partitioning task sets across monitored cores.

Section 5.5 of the paper: for SMP architectures (one OS across several
cores) "the Memometer would need only one set of MHM memories ... the
address snoop and filtering logic needs to be replicated for each
core".  The platform models exactly that — every monitored core's
bursts feed the *same* Memometer, tagged with their core id — and this
module provides the scheduling side: partitioned rate-monotonic
assignment of a task set onto N cores.
"""

from __future__ import annotations

from typing import Sequence

from .task import TaskDefinition

__all__ = ["partition_tasks", "per_core_utilization"]


def partition_tasks(
    tasks: Sequence[TaskDefinition], num_cores: int
) -> list[TaskDefinition]:
    """Worst-fit-decreasing partitioning by utilisation.

    The classic partitioned-RM heuristic: sort tasks by decreasing
    utilisation and place each on the currently least-loaded core.
    Returns new task definitions with their ``core`` field assigned.

    Raises
    ------
    ValueError
        If any single core would end up with utilisation > 1 (the set
        cannot be partitioned this way).
    """
    if num_cores < 1:
        raise ValueError("num_cores must be >= 1")
    loads = [0.0] * num_cores
    assigned: list[TaskDefinition] = []
    for task in sorted(tasks, key=lambda t: -t.utilization):
        core = min(range(num_cores), key=loads.__getitem__)
        if loads[core] + task.utilization > 1.0:
            raise ValueError(
                f"task {task.name!r} (u={task.utilization:.2f}) does not fit "
                f"on any of {num_cores} cores"
            )
        loads[core] += task.utilization
        assigned.append(task.on_core(core))
    # Restore the caller's ordering (stable by original index).
    order = {task.name: i for i, task in enumerate(tasks)}
    assigned.sort(key=lambda t: order[t.name])
    return assigned


def per_core_utilization(
    tasks: Sequence[TaskDefinition], num_cores: int
) -> list[float]:
    """Total utilisation each core carries under an assignment."""
    loads = [0.0] * num_cores
    for task in tasks:
        if not 0 <= task.core < num_cores:
            raise ValueError(
                f"task {task.name!r} is assigned to core {task.core}, "
                f"outside 0..{num_cores - 1}"
            )
        loads[task.core] += task.utilization
    return loads

"""MiBench-like periodic workloads.

Section 5.1 runs four MiBench applications as periodic tasks (plus
qsort, launched mid-run in Scenario 1):

====================  ==========  ========  ==============
application           exec time   period    category
====================  ==========  ========  ==============
FFT                   2 ms        10 ms     telecomm
bitcount              3 ms        20 ms     automotive
basicmath             9 ms        50 ms     automotive
sha                   25 ms       100 ms    security
qsort (Scenario 1)    6 ms        30 ms     automotive
====================  ==========  ========  ==============

Total utilisation of the base set is 78 %, matching the paper.  The
syscall mixes are what distinguishes the tasks from the kernel's point
of view; sha is deliberately read-heavy, because Section 5.3's rootkit
analysis hinges on it ("sha ... which uses many read system calls").
"""

from __future__ import annotations

from ..engine import NS_PER_MS
from ..task import SyscallUse, TaskDefinition

__all__ = [
    "fft_task",
    "bitcount_task",
    "basicmath_task",
    "sha_task",
    "qsort_task",
    "crc32_task",
    "dijkstra_task",
    "susan_task",
    "patricia_task",
    "jpeg_task",
    "paper_taskset",
    "extended_taskset",
    "TASK_CATEGORIES",
]

#: MiBench category of each workload (Section 5.1's table).
TASK_CATEGORIES = {
    "fft": "telecomm",
    "bitcount": "automotive",
    "basicmath": "automotive",
    "sha": "security",
    "qsort": "automotive",
    "crc32": "telecomm",
    "dijkstra": "network",
    "susan": "automotive",
    "patricia": "network",
    "jpeg": "consumer",
}


def fft_task(phase_ns: int = 0) -> TaskDefinition:
    """FFT: 2 ms / 10 ms (telecomm)."""
    return TaskDefinition(
        name="fft",
        exec_time_ns=2 * NS_PER_MS,
        period_ns=10 * NS_PER_MS,
        syscalls=(
            SyscallUse("read", 2),
            SyscallUse("write", 1),
            SyscallUse("gettimeofday", 2),
        ),
        phase_ns=phase_ns,
    )


def bitcount_task(phase_ns: int = 0) -> TaskDefinition:
    """bitcount: 3 ms / 20 ms (automotive)."""
    return TaskDefinition(
        name="bitcount",
        exec_time_ns=3 * NS_PER_MS,
        period_ns=20 * NS_PER_MS,
        syscalls=(
            SyscallUse("read", 1),
            SyscallUse("write", 1),
            SyscallUse("getpid", 1),
        ),
        phase_ns=phase_ns,
    )


def basicmath_task(phase_ns: int = 0) -> TaskDefinition:
    """basicmath: 9 ms / 50 ms (automotive)."""
    return TaskDefinition(
        name="basicmath",
        exec_time_ns=9 * NS_PER_MS,
        period_ns=50 * NS_PER_MS,
        syscalls=(
            SyscallUse("write", 4),
            SyscallUse("brk", 1),
            SyscallUse("gettimeofday", 2),
            SyscallUse("clock_gettime", 2),
        ),
        phase_ns=phase_ns,
    )


def sha_task(phase_ns: int = 0) -> TaskDefinition:
    """sha: 25 ms / 100 ms (security) — deliberately read-heavy."""
    return TaskDefinition(
        name="sha",
        exec_time_ns=25 * NS_PER_MS,
        period_ns=100 * NS_PER_MS,
        syscalls=(
            SyscallUse("read", 40),
            SyscallUse("write", 4),
            SyscallUse("fstat64", 1),
            SyscallUse("brk", 1),
        ),
        phase_ns=phase_ns,
    )


def qsort_task(phase_ns: int = 0) -> TaskDefinition:
    """qsort: 6 ms / 30 ms — the application *added* in Scenario 1."""
    return TaskDefinition(
        name="qsort",
        exec_time_ns=6 * NS_PER_MS,
        period_ns=30 * NS_PER_MS,
        syscalls=(
            SyscallUse("read", 8),
            SyscallUse("write", 2),
            SyscallUse("brk", 2),
            SyscallUse("mmap", 1),
        ),
        phase_ns=phase_ns,
    )


def crc32_task(phase_ns: int = 0) -> TaskDefinition:
    """crc32: 1 ms / 25 ms — extra telecomm workload for larger setups."""
    return TaskDefinition(
        name="crc32",
        exec_time_ns=1 * NS_PER_MS,
        period_ns=25 * NS_PER_MS,
        syscalls=(SyscallUse("read", 4), SyscallUse("write", 1)),
        phase_ns=phase_ns,
    )


def dijkstra_task(phase_ns: int = 0) -> TaskDefinition:
    """dijkstra: 12 ms / 200 ms — extra network workload."""
    return TaskDefinition(
        name="dijkstra",
        exec_time_ns=12 * NS_PER_MS,
        period_ns=200 * NS_PER_MS,
        syscalls=(
            SyscallUse("read", 6),
            SyscallUse("write", 2),
            SyscallUse("mmap", 1),
            SyscallUse("munmap", 1),
        ),
        phase_ns=phase_ns,
    )


def susan_task(phase_ns: int = 0) -> TaskDefinition:
    """susan (image smoothing): 14 ms / 200 ms — mmap-heavy."""
    return TaskDefinition(
        name="susan",
        exec_time_ns=14 * NS_PER_MS,
        period_ns=200 * NS_PER_MS,
        syscalls=(
            SyscallUse("read", 4),
            SyscallUse("write", 2),
            SyscallUse("mmap", 2),
            SyscallUse("munmap", 2),
            SyscallUse("brk", 1),
        ),
        phase_ns=phase_ns,
    )


def patricia_task(phase_ns: int = 0) -> TaskDefinition:
    """patricia (routing-table lookups): 5 ms / 100 ms."""
    return TaskDefinition(
        name="patricia",
        exec_time_ns=5 * NS_PER_MS,
        period_ns=100 * NS_PER_MS,
        syscalls=(
            SyscallUse("read", 10),
            SyscallUse("brk", 2),
            SyscallUse("gettimeofday", 1),
        ),
        phase_ns=phase_ns,
    )


def jpeg_task(phase_ns: int = 0) -> TaskDefinition:
    """jpeg encode: 30 ms / 250 ms — write-heavy, bursty allocation."""
    return TaskDefinition(
        name="jpeg",
        exec_time_ns=30 * NS_PER_MS,
        period_ns=250 * NS_PER_MS,
        syscalls=(
            SyscallUse("read", 12),
            SyscallUse("write", 20),
            SyscallUse("brk", 3),
            SyscallUse("mmap", 1),
            SyscallUse("fstat64", 1),
        ),
        phase_ns=phase_ns,
    )


def paper_taskset() -> list[TaskDefinition]:
    """The base task set of Section 5.1 (78 % utilisation)."""
    return [fft_task(), bitcount_task(), basicmath_task(), sha_task()]


def extended_taskset() -> list[TaskDefinition]:
    """A richer nine-task workload for larger-scale experiments.

    Intended for SMP setups (total utilisation ~1.3: partition with
    :func:`repro.sim.smp.partition_tasks` across two or more cores).
    """
    return paper_taskset() + [
        qsort_task(),
        crc32_task(),
        dijkstra_task(),
        susan_task(),
        patricia_task(),
        jpeg_task(),
    ]

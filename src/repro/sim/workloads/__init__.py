"""Periodic workload definitions (MiBench-like, per Section 5.1)."""

from .rtos import RTOS_JITTER_SCALE, rtos_config, rtos_taskset
from .mibench import (
    TASK_CATEGORIES,
    basicmath_task,
    bitcount_task,
    crc32_task,
    dijkstra_task,
    fft_task,
    paper_taskset,
    qsort_task,
    sha_task,
)

__all__ = [
    "fft_task",
    "bitcount_task",
    "basicmath_task",
    "sha_task",
    "qsort_task",
    "crc32_task",
    "dijkstra_task",
    "paper_taskset",
    "TASK_CATEGORIES",
    "rtos_taskset",
    "rtos_config",
    "RTOS_JITTER_SCALE",
]

"""RTOS-like workload and platform configuration.

The paper's conclusion (Section 7): "We plan to demonstrate these
methods on a real platform that includes a real-time operating system
(RTOS).  RTOSes have a more deterministic memory usage; hence our
techniques will be even more effective when applied to such a
context."

This module models that context so the claim can be tested (ablation
benchmark ``test_ablation_rtos.py``):

* **harmonic periods** and near-zero execution jitter (static,
  table-driven task sets are the norm on an RTOS);
* **no demand paging** (RTOS tasks are locked in memory: zero page
  faults);
* **reduced kernel footprint jitter** (deterministic, bounded-loop
  kernel paths), via the platform's ``kernel_jitter_scale``.
"""

from __future__ import annotations

from ..engine import NS_PER_MS
from ..task import SyscallUse, TaskDefinition

__all__ = ["rtos_taskset", "rtos_config", "RTOS_JITTER_SCALE"]

#: Kernel footprint jitter scale of the RTOS-like platform.
RTOS_JITTER_SCALE = 0.1

_RTOS_EXEC_JITTER = 0.002


def _rtos_task(name, exec_ms, period_ms, syscalls) -> TaskDefinition:
    return TaskDefinition(
        name=name,
        exec_time_ns=exec_ms * NS_PER_MS,
        period_ns=period_ms * NS_PER_MS,
        syscalls=syscalls,
        exec_jitter=_RTOS_EXEC_JITTER,
        pagefaults_per_job=0.0,  # memory-locked tasks
    )


def rtos_taskset() -> list[TaskDefinition]:
    """A harmonic, memory-locked control workload (~78 % utilisation).

    Periods are harmonic (10 | 20 | 40 | 80 ms) — the common RTOS
    design pattern — which keeps the number of distinct interval
    phases small and the MHM patterns correspondingly tight.
    """
    return [
        _rtos_task(
            "servo_loop", 2, 10, (SyscallUse("read", 2), SyscallUse("write", 2))
        ),
        _rtos_task(
            "sensor_fusion",
            4,
            20,
            (SyscallUse("read", 6), SyscallUse("clock_gettime", 2)),
        ),
        _rtos_task(
            "comms", 7, 40, (SyscallUse("read", 8), SyscallUse("write", 6))
        ),
        _rtos_task(
            "health_log",
            16,
            80,
            (SyscallUse("write", 10), SyscallUse("fstat64", 1)),
        ),
    ]


def rtos_config(seed: int = 2015, **overrides):
    """Platform configuration for the RTOS-like context."""
    # Imported here: repro.sim.platform imports the workloads package,
    # so a module-level import would be circular.
    from ..platform import PlatformConfig

    parameters = dict(
        tasks=tuple(rtos_taskset()),
        kernel_jitter_scale=RTOS_JITTER_SCALE,
        seed=seed,
    )
    parameters.update(overrides)
    return PlatformConfig(**parameters)

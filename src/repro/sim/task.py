"""Periodic real-time task model.

The paper's workload (Section 5.1) is a set of periodic applications
(MiBench programs with manually assigned periods).  A
:class:`TaskDefinition` captures what the MHM detector actually cares
about: how long a job runs, how often it is released, and which kernel
services it invokes along the way — because only the *kernel-side*
activity lands inside the monitored region.

A :class:`Job` is one release of a task.  Its execution is a timeline of
user-time segments punctuated by kernel-service invocations; each
invocation adds the service's CPU latency to the job and emits the
service's fetch footprint at the invocation instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .kernel.layout import USER_SPACE_BASE

__all__ = ["SyscallUse", "TaskDefinition", "KernelCall", "Job"]


@dataclass(frozen=True)
class SyscallUse:
    """A task's per-job usage of one syscall: ``count`` calls, spread
    evenly across the job's user-time with a little placement jitter."""

    name: str
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("syscall count must be positive")


@dataclass(frozen=True)
class TaskDefinition:
    """Static description of a periodic task.

    Parameters
    ----------
    name:
        Unique task name (also the tie-break for equal periods).
    exec_time_ns:
        Mean user-space execution time per job.
    period_ns:
        Release period; rate-monotonic priority follows from it.
    syscalls:
        Kernel services each job invokes (name, per-job count).
    exec_jitter:
        Relative standard deviation of per-job execution time.
    phase_ns:
        Release offset of the first job.
    pagefaults_per_job:
        Expected number of (Poisson-distributed) page faults per job.
    user_text_base:
        Base of the task's user text; fetches there are emitted so the
        Memometer's address filter is exercised, then dropped by it.
    core:
        Monitored core the task is partitioned onto (SMP platforms;
        see paper Section 5.5).
    """

    name: str
    exec_time_ns: int
    period_ns: int
    syscalls: tuple[SyscallUse, ...] = ()
    exec_jitter: float = 0.02
    phase_ns: int = 0
    pagefaults_per_job: float = 0.2
    user_text_base: Optional[int] = None
    core: int = 0

    def __post_init__(self) -> None:
        if self.core < 0:
            raise ValueError("core must be non-negative")
        if self.exec_time_ns <= 0:
            raise ValueError("exec_time_ns must be positive")
        if self.period_ns <= 0:
            raise ValueError("period_ns must be positive")
        if self.exec_time_ns > self.period_ns:
            raise ValueError(
                f"task {self.name!r}: exec time {self.exec_time_ns} exceeds "
                f"period {self.period_ns}"
            )
        if not 0.0 <= self.exec_jitter < 0.5:
            raise ValueError("exec_jitter must be in [0, 0.5)")
        if self.phase_ns < 0:
            raise ValueError("phase_ns must be non-negative")
        if self.pagefaults_per_job < 0:
            raise ValueError("pagefaults_per_job must be non-negative")

    @property
    def utilization(self) -> float:
        return self.exec_time_ns / self.period_ns

    def resolved_user_base(self, index: int) -> int:
        """User text base; auto-spaced by task index when unspecified."""
        if self.user_text_base is not None:
            return self.user_text_base
        return USER_SPACE_BASE + (index + 1) * 0x0010_0000

    def with_phase(self, phase_ns: int) -> "TaskDefinition":
        from dataclasses import replace

        return replace(self, phase_ns=phase_ns)

    def on_core(self, core: int) -> "TaskDefinition":
        from dataclasses import replace

        return replace(self, core=core)


@dataclass(frozen=True)
class KernelCall:
    """A scheduled kernel entry within a job's user-time.

    ``user_offset_ns`` is the amount of *user* execution after which the
    call fires.  ``via_table`` distinguishes syscalls (dispatched
    through the — possibly hijacked — syscall table) from involuntary
    kernel entries such as page faults.
    """

    user_offset_ns: int
    service: str
    via_table: bool = True


class Job:
    """One release of a periodic task."""

    __slots__ = (
        "task",
        "release_ns",
        "user_required_ns",
        "user_done_ns",
        "kernel_pending_ns",
        "kernel_time_ns",
        "calls",
        "next_call",
        "completed_at_ns",
        "preemptions",
        "dispatch_stamp",
        "user_base",
    )

    def __init__(
        self,
        task: TaskDefinition,
        release_ns: int,
        rng: np.random.Generator,
        user_base: int,
    ):
        self.task = task
        self.release_ns = release_ns
        jitter = rng.normal(1.0, task.exec_jitter) if task.exec_jitter else 1.0
        self.user_required_ns = max(1, int(task.exec_time_ns * max(0.5, jitter)))
        self.user_done_ns = 0
        self.kernel_pending_ns = 0
        self.kernel_time_ns = 0
        self.calls = self._plan_calls(rng)
        self.next_call = 0
        self.completed_at_ns: Optional[int] = None
        self.preemptions = 0
        self.dispatch_stamp = 0
        self.user_base = user_base

    def _plan_calls(self, rng: np.random.Generator) -> list[KernelCall]:
        """Place the job's kernel entries along its user timeline."""
        calls: list[KernelCall] = []
        span = self.user_required_ns
        for use in self.task.syscalls:
            for i in range(use.count):
                fraction = (i + 0.5) / use.count
                fraction += rng.uniform(-0.3, 0.3) / use.count
                fraction = min(0.99, max(0.01, fraction))
                calls.append(
                    KernelCall(
                        user_offset_ns=int(fraction * span),
                        service=use.name,
                        via_table=True,
                    )
                )
        n_faults = int(rng.poisson(self.task.pagefaults_per_job))
        for _ in range(n_faults):
            offset = int(rng.uniform(0.01, 0.99) * span)
            calls.append(
                KernelCall(
                    user_offset_ns=offset, service="kernel.page_fault", via_table=False
                )
            )
        calls.sort(key=lambda c: c.user_offset_ns)
        return calls

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    @property
    def is_complete(self) -> bool:
        return (
            self.user_done_ns >= self.user_required_ns
            and self.kernel_pending_ns == 0
            and self.next_call >= len(self.calls)
        )

    @property
    def pending_call(self) -> Optional[KernelCall]:
        if self.next_call < len(self.calls):
            return self.calls[self.next_call]
        return None

    def time_to_next_milestone(self) -> int:
        """CPU time until the next event in this job's execution.

        Milestones are, in order of precedence: finishing the current
        kernel segment, reaching the next kernel-call offset, finishing
        the job's user time.
        """
        if self.kernel_pending_ns > 0:
            return self.kernel_pending_ns
        call = self.pending_call
        if call is not None:
            return max(0, call.user_offset_ns - self.user_done_ns)
        return self.user_required_ns - self.user_done_ns

    def advance(self, elapsed_ns: int) -> None:
        """Consume ``elapsed_ns`` of CPU: kernel segment first, then
        user time (matching how the monitored core actually spends it)."""
        if elapsed_ns < 0:
            raise ValueError("cannot advance by negative time")
        take = min(self.kernel_pending_ns, elapsed_ns)
        self.kernel_pending_ns -= take
        self.kernel_time_ns += take
        remaining = elapsed_ns - take
        if remaining > 0:
            self.user_done_ns = min(
                self.user_required_ns, self.user_done_ns + remaining
            )

    def begin_kernel_segment(self, latency_ns: int) -> None:
        self.kernel_pending_ns += max(0, latency_ns)

    @property
    def response_time_ns(self) -> Optional[int]:
        if self.completed_at_ns is None:
            return None
        return self.completed_at_ns - self.release_ns

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Job({self.task.name}@{self.release_ns}, "
            f"user={self.user_done_ns}/{self.user_required_ns})"
        )

"""The synthetic embedded kernel: layout, services, scheduler, processes."""

from .aslr import RANDOMIZE_VA_SPACE, AslrState
from .kernel import Kernel
from .layout import (
    KERNEL_TEXT_BASE,
    KERNEL_TEXT_END,
    KERNEL_TEXT_SIZE,
    MODULE_SPACE_BASE,
    KernelFunction,
    KernelLayout,
    default_heatmap_spec,
)
from .modules import LoadedModule, ModuleLoader
from .process import ProcessManager, ProcessRecord
from .scheduler import RMScheduler, TaskControl, TaskStats
from .syscalls import (
    DEFAULT_SYSCALLS,
    KernelService,
    ServiceRegistry,
    SyscallTable,
    build_default_services,
)

__all__ = [
    "Kernel",
    "KernelLayout",
    "KernelFunction",
    "KERNEL_TEXT_BASE",
    "KERNEL_TEXT_END",
    "KERNEL_TEXT_SIZE",
    "MODULE_SPACE_BASE",
    "default_heatmap_spec",
    "AslrState",
    "RANDOMIZE_VA_SPACE",
    "LoadedModule",
    "ModuleLoader",
    "ProcessManager",
    "ProcessRecord",
    "RMScheduler",
    "TaskControl",
    "TaskStats",
    "KernelService",
    "ServiceRegistry",
    "SyscallTable",
    "DEFAULT_SYSCALLS",
    "build_default_services",
]

"""Address-space layout randomisation state.

The paper's Scenario 2 injects the shell-storm #669 shellcode, which
disables ASLR on Linux/ARM by writing ``0`` to
``/proc/sys/kernel/randomize_va_space`` and then spawns a shell.  The
MHM detector never *reads* this state — it sees only the kernel code
paths the write traverses — but modelling it lets tests assert that the
attack actually achieved its goal, and lets the process model honour
the randomise-or-not decision at ``execve`` time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RANDOMIZE_VA_SPACE", "AslrState"]

#: The sysctl path the shellcode writes to.
RANDOMIZE_VA_SPACE = "kernel/randomize_va_space"

#: Page-aligned randomisation span for user text bases (ARM-ish 8 MB).
_ASLR_SPAN = 0x0080_0000
_PAGE = 0x1000


@dataclass
class AslrState:
    """Kernel ASLR knob plus the mmap-randomisation it controls.

    ``randomize_va_space`` follows the Linux meaning: 0 = off,
    1 = stacks/mmap, 2 = also heap (the default).
    """

    randomize_va_space: int = 2
    change_log: list[tuple[int, int]] = field(default_factory=list)

    @property
    def enabled(self) -> bool:
        return self.randomize_va_space > 0

    def sysctl_write(self, value: int, time_ns: int = 0) -> None:
        """Apply a write to ``/proc/sys/kernel/randomize_va_space``."""
        if value not in (0, 1, 2):
            raise ValueError(f"randomize_va_space must be 0, 1 or 2, got {value}")
        self.change_log.append((time_ns, value))
        self.randomize_va_space = value

    def randomize_base(self, base: int, rng: np.random.Generator) -> int:
        """Text base chosen at ``execve`` time under the current policy."""
        if not self.enabled:
            return base
        offset = int(rng.integers(0, _ASLR_SPAN // _PAGE)) * _PAGE
        return base + offset

"""Process lifecycle: launching and killing applications at run time.

Scenario 1 of the paper launches ``qsort`` while the system is being
monitored and later exits it; Scenario 2's shellcode kills its host
process by spawning a shell.  Both manifest in the MHM through the
kernel paths they traverse — ``fork``/``execve`` (with their large
loader footprints), the page-fault storm of a cold process, and
``exit_group`` on the way out.  :class:`ProcessManager` drives exactly
those paths and keeps the scheduler's task set in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..engine import Simulator
from ..task import TaskDefinition
from .kernel import Kernel
from .scheduler import RMScheduler, TaskControl

__all__ = ["ProcessRecord", "ProcessManager"]


@dataclass
class ProcessRecord:
    """Bookkeeping for a launched process."""

    name: str
    pid: int
    launched_at_ns: int
    exited_at_ns: Optional[int] = None
    aslr_randomized: bool = True

    @property
    def alive(self) -> bool:
        return self.exited_at_ns is None


class ProcessManager:
    """Creates and destroys periodic application processes."""

    #: Page faults a freshly exec'd process takes while warming up.
    _COLD_START_FAULTS = 6

    def __init__(
        self,
        sim: Simulator,
        kernel: Kernel,
        scheduler: Union[RMScheduler, Sequence[RMScheduler]],
    ):
        self.sim = sim
        self.kernel = kernel
        if isinstance(scheduler, RMScheduler):
            self.schedulers: list[RMScheduler] = [scheduler]
        else:
            self.schedulers = list(scheduler)
            if not self.schedulers:
                raise ValueError("need at least one scheduler")
        self._next_pid = 100
        self.processes: dict[str, ProcessRecord] = {}

    @property
    def scheduler(self) -> RMScheduler:
        """The boot core's scheduler (single-core compatibility view)."""
        return self.schedulers[0]

    def _scheduler_for(self, core: int) -> RMScheduler:
        if not 0 <= core < len(self.schedulers):
            raise ValueError(
                f"task targets core {core}, platform has "
                f"{len(self.schedulers)} monitored core(s)"
            )
        return self.schedulers[core]

    def _scheduler_running(self, name: str):
        for candidate in self.schedulers:
            if name in candidate.task_names:
                return candidate
        return None

    def launch(
        self, definition: TaskDefinition, first_release_ns: Optional[int] = None
    ) -> ProcessRecord:
        """Launch a periodic application *now*.

        Emits the fork → execve → cold-start page-fault footprints, then
        admits the task to the scheduler.  The first job is released one
        period after launch unless ``first_release_ns`` is given, which
        models the exec'd process finishing initialisation first.
        """
        if definition.name in self.processes and self.processes[definition.name].alive:
            raise ValueError(f"process {definition.name!r} is already running")

        self.kernel.invoke_syscall("fork")
        self.kernel.invoke_syscall("execve")
        for _ in range(self._COLD_START_FAULTS):
            self.kernel.run_service("kernel.page_fault")

        record = ProcessRecord(
            name=definition.name,
            pid=self._next_pid,
            launched_at_ns=self.sim.now,
            aslr_randomized=self.kernel.aslr.enabled,
        )
        self._next_pid += 1
        self.processes[definition.name] = record

        if first_release_ns is None:
            first_release_ns = self.sim.now + definition.period_ns
        self._scheduler_for(definition.core).add_task(
            definition, first_release_ns=first_release_ns
        )
        return record

    def kill(self, name: str) -> ProcessRecord:
        """Terminate a running application (voluntary or forced exit).

        Emits the ``exit_group`` footprint and withdraws the task from
        the scheduler; any in-flight job is aborted.  Tasks admitted at
        platform boot (which never went through :meth:`launch`) get a
        synthetic process record on the way out.
        """
        record = self.processes.get(name)
        if record is not None and not record.alive:
            raise KeyError(f"process {name!r} is not running")
        scheduler = self._scheduler_running(name)
        if record is None:
            if scheduler is None:
                raise KeyError(f"process {name!r} is not running")
            record = ProcessRecord(name=name, pid=self._next_pid, launched_at_ns=0)
            self._next_pid += 1
            self.processes[name] = record
        if scheduler is not None:
            scheduler.remove_task(name)
        self.kernel.invoke_syscall("exit_group")
        record.exited_at_ns = self.sim.now
        return record

    def spawn_shell(self, name: str = "sh") -> ProcessRecord:
        """Spawn an interactive shell (the tail end of most shellcodes).

        The shell is an *aperiodic* process: it produces the fork/exec
        footprints but contributes no periodic jobs — it just sits on a
        blocking read, which is exactly why the post-attack MHMs settle
        into a new (and anomalous) steady state.
        """
        self.kernel.invoke_syscall("fork")
        self.kernel.invoke_syscall("execve")
        for _ in range(self._COLD_START_FAULTS // 2):
            self.kernel.run_service("kernel.page_fault")
        record = ProcessRecord(
            name=name,
            pid=self._next_pid,
            launched_at_ns=self.sim.now,
            aslr_randomized=self.kernel.aslr.enabled,
        )
        self._next_pid += 1
        self.processes[name] = record
        return record

    def alive_processes(self) -> list[str]:
        return sorted(n for n, r in self.processes.items() if r.alive)

    def admitted_task(self, name: str) -> TaskControl:
        scheduler = self._scheduler_running(name)
        if scheduler is None:
            raise KeyError(f"task {name!r} is not admitted on any core")
        return scheduler.task(name)

"""Synthetic kernel image layout.

The paper monitors the embedded Linux 3.4 kernel's ``.text`` segment,
mapped between ``0xC0008000`` and ``0xC02E7AA4`` (3,013,284 bytes; see
Figure 1 and Section 5.1).  We reproduce that address geometry exactly
with a *synthetic* kernel image: a symbol table of a few thousand
functions, grouped into subsystems, laid out contiguously across the
segment.

Only the geometry matters to the detector: MHM cells aggregate fetches
at 2 KB granularity, so what the learning pipeline sees is which
*function ranges* each kernel service touches and how often — not the
instructions inside them.  The layout therefore contains:

* a fixed set of **anchor functions** — the well-known kernel entry
  points that the service footprints (:mod:`repro.sim.kernel.syscalls`)
  reference by name (``schedule``, ``vfs_read``, ``load_module``, ...);
* deterministic **filler functions** per subsystem, sized from a
  log-normal distribution seeded by a fixed layout seed, so the image
  fills the segment exactly and every run of the library sees the same
  kernel.

Loadable kernel modules live *outside* the monitored segment, in the
ARM module area at ``0xBF000000`` (see :mod:`repro.sim.kernel.modules`);
this is what makes the paper's rootkit scenario interesting — the
hijacking handler itself is invisible to the MHM.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ...core.spec import HeatMapSpec

__all__ = [
    "KERNEL_TEXT_BASE",
    "KERNEL_TEXT_END",
    "KERNEL_TEXT_SIZE",
    "MODULE_SPACE_BASE",
    "MODULE_SPACE_SIZE",
    "USER_SPACE_BASE",
    "KernelFunction",
    "KernelLayout",
    "default_heatmap_spec",
]

#: Paper, Figure 1: the monitored region of the Linux 3.4 kernel.
KERNEL_TEXT_BASE = 0xC0008000
KERNEL_TEXT_END = 0xC02E7AA4
KERNEL_TEXT_SIZE = KERNEL_TEXT_END - KERNEL_TEXT_BASE  # = 3,013,284 bytes

#: ARM Linux module area — *outside* the monitored region by design.
MODULE_SPACE_BASE = 0xBF000000
MODULE_SPACE_SIZE = 0x01000000

#: Base of simulated user-space text (filtered out by the Memometer).
USER_SPACE_BASE = 0x00008000

#: Fixed seed: the kernel image is part of the platform definition, not
#: an experimental variable, so every run sees the same layout.
_LAYOUT_SEED = 0x4C494E55  # "LINU"

# ----------------------------------------------------------------------
# Anchor functions.  (name, size, subsystem) — entry points referenced by
# the service footprints.  Sizes are representative of a 3.x ARM kernel.
# ----------------------------------------------------------------------
_ANCHORS: list[tuple[str, int, str]] = [
    # low-level entry / exception paths
    ("vector_swi", 0x100, "entry"),
    ("entry_syscall", 0x200, "entry"),
    ("ret_fast_syscall", 0x100, "entry"),
    ("ret_to_user", 0x140, "entry"),
    ("__irq_svc", 0x180, "entry"),
    ("__dabt_svc", 0x160, "entry"),
    ("copy_from_user", 0x1C0, "entry"),
    ("copy_to_user", 0x1C0, "entry"),
    # scheduler
    ("schedule", 0x700, "sched"),
    ("__schedule", 0x900, "sched"),
    ("__switch_to", 0x120, "sched"),
    ("pick_next_task_rt", 0x260, "sched"),
    ("enqueue_task_rt", 0x2C0, "sched"),
    ("dequeue_task_rt", 0x220, "sched"),
    ("update_curr_rt", 0x280, "sched"),
    ("scheduler_tick", 0x340, "sched"),
    ("wake_up_process", 0x1E0, "sched"),
    ("try_to_wake_up", 0x460, "sched"),
    ("finish_task_switch", 0x1A0, "sched"),
    # timers / time-keeping
    ("do_timer", 0x160, "time"),
    ("tick_periodic", 0x180, "time"),
    ("update_wall_time", 0x420, "time"),
    ("hrtimer_interrupt", 0x380, "time"),
    ("run_timer_softirq", 0x440, "time"),
    ("ktime_get", 0x120, "time"),
    ("do_gettimeofday", 0x100, "time"),
    # interrupts
    ("handle_IRQ", 0x180, "irq"),
    ("irq_enter", 0xC0, "irq"),
    ("irq_exit", 0x100, "irq"),
    ("__do_softirq", 0x300, "irq"),
    ("generic_handle_irq", 0xE0, "irq"),
    # system-call service routines
    ("sys_read", 0x180, "syscall"),
    ("sys_write", 0x180, "syscall"),
    ("sys_open", 0x140, "syscall"),
    ("sys_close", 0x120, "syscall"),
    ("sys_brk", 0x2A0, "syscall"),
    ("sys_mmap_pgoff", 0x1C0, "syscall"),
    ("sys_munmap", 0x120, "syscall"),
    ("sys_nanosleep", 0x1E0, "syscall"),
    ("sys_gettimeofday", 0xC0, "syscall"),
    ("sys_getpid", 0x40, "syscall"),
    ("sys_ioctl", 0x160, "syscall"),
    ("sys_fstat64", 0x120, "syscall"),
    ("sys_clock_gettime", 0xE0, "syscall"),
    ("sys_fork", 0x80, "syscall"),
    ("sys_clone", 0xA0, "syscall"),
    ("sys_execve", 0xC0, "syscall"),
    ("sys_exit_group", 0x80, "syscall"),
    ("sys_wait4", 0x160, "syscall"),
    ("sys_kill", 0x140, "syscall"),
    ("sys_init_module", 0x240, "syscall"),
    ("sys_delete_module", 0x200, "syscall"),
    ("sys_personality", 0x80, "syscall"),
    ("sys_rt_sigaction", 0x140, "syscall"),
    ("sys_futex", 0x3A0, "syscall"),
    # VFS
    ("vfs_read", 0x200, "vfs"),
    ("vfs_write", 0x200, "vfs"),
    ("do_sys_open", 0x220, "vfs"),
    ("do_filp_open", 0x2E0, "vfs"),
    ("path_openat", 0x7E0, "vfs"),
    ("link_path_walk", 0x6A0, "vfs"),
    ("generic_file_aio_read", 0x5C0, "vfs"),
    ("generic_file_aio_write", 0x340, "vfs"),
    ("do_sync_read", 0x140, "vfs"),
    ("do_sync_write", 0x140, "vfs"),
    ("fput", 0xA0, "vfs"),
    ("fget_light", 0xC0, "vfs"),
    ("filp_close", 0xE0, "vfs"),
    ("dput", 0x1C0, "vfs"),
    ("proc_sys_write", 0x1A0, "vfs"),
    ("proc_sys_open", 0x120, "vfs"),
    # memory management
    ("do_page_fault", 0x460, "mm"),
    ("handle_mm_fault", 0x8A0, "mm"),
    ("__kmalloc", 0x260, "mm"),
    ("kfree", 0x1E0, "mm"),
    ("kmem_cache_alloc", 0x1C0, "mm"),
    ("kmem_cache_free", 0x180, "mm"),
    ("__alloc_pages_nodemask", 0x780, "mm"),
    ("__free_pages", 0x120, "mm"),
    ("do_mmap_pgoff", 0x560, "mm"),
    ("do_munmap", 0x3A0, "mm"),
    ("do_brk", 0x300, "mm"),
    ("copy_page_range", 0x4E0, "mm"),
    ("vmalloc", 0x160, "mm"),
    ("vfree", 0x140, "mm"),
    ("get_user_pages", 0x3C0, "mm"),
    # process lifecycle
    ("do_fork", 0x440, "proc"),
    ("copy_process", 0xC80, "proc"),
    ("wake_up_new_task", 0x1A0, "proc"),
    ("do_execve", 0x560, "proc"),
    ("load_elf_binary", 0xE40, "proc"),
    ("flush_old_exec", 0x2A0, "proc"),
    ("setup_arg_pages", 0x2C0, "proc"),
    ("arch_pick_mmap_layout", 0xC0, "proc"),
    ("randomize_stack_top", 0x80, "proc"),
    ("do_exit", 0x6E0, "proc"),
    ("exit_mm", 0x1E0, "proc"),
    ("release_task", 0x360, "proc"),
    ("do_wait", 0x420, "proc"),
    ("send_signal", 0x260, "proc"),
    ("get_signal_to_deliver", 0x4A0, "proc"),
    # module loader
    ("load_module", 0x1400, "module"),
    ("module_alloc", 0xC0, "module"),
    ("simplify_symbols", 0x2A0, "module"),
    ("apply_relocate", 0x3C0, "module"),
    ("find_module_sections", 0x260, "module"),
    ("module_finalize", 0x180, "module"),
    ("free_module", 0x2A0, "module"),
    ("sys_call_table", 0x600, "module"),  # data-ish anchor used by hijack writes
    # IPC / misc services
    ("pipe_read", 0x300, "ipc"),
    ("pipe_write", 0x340, "ipc"),
    ("sys_pipe2", 0x100, "ipc"),
    ("do_signal", 0x320, "ipc"),
    # library routines (memcpy and friends are heavily shared)
    ("memcpy", 0x200, "lib"),
    ("memset", 0x180, "lib"),
    ("memcmp", 0xC0, "lib"),
    ("strncpy_from_user", 0x100, "lib"),
    ("strlen", 0x60, "lib"),
    ("strcmp", 0x60, "lib"),
    ("sha_transform", 0x9E0, "lib"),
    ("crc32", 0x2A0, "lib"),
    ("vsnprintf", 0x6E0, "lib"),
    ("printk", 0x240, "lib"),
    # idle loop
    ("cpu_idle", 0x120, "idle"),
    ("default_idle", 0x80, "idle"),
]

#: Subsystem order along the segment and the share of the remaining
#: (filler) bytes each receives.  Mirrors the rough ordering of a real
#: kernel image: entry/arch code low, drivers and lib high.
_SUBSYSTEM_FILL: list[tuple[str, float]] = [
    ("entry", 0.02),
    ("sched", 0.05),
    ("time", 0.03),
    ("irq", 0.03),
    ("syscall", 0.04),
    ("proc", 0.06),
    ("mm", 0.12),
    ("vfs", 0.12),
    ("ipc", 0.04),
    ("net", 0.14),
    ("drivers", 0.20),
    ("module", 0.03),
    ("lib", 0.10),
    ("idle", 0.02),
]


@dataclass(frozen=True)
class KernelFunction:
    """One entry of the synthetic symbol table."""

    name: str
    address: int
    size: int
    subsystem: str

    @property
    def end_address(self) -> int:
        return self.address + self.size

    def contains(self, address: int) -> bool:
        return self.address <= address < self.end_address

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} @ {self.address:#x} (+{self.size:#x}) [{self.subsystem}]"


class KernelLayout:
    """The synthetic kernel image: symbol table + address geometry.

    The layout is deterministic: anchors and filler functions are placed
    subsystem by subsystem, and filler sizes are drawn from a fixed-seed
    log-normal, then the final function is stretched so the image fills
    the ``.text`` segment *exactly* (total size 3,013,284 bytes, as in
    Figure 1).
    """

    def __init__(
        self,
        base_address: int = KERNEL_TEXT_BASE,
        text_size: int = KERNEL_TEXT_SIZE,
    ):
        if text_size <= 0:
            raise ValueError("text_size must be positive")
        self.base_address = base_address
        self.text_size = text_size
        self.functions: list[KernelFunction] = []
        self._by_name: dict[str, KernelFunction] = {}
        self._by_subsystem: dict[str, list[KernelFunction]] = {}
        self._starts: list[int] = []
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        rng = np.random.default_rng(_LAYOUT_SEED)
        anchors_by_subsystem: dict[str, list[tuple[str, int]]] = {}
        for name, size, subsystem in _ANCHORS:
            anchors_by_subsystem.setdefault(subsystem, []).append((name, size))

        anchor_total = sum(size for _, size, _ in _ANCHORS)
        filler_budget = self.text_size - anchor_total
        if filler_budget < 0:
            raise ValueError("text segment too small for the anchor functions")

        cursor = self.base_address
        plan: list[tuple[str, int, str]] = []
        for sub_index, (subsystem, share) in enumerate(_SUBSYSTEM_FILL):
            for name, size in anchors_by_subsystem.get(subsystem, []):
                plan.append((name, size, subsystem))
            sub_budget = int(filler_budget * share) & ~3  # keep 4-byte alignment
            used = 0
            filler_index = 0
            while used < sub_budget:
                # log-normal sizes: median ~0x180 bytes, occasionally large
                size = int(rng.lognormal(mean=6.0, sigma=0.8))
                size = max(0x40, min(size, 0x2000))
                size = (size + 3) & ~3  # 4-byte aligned, like ARM code
                if used + size > sub_budget:
                    size = sub_budget - used
                    if size < 0x40:
                        # fold the remainder into the previous function
                        if plan and plan[-1][2] == subsystem:
                            last_name, last_size, _ = plan[-1]
                            plan[-1] = (last_name, last_size + size, subsystem)
                        else:
                            plan.append(
                                (f"{subsystem}_fn_{filler_index:04d}", size, subsystem)
                            )
                        break
                plan.append((f"{subsystem}_fn_{filler_index:04d}", size, subsystem))
                filler_index += 1
                used += size

        # Stretch (or trim) the final function so the image is exact.
        placed = sum(size for _, size, _ in plan)
        delta = self.text_size - placed
        last_name, last_size, last_sub = plan[-1]
        if last_size + delta <= 0:
            raise RuntimeError("layout fill failed to converge")
        plan[-1] = (last_name, last_size + delta, last_sub)

        for name, size, subsystem in plan:
            fn = KernelFunction(name=name, address=cursor, size=size, subsystem=subsystem)
            self.functions.append(fn)
            if name in self._by_name:
                raise RuntimeError(f"duplicate kernel symbol {name!r}")
            self._by_name[name] = fn
            self._by_subsystem.setdefault(subsystem, []).append(fn)
            self._starts.append(cursor)
            cursor += size

        if cursor != self.end_address:
            raise RuntimeError(
                f"layout does not fill the segment: ends at {cursor:#x}, "
                f"expected {self.end_address:#x}"
            )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def end_address(self) -> int:
        return self.base_address + self.text_size

    def symbol(self, name: str) -> KernelFunction:
        """Look up a function by name (KeyError when unknown)."""
        return self._by_name[name]

    def has_symbol(self, name: str) -> bool:
        return name in self._by_name

    def find(self, address: int) -> Optional[KernelFunction]:
        """The function containing ``address`` (None if out of image)."""
        if not self.base_address <= address < self.end_address:
            return None
        i = bisect.bisect_right(self._starts, address) - 1
        fn = self.functions[i]
        return fn if fn.contains(address) else None

    def functions_in(self, subsystem: str) -> list[KernelFunction]:
        """All functions of a subsystem, in address order."""
        return list(self._by_subsystem.get(subsystem, []))

    def functions_overlapping(self, start: int, end: int) -> list[KernelFunction]:
        """Functions whose body intersects ``[start, end)``.

        Used by the attribution tooling to translate a heat-map cell
        back into kernel symbols.
        """
        if end <= start:
            return []
        first = bisect.bisect_right(self._starts, start) - 1
        first = max(first, 0)
        result = []
        for fn in self.functions[first:]:
            if fn.address >= end:
                break
            if fn.end_address > start:
                result.append(fn)
        return result

    @property
    def subsystems(self) -> list[str]:
        return [name for name, _ in _SUBSYSTEM_FILL]

    def subsystem_of(self, address: int) -> Optional[str]:
        fn = self.find(address)
        return fn.subsystem if fn is not None else None

    def sample_functions(
        self, subsystem: str, count: int, rng: np.random.Generator
    ) -> list[KernelFunction]:
        """Draw ``count`` distinct functions from a subsystem."""
        pool = self._by_subsystem.get(subsystem, [])
        if count > len(pool):
            raise ValueError(
                f"subsystem {subsystem!r} has only {len(pool)} functions, "
                f"requested {count}"
            )
        picks = rng.choice(len(pool), size=count, replace=False)
        return [pool[int(i)] for i in picks]

    def __len__(self) -> int:
        return len(self.functions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelLayout(base={self.base_address:#x}, size={self.text_size}, "
            f"functions={len(self.functions)})"
        )


def default_heatmap_spec(granularity: int = 2048) -> HeatMapSpec:
    """The paper's monitored region (Figure 1) at a given granularity.

    With the default 2 KB granularity this yields exactly 1,472 cells.
    """
    return HeatMapSpec(
        base_address=KERNEL_TEXT_BASE,
        region_size=KERNEL_TEXT_SIZE,
        granularity=granularity,
    )


def _subsystem_fill_shares_sum() -> float:  # used by tests
    return sum(share for _, share in _SUBSYSTEM_FILL)

"""Kernel services and the system-call table.

A :class:`KernelService` bundles a memory footprint (where in the kernel
``.text`` its call graph executes) with a CPU latency (how long the
monitored core spends in it).  The :class:`SyscallTable` maps syscall
names to services and — crucially for the paper's Scenario 3 — supports
*hijacking*: a rootkit patches an entry so that a wrapper in module
space (outside the monitored region) runs first and then chains to the
original handler, exactly the "system call hijacking" pattern of
Phrack 52 [19] reproduced in Section 5.3.

:func:`build_default_services` constructs the service set of our
synthetic Linux 3.4 kernel: syscall service routines, timer tick,
context switch, page-fault and background-worker footprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .footprint import CompiledFootprint, FootprintCompiler, FootprintStep
from .layout import KernelLayout

__all__ = [
    "KernelService",
    "ServiceRegistry",
    "SyscallTable",
    "HijackedEntry",
    "build_default_services",
    "DEFAULT_SYSCALLS",
]


@dataclass
class KernelService:
    """A kernel code path: footprint + CPU cost.

    Parameters
    ----------
    name:
        Registry key, e.g. ``"syscall.read"`` or ``"kernel.tick"``.
    footprint:
        Compiled fetch footprint of the service's call graph.
    latency_ns:
        Mean CPU time the monitored core spends in the service.
    latency_jitter:
        Relative standard deviation of the latency.
    """

    name: str
    footprint: CompiledFootprint
    latency_ns: int
    latency_jitter: float = 0.05

    def sample_latency(self, rng: np.random.Generator) -> int:
        """One invocation's CPU time (never below 10% of the mean)."""
        jittered = rng.normal(self.latency_ns, self.latency_ns * self.latency_jitter)
        return max(int(self.latency_ns * 0.1), int(jittered))

    def sample_burst(
        self, rng: np.random.Generator, jitter_scale: float = 1.0
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.footprint.sample(rng, jitter_scale=jitter_scale)


class ServiceRegistry:
    """Name → :class:`KernelService` mapping."""

    def __init__(self) -> None:
        self._services: dict[str, KernelService] = {}

    def register(self, service: KernelService) -> KernelService:
        if service.name in self._services:
            raise ValueError(f"service {service.name!r} already registered")
        self._services[service.name] = service
        return service

    def replace(self, name: str, service: KernelService) -> KernelService:
        """Swap an existing service for another, returning the old one.

        The attack-scenario hook (firmware-level shadowing): a payload
        substitutes a registered code path and can later restore the
        returned original.  Unknown names raise — replacement never
        silently registers.
        """
        if name not in self._services:
            raise KeyError(f"unknown kernel service {name!r}")
        original = self._services[name]
        self._services[name] = service
        return original

    def get(self, name: str) -> KernelService:
        try:
            return self._services[name]
        except KeyError:
            raise KeyError(f"unknown kernel service {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._services

    def names(self) -> list[str]:
        return sorted(self._services)

    def __len__(self) -> int:
        return len(self._services)


@dataclass
class HijackedEntry:
    """A patched syscall-table slot (Scenario 3).

    The wrapper runs in module space — *invisible* to the MHM because it
    is outside the monitored region — then chains to the original
    handler, adding ``extra_latency_ns`` of CPU time per call.  It is the
    latency, not the wrapper's own fetches, that perturbs the MHMs
    (Section 5.3: "the delays due to read system call hijacking have
    resulted in timing changes to sha's execution").
    """

    original: KernelService
    wrapper: KernelService
    extra_latency_ns: int = 0


class SyscallTable:
    """The kernel's syscall dispatch table, with hijack support."""

    def __init__(self, registry: ServiceRegistry):
        self._registry = registry
        self._entries: dict[str, KernelService] = {}
        self._hijacked: dict[str, HijackedEntry] = {}

    def install(self, syscall: str, service_name: str) -> None:
        self._entries[syscall] = self._registry.get(service_name)

    def entry(self, syscall: str) -> KernelService:
        try:
            return self._entries[syscall]
        except KeyError:
            raise KeyError(f"unknown syscall {syscall!r}") from None

    def syscalls(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, syscall: str) -> bool:
        return syscall in self._entries

    # ------------------------------------------------------------------
    # Hijacking (rootkit support)
    # ------------------------------------------------------------------
    def hijack(
        self, syscall: str, wrapper: KernelService, extra_latency_ns: int = 0
    ) -> None:
        """Patch ``syscall``'s entry to run ``wrapper`` before the original."""
        if syscall in self._hijacked:
            raise ValueError(f"syscall {syscall!r} is already hijacked")
        original = self.entry(syscall)
        self._hijacked[syscall] = HijackedEntry(
            original=original, wrapper=wrapper, extra_latency_ns=extra_latency_ns
        )

    def restore(self, syscall: str) -> None:
        """Undo a hijack (module unload)."""
        self._hijacked.pop(syscall)

    def is_hijacked(self, syscall: str) -> bool:
        return syscall in self._hijacked

    def hijacked_entry(self, syscall: str) -> Optional[HijackedEntry]:
        return self._hijacked.get(syscall)

    def resolve(
        self, syscall: str
    ) -> tuple[KernelService, Optional[HijackedEntry]]:
        """The service to run and, if patched, the hijack record."""
        return self.entry(syscall), self._hijacked.get(syscall)


# ----------------------------------------------------------------------
# Default service set
# ----------------------------------------------------------------------

def _steps(*items: tuple) -> list[FootprintStep]:
    """Shorthand: each item is (function[, iterations[, coverage]])."""
    steps = []
    for item in items:
        name = item[0]
        iterations = item[1] if len(item) > 1 else 1.0
        coverage = item[2] if len(item) > 2 else 1.0
        steps.append(FootprintStep(function=name, iterations=iterations, coverage=coverage))
    return steps


#: Footprint plans of the syscall service routines.  Iteration counts
#: are the per-call means; the shared prologue/epilogue (``vector_swi``
#: .. ``ret_fast_syscall``) is prepended/appended to each automatically.
_SYSCALL_PLANS: dict[str, tuple[list, int]] = {
    # name: (inner steps, mean latency ns)
    "read": (
        _steps(
            ("sys_read",),
            ("fget_light",),
            ("vfs_read",),
            ("do_sync_read",),
            ("generic_file_aio_read", 2.0, 0.8),
            ("memcpy", 4.0, 0.9),
            ("copy_to_user", 2.0),
            ("fput",),
        ),
        6_000,
    ),
    "write": (
        _steps(
            ("sys_write",),
            ("fget_light",),
            ("vfs_write",),
            ("do_sync_write",),
            ("generic_file_aio_write", 2.0, 0.8),
            ("copy_from_user", 2.0),
            ("memcpy", 3.0, 0.9),
            ("fput",),
        ),
        6_000,
    ),
    "open": (
        _steps(
            ("sys_open",),
            ("do_sys_open",),
            ("strncpy_from_user",),
            ("do_filp_open",),
            ("path_openat", 1.0, 0.7),
            ("link_path_walk", 3.0, 0.8),
            ("kmem_cache_alloc", 2.0),
            ("dput",),
        ),
        15_000,
    ),
    "close": (
        _steps(("sys_close",), ("filp_close",), ("fput",), ("dput",)),
        4_000,
    ),
    "brk": (
        _steps(("sys_brk",), ("do_brk", 1.0, 0.8), ("__alloc_pages_nodemask", 1.0, 0.5)),
        8_000,
    ),
    "mmap": (
        _steps(
            ("sys_mmap_pgoff",),
            ("do_mmap_pgoff", 1.0, 0.8),
            ("kmem_cache_alloc",),
            ("__alloc_pages_nodemask", 2.0, 0.6),
        ),
        12_000,
    ),
    "munmap": (
        _steps(("sys_munmap",), ("do_munmap", 1.0, 0.8), ("kfree",), ("__free_pages",)),
        9_000,
    ),
    "nanosleep": (
        _steps(("sys_nanosleep",), ("ktime_get",), ("schedule", 1.0, 0.6)),
        5_000,
    ),
    "gettimeofday": (
        _steps(("sys_gettimeofday",), ("do_gettimeofday",), ("ktime_get",)),
        1_500,
    ),
    "clock_gettime": (
        _steps(("sys_clock_gettime",), ("ktime_get",)),
        1_200,
    ),
    "getpid": (_steps(("sys_getpid",)), 800),
    "ioctl": (_steps(("sys_ioctl",), ("fget_light",), ("fput",)), 4_000),
    "fstat64": (_steps(("sys_fstat64",), ("fget_light",), ("copy_to_user",), ("fput",)), 3_500),
    "futex": (_steps(("sys_futex", 1.0, 0.6), ("try_to_wake_up", 1.0, 0.5)), 4_500),
    "rt_sigaction": (_steps(("sys_rt_sigaction",), ("copy_from_user",)), 2_500),
    "kill": (_steps(("sys_kill",), ("send_signal",), ("try_to_wake_up", 1.0, 0.6)), 5_000),
    "pipe2": (_steps(("sys_pipe2",), ("kmem_cache_alloc", 2.0), ("fget_light",)), 7_000),
    "wait4": (_steps(("sys_wait4",), ("do_wait", 1.0, 0.7), ("schedule", 1.0, 0.5)), 6_000),
    "fork": (
        _steps(
            ("sys_fork",),
            ("do_fork",),
            ("copy_process", 1.0, 0.9),
            ("kmem_cache_alloc", 6.0),
            ("copy_page_range", 2.0, 0.8),
            ("wake_up_new_task",),
            ("enqueue_task_rt",),
        ),
        150_000,
    ),
    "execve": (
        _steps(
            ("sys_execve",),
            ("do_execve",),
            ("do_filp_open",),
            ("path_openat", 1.0, 0.6),
            ("load_elf_binary", 1.0, 0.9),
            ("flush_old_exec",),
            ("setup_arg_pages",),
            ("arch_pick_mmap_layout",),
            ("randomize_stack_top",),
            ("do_mmap_pgoff", 4.0, 0.7),
            ("memcpy", 6.0),
        ),
        400_000,
    ),
    "exit_group": (
        _steps(
            ("sys_exit_group",),
            ("do_exit", 1.0, 0.9),
            ("exit_mm",),
            ("do_munmap", 3.0, 0.6),
            ("release_task",),
            ("kfree", 4.0),
            ("__schedule", 1.0, 0.7),
        ),
        80_000,
    ),
    "personality": (_steps(("sys_personality",)), 1_000),
    # Module loading is heavy: the loader copies the image, walks every
    # section, resolves each undefined symbol against the kernel symbol
    # table and applies thousands of relocations.  The iteration counts
    # below size the burst at ~6-8x a normal interval's traffic, the
    # Figure 9 "Rootkit Launched" spike.
    "init_module": (
        _steps(
            ("sys_init_module",),
            ("copy_from_user", 60.0),
            ("vmalloc", 8.0),
            ("module_alloc",),
            ("load_module", 40.0, 0.95),
            ("find_module_sections", 10.0),
            ("simplify_symbols", 120.0),
            ("strcmp", 400.0),
            ("memcmp", 200.0),
            ("apply_relocate", 250.0),
            ("memcpy", 400.0),
            ("module_finalize", 4.0),
            ("printk", 4.0),
            ("vsnprintf", 4.0, 0.5),
        ),
        2_000_000,
    ),
    "delete_module": (
        _steps(
            ("sys_delete_module",),
            ("free_module", 1.0, 0.9),
            ("vfree", 2.0),
            ("kfree", 3.0),
            ("printk",),
        ),
        300_000,
    ),
    # writing /proc/sys/... goes through the procfs handlers instead of
    # the regular file fast path (the shellcode scenario uses this).
    "write_procsys": (
        _steps(
            ("sys_write",),
            ("fget_light",),
            ("vfs_write",),
            ("proc_sys_write",),
            ("strncpy_from_user",),
            ("copy_from_user",),
            ("memcpy",),
            ("fput",),
        ),
        9_000,
    ),
    "open_procsys": (
        _steps(
            ("sys_open",),
            ("do_sys_open",),
            ("strncpy_from_user",),
            ("do_filp_open",),
            ("path_openat", 1.0, 0.7),
            ("link_path_walk", 4.0, 0.8),
            ("proc_sys_open",),
            ("kmem_cache_alloc",),
        ),
        16_000,
    ),
}

#: Syscall names installed in the default table.
DEFAULT_SYSCALLS = tuple(sorted(_SYSCALL_PLANS))

#: Housekeeping (non-syscall) kernel paths.
_KERNEL_PLANS: dict[str, tuple[list, int]] = {
    "kernel.tick": (
        _steps(
            ("__irq_svc",),
            ("handle_IRQ",),
            ("irq_enter",),
            ("generic_handle_irq",),
            ("tick_periodic",),
            ("do_timer",),
            ("update_wall_time", 1.0, 0.8),
            ("scheduler_tick",),
            ("update_curr_rt",),
            ("hrtimer_interrupt", 1.0, 0.6),
            ("irq_exit",),
            ("__do_softirq", 1.0, 0.6),
            ("run_timer_softirq", 1.0, 0.6),
        ),
        5_000,
    ),
    "kernel.context_switch": (
        _steps(
            ("__schedule",),
            ("pick_next_task_rt",),
            ("dequeue_task_rt",),
            ("update_curr_rt",),
            ("__switch_to",),
            ("finish_task_switch",),
        ),
        3_000,
    ),
    "kernel.job_release": (
        _steps(
            ("run_timer_softirq", 1.0, 0.5),
            ("try_to_wake_up",),
            ("wake_up_process",),
            ("enqueue_task_rt",),
        ),
        2_000,
    ),
    "kernel.page_fault": (
        _steps(
            ("__dabt_svc",),
            ("do_page_fault",),
            ("handle_mm_fault", 1.0, 0.8),
            ("__alloc_pages_nodemask", 1.0, 0.6),
            ("memset", 1.0, 0.5),
        ),
        10_000,
    ),
    "kernel.idle": (
        _steps(("cpu_idle",), ("default_idle",)),
        500,
    ),
}


def build_default_services(
    layout: KernelLayout, compiler: Optional[FootprintCompiler] = None
) -> tuple[ServiceRegistry, SyscallTable]:
    """Build the synthetic kernel's service registry and syscall table.

    The syscall prologue/epilogue (SWI vector, entry stub, return path)
    is shared by every syscall service, exactly as in a real kernel —
    which is why those cells are the hottest in Figure 1-style maps.
    """
    compiler = compiler or FootprintCompiler(layout)
    registry = ServiceRegistry()

    prologue = _steps(("vector_swi",), ("entry_syscall",))
    epilogue = _steps(("ret_fast_syscall",), ("ret_to_user",))

    for name, (inner, latency_ns) in _SYSCALL_PLANS.items():
        footprint = compiler.compile(prologue + inner + epilogue)
        registry.register(
            KernelService(
                name=f"syscall.{name}", footprint=footprint, latency_ns=latency_ns
            )
        )

    # Background worker: a fixed set of driver/net functions, chosen
    # deterministically so the platform is identical across runs.
    worker_rng = np.random.default_rng(0x4B57524B)  # "KWRK"
    worker_steps = _steps(("__do_softirq",), ("run_timer_softirq", 1.0, 0.6))
    for fn in layout.sample_functions("drivers", 6, worker_rng):
        worker_steps.append(FootprintStep(function=fn.name, iterations=1.0, coverage=0.7))
    for fn in layout.sample_functions("net", 3, worker_rng):
        worker_steps.append(FootprintStep(function=fn.name, iterations=1.0, coverage=0.6))
    _KERNEL_PLANS_ALL = dict(_KERNEL_PLANS)
    _KERNEL_PLANS_ALL["kernel.kworker"] = (worker_steps, 8_000)

    # Network receive path: IRQ entry + a deterministic slice of the
    # net subsystem (driver ISR, softirq, protocol handlers).  Used by
    # the interrupt-driven device model (repro.sim.devices) — the
    # "network activities" source of legitimate unpredictability the
    # paper's Limitation section worries about.
    net_rng = np.random.default_rng(0x4E455452)  # "NETR"
    net_steps = _steps(
        ("__irq_svc",),
        ("handle_IRQ",),
        ("irq_enter",),
        ("generic_handle_irq",),
        ("__do_softirq", 1.0, 0.8),
    )
    for fn in layout.sample_functions("net", 8, net_rng):
        net_steps.append(
            FootprintStep(function=fn.name, iterations=1.0, coverage=0.7, jitter=0.2)
        )
    for fn in layout.sample_functions("drivers", 2, net_rng):
        net_steps.append(FootprintStep(function=fn.name, iterations=1.0, coverage=0.6))
    net_steps.append(FootprintStep(function="irq_exit", iterations=1.0))
    net_steps.append(FootprintStep(function="memcpy", iterations=2.0, jitter=0.3))
    _KERNEL_PLANS_ALL["kernel.net_rx"] = (net_steps, 9_000)

    for name, (steps, latency_ns) in _KERNEL_PLANS_ALL.items():
        registry.register(
            KernelService(
                name=name, footprint=compiler.compile(steps), latency_ns=latency_ns
            )
        )

    table = SyscallTable(registry)
    for name in _SYSCALL_PLANS:
        table.install(name, f"syscall.{name}")
    return registry, table

"""Kernel-service memory footprints.

Section 2's key idea is that "an MHM is a composition of different
activities in a certain memory region" — each kernel service contributes
a characteristic *footprint*: the set of function ranges its call graph
fetches, and how often.  This module models footprints as a list of
:class:`FootprintStep` (function, mean iteration count, body coverage)
and compiles them against a :class:`~repro.sim.kernel.layout.KernelLayout`
into address/weight arrays that can be emitted as
:class:`~repro.sim.trace.AccessBurst` records.

Per-invocation variation (loop trip counts, data-dependent paths) is
modelled by jittering each step's iteration count, which is exactly the
"small variations from one or more of these patterns" the paper's GMM
absorbs (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .layout import KernelLayout

__all__ = ["FETCH_STRIDE", "FootprintStep", "CompiledFootprint", "FootprintCompiler"]

#: Bytes between sampled fetch addresses inside a function body.  The
#: MHM granularity is >= 512 B in every experiment, so a 16-byte sample
#: stride loses nothing while keeping bursts small.
FETCH_STRIDE = 16


@dataclass(frozen=True)
class FootprintStep:
    """One function visited by a service's call graph.

    Parameters
    ----------
    function:
        Kernel symbol name, resolved against the layout.  ``None`` when
        the step is given by an explicit address range instead (used for
        module-space code, which has no kernel symbol).
    iterations:
        Mean number of times the function body executes per invocation.
    coverage:
        Fraction of the body fetched (data-dependent early exits).
    jitter:
        Relative standard deviation of the iteration count.
    address, size:
        Explicit range for symbol-less steps.
    """

    function: Optional[str]
    iterations: float = 1.0
    coverage: float = 1.0
    jitter: float = 0.10
    address: Optional[int] = None
    size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.function is None and (self.address is None or self.size is None):
            raise ValueError("step needs either a function name or an explicit range")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.size is not None and self.size <= 0:
            raise ValueError("explicit step size must be positive")


class CompiledFootprint:
    """A footprint resolved to concrete fetch addresses.

    ``sample(rng)`` draws one invocation: the shared address vector plus
    a weight vector built from per-step jittered iteration counts.
    ``mean()`` returns the deterministic expected burst, used by tests
    and by analytical checks.
    """

    def __init__(
        self,
        addresses: np.ndarray,
        step_lengths: np.ndarray,
        mean_iterations: np.ndarray,
        jitters: np.ndarray,
    ):
        self.addresses = np.asarray(addresses, dtype=np.int64)
        self.addresses.setflags(write=False)
        self.step_lengths = np.asarray(step_lengths, dtype=np.int64)
        self.mean_iterations = np.asarray(mean_iterations, dtype=np.float64)
        self.jitters = np.asarray(jitters, dtype=np.float64)
        if self.step_lengths.sum() != len(self.addresses):
            raise ValueError("step lengths do not cover the address vector")
        if not (
            len(self.step_lengths) == len(self.mean_iterations) == len(self.jitters)
        ):
            raise ValueError("per-step arrays must have equal length")

    @property
    def num_steps(self) -> int:
        return len(self.step_lengths)

    @property
    def num_addresses(self) -> int:
        return len(self.addresses)

    @property
    def mean_total_accesses(self) -> float:
        return float((self.step_lengths * self.mean_iterations).sum())

    def sample(
        self, rng: np.random.Generator, jitter_scale: float = 1.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """One invocation: ``(addresses, weights)`` with jittered counts.

        ``jitter_scale`` multiplies every step's jitter; an RTOS-like
        platform (deterministic loop bounds) uses a scale < 1.
        """
        noise = rng.normal(loc=1.0, scale=self.jitters * jitter_scale)
        iters = np.maximum(1, np.rint(self.mean_iterations * noise)).astype(np.int64)
        weights = np.repeat(iters, self.step_lengths)
        return self.addresses, weights

    def mean(self) -> tuple[np.ndarray, np.ndarray]:
        """The expected (jitter-free) invocation."""
        iters = np.maximum(1, np.rint(self.mean_iterations)).astype(np.int64)
        return self.addresses, np.repeat(iters, self.step_lengths)


class FootprintCompiler:
    """Resolves :class:`FootprintStep` lists against a kernel layout."""

    def __init__(self, layout: KernelLayout, stride: int = FETCH_STRIDE):
        if stride <= 0:
            raise ValueError("stride must be positive")
        self.layout = layout
        self.stride = stride

    def _step_addresses(self, step: FootprintStep) -> np.ndarray:
        if step.function is not None:
            fn = self.layout.symbol(step.function)
            start, size = fn.address, fn.size
        else:
            start, size = step.address, step.size  # validated in __post_init__
        covered = max(self.stride, int(size * step.coverage))
        covered = min(covered, size)
        return np.arange(start, start + covered, self.stride, dtype=np.int64)

    def compile(self, steps: Sequence[FootprintStep]) -> CompiledFootprint:
        """Compile a step list into a reusable :class:`CompiledFootprint`."""
        if not steps:
            raise ValueError("footprint must have at least one step")
        chunks = [self._step_addresses(step) for step in steps]
        return CompiledFootprint(
            addresses=np.concatenate(chunks),
            step_lengths=np.array([len(c) for c in chunks], dtype=np.int64),
            mean_iterations=np.array([s.iterations for s in steps], dtype=np.float64),
            jitters=np.array([s.jitter for s in steps], dtype=np.float64),
        )

"""Loadable kernel modules.

On ARM Linux, modules are loaded into a dedicated region *below* the
kernel image (``0xBF000000``) — outside the monitored ``.text`` segment.
Section 5.3 of the paper leans on this: "LKMs in Linux are loaded onto
the module memory space that is outside our target region (i.e. .text).
Thus, the execution of the new read handler does not change the MHMs."

The loader here reproduces both halves of that story:

* ``load()`` emits the (very visible) ``init_module`` footprint — the
  module *loader* runs inside the monitored kernel text, which is the
  spike at "Rootkit Launched" in Figures 9 and 10;
* the loaded module's own code lives in module space, so any footprint
  steps pointing at it are filtered out by the Memometer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .layout import MODULE_SPACE_BASE, MODULE_SPACE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

__all__ = ["ModuleFunction", "LoadedModule", "ModuleLoader"]

_MODULE_ALIGN = 0x1000


@dataclass(frozen=True)
class ModuleFunction:
    """A function inside a loaded module's text."""

    name: str
    address: int
    size: int

    @property
    def end_address(self) -> int:
        return self.address + self.size


@dataclass
class LoadedModule:
    """A module resident in module space."""

    name: str
    base_address: int
    size: int
    functions: list[ModuleFunction] = field(default_factory=list)
    loaded_at_ns: int = 0

    @property
    def end_address(self) -> int:
        return self.base_address + self.size

    def function(self, name: str) -> ModuleFunction:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"module {self.name!r} has no function {name!r}")


class ModuleLoader:
    """Allocates module space and drives the load/unload kernel paths."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        self._cursor = MODULE_SPACE_BASE
        self._loaded: dict[str, LoadedModule] = {}

    def load(
        self,
        name: str,
        size: int,
        function_names: Optional[list[str]] = None,
    ) -> LoadedModule:
        """Load a module: emits the ``init_module`` syscall footprint and
        carves the module's text out of module space.

        ``function_names`` partitions the module text into named
        functions (equal sizes) so attacks can reference e.g. the
        rootkit's ``evil_read`` wrapper.
        """
        if name in self._loaded:
            raise ValueError(f"module {name!r} is already loaded")
        if size <= 0:
            raise ValueError("module size must be positive")
        size = (size + _MODULE_ALIGN - 1) & ~(_MODULE_ALIGN - 1)
        if self._cursor + size > MODULE_SPACE_BASE + MODULE_SPACE_SIZE:
            raise MemoryError("module space exhausted")

        base = self._cursor
        self._cursor += size

        functions: list[ModuleFunction] = []
        names = function_names or [f"{name}_init"]
        chunk = size // len(names)
        for i, fn_name in enumerate(names):
            fn_size = chunk if i < len(names) - 1 else size - chunk * (len(names) - 1)
            functions.append(
                ModuleFunction(name=fn_name, address=base + i * chunk, size=fn_size)
            )

        module = LoadedModule(
            name=name,
            base_address=base,
            size=size,
            functions=functions,
            loaded_at_ns=self._kernel.now,
        )
        self._loaded[name] = module
        # The loader itself runs in monitored kernel text — the spike.
        self._kernel.invoke_syscall("init_module")
        return module

    def unload(self, name: str) -> None:
        """Unload a module (emits the ``delete_module`` footprint)."""
        if name not in self._loaded:
            raise KeyError(f"module {name!r} is not loaded")
        del self._loaded[name]
        self._kernel.invoke_syscall("delete_module")

    def is_loaded(self, name: str) -> bool:
        return name in self._loaded

    def get(self, name: str) -> LoadedModule:
        return self._loaded[name]

    @property
    def loaded_modules(self) -> list[str]:
        return sorted(self._loaded)

"""The kernel facade: the monitored core's operating system.

:class:`Kernel` ties the pieces together — layout, service registry,
syscall table, ASLR state, module loader — and is the single point
through which the simulation emits memory-access bursts.  Everything
the Memometer ever observes flows through :meth:`Kernel._emit`.

Syscall dispatch honours hijacked table entries (Scenario 3): the
module-space wrapper's fetches are emitted (and filtered out by the
Memometer, since module space is outside the monitored region), the
original handler's fetches are emitted as normal, and the wrapper's
extra latency is added to the CPU time charged to the calling task.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..engine import Simulator
from ..trace import AccessBurst, BurstFanout, TraceProbe
from .aslr import RANDOMIZE_VA_SPACE, AslrState
from .footprint import FootprintCompiler
from .layout import KernelLayout
from .modules import ModuleLoader
from .syscalls import KernelService, ServiceRegistry, SyscallTable, build_default_services

__all__ = ["Kernel"]


class Kernel:
    """The simulated embedded OS kernel of the monitored core.

    Parameters
    ----------
    sim:
        The shared discrete-event simulator (provides the clock).
    rng:
        Source of all footprint/latency jitter.
    layout, registry, table:
        Optional pre-built pieces; defaults build the synthetic
        Linux-3.4-like kernel from :mod:`repro.sim.kernel.layout` and
        :mod:`repro.sim.kernel.syscalls`.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        layout: Optional[KernelLayout] = None,
        registry: Optional[ServiceRegistry] = None,
        table: Optional[SyscallTable] = None,
        jitter_scale: float = 1.0,
    ):
        if jitter_scale < 0:
            raise ValueError("jitter_scale must be non-negative")
        self.sim = sim
        self.rng = rng
        #: Scales per-invocation footprint jitter; an RTOS-like kernel
        #: (deterministic code paths) uses a value < 1 (paper, Sec. 7).
        self.jitter_scale = jitter_scale
        self.layout = layout or KernelLayout()
        if registry is None or table is None:
            registry, table = build_default_services(self.layout)
        self.services = registry
        self.syscall_table = table
        self.compiler = FootprintCompiler(self.layout)
        self.aslr = AslrState()
        self.modules = ModuleLoader(self)
        self._fanout = BurstFanout()
        #: Invocation counts by service name (diagnostics and tests).
        self.invocation_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Probe wiring
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        return self.sim.now

    def attach_probe(self, probe: TraceProbe) -> None:
        """Attach a hardware probe (Memometer snoop port, cache, ...)."""
        self._fanout.attach(probe)

    def detach_probe(self, probe: TraceProbe) -> None:
        self._fanout.detach(probe)

    def _emit(
        self, service: KernelService, kind: Optional[str] = None, core: int = 0
    ) -> None:
        addresses, weights = service.sample_burst(
            self.rng, jitter_scale=self.jitter_scale
        )
        self._fanout.observe_burst(
            AccessBurst(
                time_ns=self.now,
                addresses=addresses,
                weights=weights,
                kind=kind or service.name,
                core=core,
            )
        )
        name = kind or service.name
        self.invocation_counts[name] = self.invocation_counts.get(name, 0) + 1

    def emit_user_burst(
        self, addresses: np.ndarray, weights: np.ndarray, core: int = 0
    ) -> None:
        """Emit user-space fetches (filtered out by the Memometer)."""
        self._fanout.observe_burst(
            AccessBurst(
                time_ns=self.now,
                addresses=addresses,
                weights=weights,
                kind="user",
                core=core,
            )
        )

    # ------------------------------------------------------------------
    # Service invocation
    # ------------------------------------------------------------------
    def invoke_syscall(self, name: str, core: int = 0) -> int:
        """Dispatch a system call through the (possibly patched) table.

        Returns the CPU time (ns) the call consumed on the monitored
        core, which the scheduler charges to the calling job.
        """
        service, hijack = self.syscall_table.resolve(name)
        latency = service.sample_latency(self.rng)
        if hijack is not None:
            # Wrapper first (module space, invisible to the MHM) ...
            self._emit(hijack.wrapper, kind=f"hijack.{name}", core=core)
            latency += hijack.extra_latency_ns
        # ... then the original handler, inside the monitored region.
        self._emit(service, kind=f"syscall.{name}", core=core)
        return latency

    def run_service(self, name: str, core: int = 0) -> int:
        """Run a housekeeping kernel path (tick, context switch, ...)."""
        service = self.services.get(name)
        self._emit(service, core=core)
        return service.sample_latency(self.rng)

    # ------------------------------------------------------------------
    # Higher-level kernel operations used by scenarios
    # ------------------------------------------------------------------
    def sysctl_write(self, path: str, value: int) -> int:
        """Write a /proc/sys file: open → write → close, with effects.

        Returns the total CPU time of the three calls.
        """
        latency = self.invoke_syscall("open_procsys")
        latency += self.invoke_syscall("write_procsys")
        latency += self.invoke_syscall("close")
        if path == RANDOMIZE_VA_SPACE:
            self.aslr.sysctl_write(int(value), time_ns=self.now)
        return latency

    def invocation_count(self, name: str) -> int:
        return self.invocation_counts.get(name, 0)

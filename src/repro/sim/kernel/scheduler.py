"""Preemptive rate-monotonic scheduler for the monitored core.

The paper's platform runs periodic MiBench tasks under a real-time
schedule (Section 5.1; the 78 % utilisation figure implies fixed
priorities by period).  The scheduler here is a faithful uniprocessor
RM model:

* jobs are released periodically (with a per-task phase);
* the highest-priority ready job always runs; lower-priority jobs are
  preempted mid-execution and resumed later;
* every dispatch that switches contexts emits the kernel's
  context-switch footprint, every release emits the wakeup footprint,
  and every kernel call a job makes emits that service's footprint —
  which is how application behaviour becomes visible in kernel MHMs.

Deadline policy: if a job is still running when its successor is due,
the release is *skipped* and recorded as a deadline miss (a common
embedded policy that keeps the backlog bounded).  The paper's normal
workload never misses; the qsort overload scenario may, which only
amplifies the anomaly — exactly the paper's observation that "the
timings of the other tasks are affected by qsort".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ... import obs
from ..engine import EventHandle, Simulator
from ..task import Job, TaskDefinition
from .kernel import Kernel

__all__ = ["TaskStats", "TaskControl", "RMScheduler"]


@dataclass
class TaskStats:
    """Per-task accounting."""

    releases: int = 0
    completions: int = 0
    deadline_misses: int = 0
    preemptions: int = 0
    response_times_ns: list[int] = field(default_factory=list)
    total_user_ns: int = 0
    total_kernel_ns: int = 0

    @property
    def mean_response_ns(self) -> float:
        if not self.response_times_ns:
            return 0.0
        return float(np.mean(self.response_times_ns))

    @property
    def max_response_ns(self) -> int:
        return max(self.response_times_ns, default=0)


@dataclass
class TaskControl:
    """Runtime state of an admitted task."""

    definition: TaskDefinition
    user_base: int
    release_handle: Optional[EventHandle] = None
    active_job: Optional[Job] = None
    stats: TaskStats = field(default_factory=TaskStats)

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def priority(self) -> tuple[int, str]:
        """RM priority key: smaller period wins; name breaks ties."""
        return (self.definition.period_ns, self.definition.name)


class RMScheduler:
    """Rate-monotonic preemptive scheduler driving one monitored core."""

    def __init__(
        self,
        sim: Simulator,
        kernel: Kernel,
        rng: np.random.Generator,
        core_id: int = 0,
    ):
        self.sim = sim
        self.kernel = kernel
        self.rng = rng
        #: Which monitored core this scheduler drives (SMP platforms).
        self.core_id = core_id
        self._tasks: dict[str, TaskControl] = {}
        self._ready: list[Job] = []
        self._current: Optional[Job] = None
        self._current_event: Optional[EventHandle] = None
        self._dispatched_at: int = 0
        self._last_running: Optional[str] = None
        self.context_switches = 0
        self.busy_ns = 0
        self._task_index = 0
        registry = obs.metrics()
        self._metric_dispatches = registry.counter("sched.dispatches")
        self._metric_switches = registry.counter("sched.context_switches")
        self._metric_releases = registry.counter("sched.job_releases")
        self._metric_preemptions = registry.counter("sched.preemptions")
        self._metric_misses = registry.counter("sched.deadline_misses")
        self._tracer = obs.tracer()

    # ------------------------------------------------------------------
    # Task admission
    # ------------------------------------------------------------------
    def add_task(
        self, definition: TaskDefinition, first_release_ns: Optional[int] = None
    ) -> TaskControl:
        """Admit a periodic task; first release defaults to its phase
        (or *now* when added at runtime after its phase has passed)."""
        if definition.name in self._tasks:
            raise ValueError(f"task {definition.name!r} already admitted")
        tcb = TaskControl(
            definition=definition,
            user_base=definition.resolved_user_base(self._task_index),
        )
        self._task_index += 1
        self._tasks[definition.name] = tcb
        first = definition.phase_ns if first_release_ns is None else first_release_ns
        first = max(first, self.sim.now)
        tcb.release_handle = self.sim.schedule_at(first, self._release, tcb)
        return tcb

    def remove_task(self, name: str) -> TaskControl:
        """Withdraw a task: no further releases; a running or queued job
        is aborted immediately (the process has exited)."""
        tcb = self._tasks.pop(name, None)
        if tcb is None:
            raise KeyError(f"task {name!r} is not admitted")
        if tcb.release_handle is not None:
            self.sim.cancel(tcb.release_handle)
            tcb.release_handle = None
        job = tcb.active_job
        if job is not None:
            if self._current is job:
                self._charge_current()
                self._cancel_current_event()
                self._current = None
                self._dispatch()
            elif job in self._ready:
                self._ready.remove(job)
            tcb.active_job = None
        return tcb

    def task(self, name: str) -> TaskControl:
        return self._tasks[name]

    @property
    def task_names(self) -> list[str]:
        return sorted(self._tasks)

    @property
    def is_idle(self) -> bool:
        return self._current is None and not self._ready

    @property
    def running_task(self) -> Optional[str]:
        return self._current.task.name if self._current is not None else None

    def total_utilization(self) -> float:
        return sum(t.definition.utilization for t in self._tasks.values())

    # ------------------------------------------------------------------
    # Release path
    # ------------------------------------------------------------------
    def _release(self, tcb: TaskControl) -> None:
        if tcb.name not in self._tasks:  # removed concurrently
            return
        defn = tcb.definition
        tcb.release_handle = self.sim.schedule_after(
            defn.period_ns, self._release, tcb
        )
        if tcb.active_job is not None:
            # Previous job overran its period: skip this release.
            tcb.stats.deadline_misses += 1
            self._metric_misses.inc()
            return
        tcb.stats.releases += 1
        self._metric_releases.inc()
        job = Job(defn, release_ns=self.sim.now, rng=self.rng, user_base=tcb.user_base)
        tcb.active_job = job
        self.kernel.run_service("kernel.job_release", core=self.core_id)
        self._enqueue(job)

    def _enqueue(self, job: Job) -> None:
        if self._current is None:
            self._ready.append(job)
            self._dispatch()
            return
        if self._priority(job) < self._priority(self._current):
            self._preempt_current()
            self._ready.append(job)
            self._dispatch()
        else:
            self._ready.append(job)

    @staticmethod
    def _priority(job: Job) -> tuple[int, str]:
        return (job.task.period_ns, job.task.name)

    # ------------------------------------------------------------------
    # Dispatch / execution
    # ------------------------------------------------------------------
    def _preempt_current(self) -> None:
        job = self._current
        assert job is not None
        self._charge_current()
        self._cancel_current_event()
        job.preemptions += 1
        self._tasks[job.task.name].stats.preemptions += 1
        self._metric_preemptions.inc()
        self._ready.append(job)
        self._current = None

    def _charge_current(self) -> None:
        """Account the CPU time the current job consumed since dispatch."""
        job = self._current
        if job is None:
            return
        elapsed = self.sim.now - self._dispatched_at
        if elapsed > 0:
            before_kernel = job.kernel_pending_ns
            job.advance(elapsed)
            self.busy_ns += elapsed
            kernel_part = before_kernel - job.kernel_pending_ns
            tcb = self._tasks.get(job.task.name)
            if tcb is not None:  # may be mid-removal (process exit)
                tcb.stats.total_kernel_ns += kernel_part
                tcb.stats.total_user_ns += elapsed - kernel_part
            self._dispatched_at = self.sim.now

    def _cancel_current_event(self) -> None:
        if self._current_event is not None:
            self.sim.cancel(self._current_event)
            self._current_event = None

    def _dispatch(self) -> None:
        """Run the highest-priority ready job, if any."""
        if self._current is not None or not self._ready:
            return
        job = min(self._ready, key=self._priority)
        self._ready.remove(job)
        self._current = job
        self._dispatched_at = self.sim.now
        job.dispatch_stamp += 1
        self._metric_dispatches.inc()
        if self._last_running != job.task.name:
            self.kernel.run_service("kernel.context_switch", core=self.core_id)
            self.context_switches += 1
            self._metric_switches.inc()
            if self._tracer.enabled:
                self._tracer.instant(
                    "sched.context_switch",
                    self.sim.now,
                    category="sched",
                    args={"task": job.task.name, "core": self.core_id},
                    track=self.core_id,
                )
            self._last_running = job.task.name
        self._emit_user_slice(job)
        self._schedule_milestone(job)

    def _emit_user_slice(self, job: Job) -> None:
        """A token user-space burst per dispatch (exercises the filter)."""
        addresses = job.user_base + self.rng.integers(0, 0x8000, size=8) * 4
        weights = np.full(8, 4, dtype=np.int64)
        self.kernel.emit_user_burst(addresses.astype(np.int64), weights, core=self.core_id)

    def _schedule_milestone(self, job: Job) -> None:
        dt = job.time_to_next_milestone()
        self._current_event = self.sim.schedule_after(
            dt, self._milestone, job, job.dispatch_stamp
        )

    def _milestone(self, job: Job, stamp: int) -> None:
        if self._current is not job or job.dispatch_stamp != stamp:
            return  # stale event (job was preempted or removed)
        self._current_event = None
        self._charge_current()

        call = job.pending_call
        if (
            job.kernel_pending_ns == 0
            and call is not None
            and job.user_done_ns >= call.user_offset_ns
        ):
            job.next_call += 1
            if call.via_table:
                latency = self.kernel.invoke_syscall(call.service, core=self.core_id)
            else:
                latency = self.kernel.run_service(call.service, core=self.core_id)
            job.begin_kernel_segment(latency)

        if job.is_complete:
            self._complete(job)
            return
        self._schedule_milestone(job)

    def _complete(self, job: Job) -> None:
        job.completed_at_ns = self.sim.now
        tcb = self._tasks.get(job.task.name)
        if tcb is not None:
            tcb.active_job = None
            tcb.stats.completions += 1
            tcb.stats.response_times_ns.append(job.response_time_ns)
        self._current = None
        self._dispatch()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def stats_summary(self) -> dict[str, TaskStats]:
        return {name: tcb.stats for name, tcb in self._tasks.items()}

    def measured_utilization(self) -> float:
        """Fraction of elapsed simulated time the core was busy."""
        if self.sim.now == 0:
            return 0.0
        # Include the in-flight slice of the currently running job.
        in_flight = self.sim.now - self._dispatched_at if self._current else 0
        return (self.busy_ns + in_flight) / self.sim.now

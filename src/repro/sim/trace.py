"""Memory access trace primitives.

The monitored core's activity reaches the hardware substrate as a stream
of :class:`AccessBurst` records: each kernel service invocation, timer
tick, context switch or user-space execution slice emits one burst of
instruction-fetch addresses.  Weights compress repetition — a loop body
fetched ``k`` times is one address with weight ``k`` — which is
observationally identical for the Memometer's per-cell counters and
keeps the simulation tractable.

Probes (:class:`TraceProbe`) subscribe to the stream; the Memometer's
snoop port, the cache models and the test recorder all implement the
same one-method interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol

import numpy as np

__all__ = [
    "AccessBurst",
    "TraceProbe",
    "TraceRecorder",
    "BurstFanout",
    "synthetic_burst",
]


@dataclass(frozen=True)
class AccessBurst:
    """A batch of memory accesses emitted at one simulated instant.

    Attributes
    ----------
    time_ns:
        Simulated emission time.
    addresses:
        Integer array of fetched addresses (read-only).
    weights:
        Per-address access counts (read-only, same length).
    kind:
        Provenance label, e.g. ``"syscall.read"`` or ``"kernel.tick"``.
        Purely diagnostic — the hardware never sees it.
    core:
        Index of the emitting core (0 = monitored core).
    """

    time_ns: int
    addresses: np.ndarray
    weights: np.ndarray
    kind: str = ""
    core: int = 0

    def __post_init__(self) -> None:
        addresses = np.asarray(self.addresses, dtype=np.int64)
        weights = np.asarray(self.weights, dtype=np.int64)
        if addresses.shape != weights.shape or addresses.ndim != 1:
            raise ValueError("addresses and weights must be 1-D arrays of equal length")
        if weights.size and weights.min() < 0:
            raise ValueError("weights must be non-negative")
        addresses.setflags(write=False)
        weights.setflags(write=False)
        object.__setattr__(self, "addresses", addresses)
        object.__setattr__(self, "weights", weights)

    @property
    def total_accesses(self) -> int:
        return int(self.weights.sum())

    def __len__(self) -> int:
        return len(self.addresses)

    @classmethod
    def uniform(
        cls, time_ns: int, addresses: Iterable[int], kind: str = "", core: int = 0
    ) -> "AccessBurst":
        """Burst with weight 1 per address (convenience for tests)."""
        addresses = np.asarray(list(addresses), dtype=np.int64)
        return cls(
            time_ns=time_ns,
            addresses=addresses,
            weights=np.ones_like(addresses),
            kind=kind,
            core=core,
        )


def synthetic_burst(
    rng: np.random.Generator,
    n: int,
    *,
    base_address: int,
    region_size: int,
    in_region_fraction: float = 0.9,
    max_weight: int = 4,
    time_ns: int = 0,
    kind: str = "synthetic",
) -> AccessBurst:
    """A random instruction-fetch burst for benches and kernel tests.

    Draws ``n`` addresses of which roughly ``in_region_fraction`` land
    inside ``[base_address, base_address + region_size)`` and the rest
    straddle both sides of the region (the Memometer must filter
    them), with per-address weights in ``[1, max_weight]``.  Shaped
    like the bursts the simulated kernel emits, but sized freely — the
    bench harness uses it to reproduce EXPERIMENTS.md-scale traces
    without running the simulator.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if not 0.0 <= in_region_fraction <= 1.0:
        raise ValueError("in_region_fraction must be in [0, 1]")
    inside = rng.random(n) < in_region_fraction
    addresses = np.empty(n, dtype=np.int64)
    addresses[inside] = base_address + rng.integers(
        0, region_size, size=int(inside.sum())
    )
    outside = ~inside
    # Out-of-region addresses surround the region on both sides.
    margin = max(region_size // 4, 1)
    low = rng.integers(
        max(base_address - margin, 0),
        base_address + region_size + margin,
        size=int(outside.sum()),
    )
    mask = (low >= base_address) & (low < base_address + region_size)
    low[mask] = np.maximum(base_address - 1 - (low[mask] - base_address), 0)
    addresses[outside] = low
    weights = rng.integers(1, max_weight + 1, size=n)
    return AccessBurst(
        time_ns=time_ns, addresses=addresses, weights=weights, kind=kind
    )


class TraceProbe(Protocol):
    """Anything that can observe the monitored core's access stream."""

    def observe_burst(self, burst: AccessBurst) -> None:  # pragma: no cover
        ...


@dataclass
class TraceRecorder:
    """A probe that stores every burst (tests and offline analysis)."""

    bursts: list[AccessBurst] = field(default_factory=list)

    def observe_burst(self, burst: AccessBurst) -> None:
        self.bursts.append(burst)

    def total_accesses(self) -> int:
        return sum(b.total_accesses for b in self.bursts)

    def kinds(self) -> set[str]:
        return {b.kind for b in self.bursts}

    def bursts_of_kind(self, kind: str) -> list[AccessBurst]:
        return [b for b in self.bursts if b.kind == kind]

    def clear(self) -> None:
        self.bursts.clear()

    # ------------------------------------------------------------------
    # Persistence — raw traces are the ground truth a heat map
    # summarises; saving them enables offline re-analysis at different
    # granularities/intervals without re-running the simulation.
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Save the trace to a compressed ``.npz`` archive."""
        if self.bursts:
            lengths = np.array([len(b) for b in self.bursts], dtype=np.int64)
            addresses = np.concatenate([b.addresses for b in self.bursts])
            weights = np.concatenate([b.weights for b in self.bursts])
        else:
            lengths = np.empty(0, dtype=np.int64)
            addresses = np.empty(0, dtype=np.int64)
            weights = np.empty(0, dtype=np.int64)
        np.savez_compressed(
            path,
            lengths=lengths,
            addresses=addresses,
            weights=weights,
            times=np.array([b.time_ns for b in self.bursts], dtype=np.int64),
            cores=np.array([b.core for b in self.bursts], dtype=np.int64),
            kinds=np.array([b.kind for b in self.bursts], dtype="U64"),
        )

    @classmethod
    def load(cls, path) -> "TraceRecorder":
        recorder = cls()
        with np.load(path) as data:
            offsets = np.concatenate([[0], np.cumsum(data["lengths"])])
            for i, (time_ns, core, kind) in enumerate(
                zip(data["times"], data["cores"], data["kinds"])
            ):
                lo, hi = offsets[i], offsets[i + 1]
                recorder.bursts.append(
                    AccessBurst(
                        time_ns=int(time_ns),
                        addresses=data["addresses"][lo:hi],
                        weights=data["weights"][lo:hi],
                        kind=str(kind),
                        core=int(core),
                    )
                )
        return recorder

    def replay_into(self, probe: "TraceProbe") -> None:
        """Feed the stored trace to another probe (e.g. a Memometer
        configured with a different granularity)."""
        for burst in self.bursts:
            probe.observe_burst(burst)


class BurstFanout:
    """Delivers each burst to every attached probe, in attach order."""

    def __init__(self) -> None:
        self._probes: list[TraceProbe] = []

    def attach(self, probe: TraceProbe) -> None:
        self._probes.append(probe)

    def detach(self, probe: TraceProbe) -> None:
        self._probes.remove(probe)

    def observe_burst(self, burst: AccessBurst) -> None:
        for probe in self._probes:
            probe.observe_burst(burst)

    def __len__(self) -> int:
        return len(self._probes)

"""A small deterministic discrete-event simulation engine.

The paper's prototype ran on Simics, a full-system simulator.  The
learning pipeline, however, only consumes the *memory access stream* of
the monitored core, so this reproduction simulates the platform at
memory-access granularity: kernel services, scheduler decisions and
interrupts are events that emit bursts of instruction-fetch addresses.

The engine is intentionally minimal: an absolute-time event queue with
deterministic FIFO tie-breaking, cancellable handles and periodic
sources.  Time is integer nanoseconds throughout so runs are exactly
reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from .. import obs

__all__ = ["EventHandle", "Simulator", "NS_PER_US", "NS_PER_MS", "NS_PER_SEC"]

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


class EventHandle:
    """A scheduled callback; cancel with :meth:`Simulator.cancel`."""

    __slots__ = ("time_ns", "seq", "fn", "args", "cancelled")

    def __init__(self, time_ns: int, seq: int, fn: Callable, args: tuple):
        self.time_ns = time_ns
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time_ns, self.seq) < (other.time_ns, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = getattr(self.fn, "__name__", repr(self.fn))
        state = " cancelled" if self.cancelled else ""
        return f"EventHandle(t={self.time_ns}, fn={name}{state})"


class Simulator:
    """Deterministic event loop over integer-nanosecond simulated time.

    Events scheduled for the same instant run in scheduling order
    (FIFO), which keeps runs bit-for-bit reproducible regardless of the
    callback contents.
    """

    def __init__(self, start_time_ns: int = 0):
        self.now: int = start_time_ns
        self._queue: list[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        registry = obs.metrics()
        self._metric_executed = registry.counter("sim.events_executed")
        self._metric_runs = registry.counter("sim.run_until_calls")
        self._metric_queue_depth = registry.gauge("sim.queue_depth")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time_ns: int, fn: Callable, *args) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated time ``time_ns``."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule event in the past ({time_ns} < now={self.now})"
            )
        handle = EventHandle(int(time_ns), next(self._seq), fn, args)
        heapq.heappush(self._queue, handle)
        return handle

    def schedule_after(self, delay_ns: int, fn: Callable, *args) -> EventHandle:
        """Schedule ``fn(*args)`` ``delay_ns`` from now."""
        if delay_ns < 0:
            raise ValueError(f"delay must be non-negative, got {delay_ns}")
        return self.schedule_at(self.now + delay_ns, fn, *args)

    def schedule_periodic(
        self,
        period_ns: int,
        fn: Callable,
        *args,
        start_at: Optional[int] = None,
    ) -> EventHandle:
        """Run ``fn(*args)`` every ``period_ns``, starting at ``start_at``.

        Returns the handle of the *next* occurrence; cancelling it stops
        the recurrence.  The handle object is reused for every
        occurrence so a single :meth:`cancel` always suffices.
        """
        if period_ns <= 0:
            raise ValueError(f"period must be positive, got {period_ns}")
        first = self.now + period_ns if start_at is None else start_at
        if first < self.now:
            raise ValueError(f"start_at {first} is before now={self.now}")

        handle = EventHandle(int(first), next(self._seq), fn, args)

        def _tick() -> None:
            fn(*args)
            if not handle.cancelled:
                handle.time_ns = handle.time_ns + period_ns
                handle.seq = next(self._seq)
                heapq.heappush(self._queue, handle)

        handle.fn = _tick
        handle.args = ()
        heapq.heappush(self._queue, handle)
        return handle

    @staticmethod
    def cancel(handle: EventHandle) -> None:
        """Cancel a pending event (safe to call more than once)."""
        handle.cancelled = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_until(self, end_time_ns: int) -> int:
        """Process all events with ``time <= end_time_ns``.

        Returns the number of events executed.  ``now`` is left at
        ``end_time_ns`` even if the queue drained earlier.
        """
        if end_time_ns < self.now:
            raise ValueError(f"end time {end_time_ns} is before now={self.now}")
        if self._running:
            raise RuntimeError("run_until called re-entrantly from a callback")
        self._running = True
        executed = 0
        try:
            while self._queue and self._queue[0].time_ns <= end_time_ns:
                handle = heapq.heappop(self._queue)
                if handle.cancelled:
                    continue
                self.now = handle.time_ns
                handle.fn(*handle.args)
                executed += 1
        finally:
            self._running = False
        self.now = end_time_ns
        self._metric_executed.inc(executed)
        self._metric_runs.inc()
        self._metric_queue_depth.set(len(self._queue))
        return executed

    def run_for(self, duration_ns: int) -> int:
        """Process all events in the next ``duration_ns`` of simulated time."""
        return self.run_until(self.now + duration_ns)

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for h in self._queue if not h.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Simulator(now={self.now}ns, pending={self.pending_events})"

"""Fleet simulation: many monitored devices as interleaved MHM streams.

The paper's prototype monitors *one* core of *one* board; the serving
layer (:mod:`repro.serve`) scores a whole fleet of them concurrently.
This module supplies the fleet-side half of that story:

* a small registry of **device profiles** — named platform
  configurations modelling mixed workloads across the fleet (the
  paper's baseline MiBench set, a jitter-damped RTOS build, and a
  network-loaded box from the Section 5.5 limitation study);
* :class:`DeviceSpec` / :func:`build_fleet_specs` — a deterministic
  expansion of ``(devices, seed)`` into per-device specs, each with
  its own ``SeedSequence``-derived platform seed and an optional
  attack-injection schedule (:mod:`repro.attacks` scenarios cycled
  over a deterministically spread subset of devices);
* :class:`DeviceStream` — one device as a pullable stream of
  per-interval :class:`IntervalRecord` values, injecting (and, for
  reversible attacks, reverting) its scenario at the configured
  interval exactly the way the single-device
  :class:`~repro.pipeline.scenario.ScenarioRunner` does;
* :class:`FleetSimulator` — round-robin interleaving of every device
  stream, one simulated monitoring interval per device per step.

Determinism contract: a device's records are a pure function of its
spec.  Interleaving order, shard assignment and worker count never
change what any single device emits — the property the serving layer's
serial ≡ sharded bit-identity tests are built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from .. import obs
from ..obs.context import TraceContext, trace_args
from ..pipeline.stages import SCENARIOS, make_attack, scenario_reversible
from .devices import NetworkDeviceConfig
from .platform import Platform, PlatformConfig

__all__ = [
    "PROFILES",
    "profile_config",
    "DeviceSpec",
    "IntervalRecord",
    "build_fleet_specs",
    "DeviceStream",
    "FleetSimulator",
]


# ----------------------------------------------------------------------
# Device profiles (mixed fleet workloads)
# ----------------------------------------------------------------------
#: Named platform-configuration factories.  A fleet mixes profiles;
#: each profile gets its own trained detector (the serving layer's
#: :class:`~repro.serve.registry.DetectorRegistry` keys on the name).
PROFILES: Dict[str, Callable[[], PlatformConfig]] = {
    # The paper's prototype: four MiBench tasks at 78 % utilisation.
    "baseline": PlatformConfig,
    # An RTOS-flavoured build: tighter kernel code paths (Section 7's
    # "more deterministic" remark), same task set.
    "rtos": lambda: PlatformConfig(kernel_jitter_scale=0.5),
    # The Section 5.5 stressor: aperiodic network receive interrupts
    # riding on top of the periodic task set.
    "netload": lambda: PlatformConfig(
        network_devices=(NetworkDeviceConfig(mean_rate_hz=150.0),)
    ),
}


def profile_config(name: str) -> PlatformConfig:
    """The platform configuration for a named profile."""
    try:
        factory = PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown device profile {name!r}; choose from {sorted(PROFILES)}"
        ) from None
    return factory()


# ----------------------------------------------------------------------
# Device specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeviceSpec:
    """Everything that determines one device's stream.

    A spec is self-describing and picklable: a shard worker can rebuild
    the exact device stream from the spec alone, which is what makes
    shard placement irrelevant to the emitted records.
    """

    device_id: str
    index: int
    profile: str
    seed: int
    scenario: Optional[str] = None
    attack_params: tuple = ()
    inject_interval: Optional[int] = None
    revert_interval: Optional[int] = None
    inject_offset_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.scenario is not None and self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; "
                f"choose from {sorted(SCENARIOS)}"
            )
        if self.scenario is not None and self.inject_interval is None:
            raise ValueError("an attacked device needs an inject_interval")
        if (
            self.revert_interval is not None
            and self.inject_interval is not None
            and self.revert_interval <= self.inject_interval
        ):
            raise ValueError("revert_interval must come after inject_interval")

    @property
    def attacked(self) -> bool:
        return self.scenario is not None


@dataclass(frozen=True)
class IntervalRecord:
    """One device's MHM for one monitoring interval.

    ``time_ns`` is the interval's simulated start time on the device's
    own clock; ``trace`` is the record's deterministic trace context
    (populated only while telemetry is enabled — scoring never reads
    either, so they cannot perturb results).
    """

    device_index: int
    device_id: str
    profile: str
    interval_index: int
    vector: np.ndarray  # float64 cell counts, ready for scoring
    truth: bool  # ground-truth anomaly label (attack active)
    time_ns: int = 0
    trace: Optional[TraceContext] = None
    #: int64 syscall-frequency vector for the same interval (the
    #: context modality's input); ``None`` only on legacy records.
    syscalls: Optional[np.ndarray] = None


def build_fleet_specs(
    devices: int,
    intervals: int,
    root_seed: int = 0,
    profiles: Sequence[str] = ("baseline", "rtos", "netload"),
    attacked_devices: int = 0,
    attack_scenarios: Optional[Sequence[str]] = None,
    inject_fraction: float = 0.5,
) -> List[DeviceSpec]:
    """Expand ``(devices, root_seed)`` into deterministic device specs.

    Per-device platform seeds derive from
    ``SeedSequence(root_seed).spawn`` — device *i*'s seed is a pure
    function of ``root_seed`` and *i*.  ``attacked_devices`` devices
    (spread evenly across the index range) are assigned scenarios from
    ``attack_scenarios`` round-robin, injected at
    ``int(intervals * inject_fraction)``; reversible attacks revert
    three quarters of the way through the remaining window.
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    if intervals < 1:
        raise ValueError("intervals must be >= 1")
    if not 0 < inject_fraction < 1:
        raise ValueError("inject_fraction must be in (0, 1)")
    if not 0 <= attacked_devices <= devices:
        raise ValueError("attacked_devices must be in [0, devices]")
    profiles = tuple(profiles)
    if not profiles:
        raise ValueError("at least one profile is required")
    for name in profiles:
        if name not in PROFILES:
            raise ValueError(
                f"unknown device profile {name!r}; choose from {sorted(PROFILES)}"
            )
    scenarios = tuple(attack_scenarios or sorted(SCENARIOS))
    for name in scenarios:
        if name not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
            )

    # Evenly spread attacked indices (deterministic, no RNG draw).
    attacked = {
        (i * devices) // attacked_devices for i in range(attacked_devices)
    }
    inject_at = max(1, int(intervals * inject_fraction))
    children = np.random.SeedSequence(root_seed).spawn(devices)

    specs: List[DeviceSpec] = []
    width = max(4, len(str(devices - 1)))
    attack_ordinal = 0
    for index, child in enumerate(children):
        seed = int(child.generate_state(1, np.uint32)[0])
        scenario = None
        inject = None
        revert = None
        if index in attacked:
            scenario = scenarios[attack_ordinal % len(scenarios)]
            attack_ordinal += 1
            inject = inject_at
            if scenario_reversible(scenario):
                candidate = inject + max(1, (3 * (intervals - inject)) // 4)
                if candidate < intervals - 1:
                    revert = candidate
        specs.append(
            DeviceSpec(
                device_id=f"dev-{index:0{width}d}",
                index=index,
                profile=profiles[index % len(profiles)],
                seed=seed,
                scenario=scenario,
                inject_interval=inject,
                revert_interval=revert,
            )
        )
    return specs


# ----------------------------------------------------------------------
# Streams
# ----------------------------------------------------------------------
class DeviceStream:
    """One simulated device as a pullable per-interval record stream."""

    def __init__(self, spec: DeviceSpec, config: Optional[PlatformConfig] = None):
        self.spec = spec
        base = config if config is not None else profile_config(spec.profile)
        self.platform = Platform(base.with_seed(spec.seed))
        self.attack = (
            make_attack(spec.scenario, dict(spec.attack_params))
            if spec.scenario is not None
            else None
        )
        self.emitted = 0
        # Instruments are cached at construction (the obs contract);
        # trace contexts are built only while the tracer is live so the
        # disabled path stays two attribute reads per record.
        self._tracer = obs.tracer()

    def _truth(self, interval_index: int) -> bool:
        spec = self.spec
        if spec.inject_interval is None or interval_index < spec.inject_interval:
            return False
        if spec.revert_interval is None:
            return True
        return interval_index <= spec.revert_interval

    def next_interval(self) -> IntervalRecord:
        """Run one monitoring interval and return its record.

        The attack is scheduled "some moments after" the interval
        boundary (``inject_offset_fraction`` inside the interval),
        matching :class:`~repro.pipeline.scenario.ScenarioRunner`.
        """
        spec = self.spec
        platform = self.platform
        index = self.emitted
        if self.attack is not None:
            offset = int(
                spec.inject_offset_fraction * platform.config.interval_ns
            )
            if index == spec.inject_interval:
                platform.sim.schedule_at(
                    platform.now + offset, self.attack.inject, platform
                )
            if spec.revert_interval is not None and index == spec.revert_interval:
                platform.sim.schedule_at(
                    platform.now + offset, self.attack.revert, platform
                )
        start = platform.intervals_completed
        platform.run_intervals(1)
        heat_map = platform.secure_core.series(start=start)[0]
        syscalls = platform.syscall_matrix(start=start)[0]
        self.emitted += 1
        trace = None
        if self._tracer.enabled:
            trace = TraceContext.for_interval(spec.seed, spec.device_id, index)
            self._tracer.instant(
                "interval.emit",
                heat_map.start_time_ns,
                category="serve",
                args=trace_args(
                    trace, device_id=spec.device_id, interval=index
                ),
                track=spec.index,
            )
        return IntervalRecord(
            device_index=spec.index,
            device_id=spec.device_id,
            profile=spec.profile,
            interval_index=index,
            vector=heat_map.as_vector(),
            truth=self._truth(index),
            time_ns=heat_map.start_time_ns,
            trace=trace,
            syscalls=syscalls,
        )


class FleetSimulator:
    """Interleaves every device stream, one interval per device per step."""

    def __init__(
        self,
        specs: Sequence[DeviceSpec],
        configs: Optional[Dict[str, PlatformConfig]] = None,
    ):
        if not specs:
            raise ValueError("a fleet needs at least one device")
        configs = configs or {}
        self.streams = [
            DeviceStream(spec, config=configs.get(spec.profile)) for spec in specs
        ]
        self._metric_emitted = obs.metrics().counter("serve.intervals_emitted")

    @property
    def specs(self) -> List[DeviceSpec]:
        return [stream.spec for stream in self.streams]

    def step(self) -> Iterator[IntervalRecord]:
        """One fleet step: every device advances one interval, in
        device order."""
        for stream in self.streams:
            record = stream.next_interval()
            self._metric_emitted.inc()
            yield record

    def run(self, intervals: int) -> Iterator[IntervalRecord]:
        """``intervals`` fleet steps, fully interleaved."""
        for _ in range(intervals):
            yield from self.step()

"""The full-system simulation substrate (the paper used Simics)."""

from .devices import NetworkDevice, NetworkDeviceConfig
from .engine import NS_PER_MS, NS_PER_SEC, NS_PER_US, Simulator
from .platform import Platform, PlatformConfig
from .smp import partition_tasks, per_core_utilization
from .task import SyscallUse, TaskDefinition
from .trace import AccessBurst, TraceRecorder

__all__ = [
    "Simulator",
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_SEC",
    "Platform",
    "PlatformConfig",
    "TaskDefinition",
    "SyscallUse",
    "AccessBurst",
    "TraceRecorder",
    "partition_tasks",
    "per_core_utilization",
    "NetworkDevice",
    "NetworkDeviceConfig",
]

"""The simulated dual-core platform.

This module assembles the full prototype of Section 5.1: a monitored
core running the synthetic embedded kernel and a periodic task set, a
Memometer snooping its fetch stream, and a secure core collecting the
resulting MHMs — one per monitoring interval.

The Memometer placement is configurable (the Limitation-section
ablation): ``pre-l1`` snoops the raw core-to-L1 address line as in the
paper; ``post-l1`` and ``post-l2`` interpose LRU cache models so the
Memometer only sees misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from .. import obs
from ..core.series import HeatMapSeries
from ..core.spec import HeatMapSpec
from ..hw.cache import L1_CONFIG, L2_CONFIG, CacheFilter, SetAssociativeCache
from ..hw.memometer import ControlRegisters, Memometer
from ..hw.securecore import SecureCore
from .devices import NetworkDevice
from .engine import NS_PER_MS, Simulator
from .kernel.kernel import Kernel
from .kernel.syscalls import DEFAULT_SYSCALLS
from .kernel.layout import KERNEL_TEXT_BASE, KERNEL_TEXT_SIZE
from .kernel.process import ProcessManager
from .kernel.scheduler import RMScheduler
from .task import TaskDefinition
from .workloads.mibench import paper_taskset

__all__ = ["PLACEMENTS", "PlatformConfig", "Platform"]

PLACEMENTS = ("pre-l1", "post-l1", "post-l2")


@dataclass(frozen=True)
class PlatformConfig:
    """Everything needed to build a reproducible platform instance.

    The defaults are the paper's prototype: the Linux-3.4 kernel
    ``.text`` region at 2 KB granularity (1,472 cells), a 10 ms
    monitoring interval, a 1 ms timer tick and the four-task MiBench
    set at 78 % utilisation.
    """

    tasks: tuple[TaskDefinition, ...] = field(
        default_factory=lambda: tuple(paper_taskset())
    )
    base_address: int = KERNEL_TEXT_BASE
    region_size: int = KERNEL_TEXT_SIZE
    granularity: int = 2048
    interval_ns: int = 10 * NS_PER_MS
    tick_period_ns: int = 1 * NS_PER_MS
    kworker_period_ns: int = 4 * NS_PER_MS
    enable_kworker: bool = True
    placement: str = "pre-l1"
    seed: int = 2015
    #: Number of monitored cores (SMP; Section 5.5).  Tasks carry a
    #: ``core`` attribute selecting their partition.
    monitored_cores: int = 1
    #: Scales kernel footprint jitter (< 1 models an RTOS's more
    #: deterministic code paths; paper Section 7).
    kernel_jitter_scale: float = 1.0
    #: Interrupt-driven network interfaces (aperiodic legitimate load;
    #: the paper's Section 5.5 stressor).  Empty by default.
    network_devices: tuple = ()

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )
        if self.interval_ns <= 0 or self.tick_period_ns <= 0:
            raise ValueError("interval and tick period must be positive")
        if self.monitored_cores < 1:
            raise ValueError("monitored_cores must be >= 1")
        if self.kernel_jitter_scale < 0:
            raise ValueError("kernel_jitter_scale must be non-negative")
        names = [t.name for t in self.tasks]
        if len(names) != len(set(names)):
            raise ValueError("task names must be unique")
        for task in self.tasks:
            if task.core >= self.monitored_cores:
                raise ValueError(
                    f"task {task.name!r} targets core {task.core}, but the "
                    f"platform has {self.monitored_cores} monitored core(s)"
                )
        for device in self.network_devices:
            if device.core >= self.monitored_cores:
                raise ValueError(
                    f"network device targets core {device.core}, but the "
                    f"platform has {self.monitored_cores} monitored core(s)"
                )

    @property
    def spec(self) -> HeatMapSpec:
        return HeatMapSpec(self.base_address, self.region_size, self.granularity)

    def with_granularity(self, granularity: int) -> "PlatformConfig":
        return replace(self, granularity=granularity)

    def with_placement(self, placement: str) -> "PlatformConfig":
        return replace(self, placement=placement)

    def with_seed(self, seed: int) -> "PlatformConfig":
        return replace(self, seed=seed)

    def with_tasks(self, tasks) -> "PlatformConfig":
        return replace(self, tasks=tuple(tasks))


class Platform:
    """A runnable instance of the monitored system.

    Typical use::

        platform = Platform(PlatformConfig(seed=7))
        series = platform.collect_intervals(300)   # 3 s of MHMs

    Attack scenarios reach in through :attr:`kernel` (syscall table,
    module loader, ASLR) and :attr:`processes` (launch/kill).
    """

    def __init__(self, config: Optional[PlatformConfig] = None):
        self.config = config or PlatformConfig()
        self.spec = self.config.spec
        self.sim = Simulator()
        self.rng = np.random.default_rng(self.config.seed)

        self.kernel = Kernel(
            self.sim, self.rng, jitter_scale=self.config.kernel_jitter_scale
        )
        self.schedulers = [
            RMScheduler(self.sim, self.kernel, self.rng, core_id=core)
            for core in range(self.config.monitored_cores)
        ]
        self.scheduler = self.schedulers[0]
        self.processes = ProcessManager(self.sim, self.kernel, self.schedulers)

        self.secure_core = SecureCore(self.spec, clock=lambda: self.sim.now)
        self.memometer = Memometer(
            ControlRegisters(
                base_address=self.config.base_address,
                region_size=self.config.region_size,
                granularity=self.config.granularity,
                interval_ns=self.config.interval_ns,
            ),
            on_heatmap=self.secure_core.receive,
        )
        self.caches: list[SetAssociativeCache] = []
        self.kernel.attach_probe(self._build_snoop_chain())

        for task in self.config.tasks:
            self.schedulers[task.core].add_task(task)

        self.devices = []
        for device_config in self.config.network_devices:
            device = NetworkDevice(self.sim, self.kernel, device_config, self.rng)
            device.start()
            self.devices.append(device)

        # Per-interval syscall-frequency capture (the second detection
        # modality of repro.learn.contexts): at every interval boundary
        # the cumulative kernel invocation counters are differenced into
        # one int64 histogram over the syscall vocabulary, aligned with
        # the secure core's MHM interval indices.  Hijacked syscalls
        # still dispatch under their own ``syscall.<name>`` burst kind,
        # so the histogram sees the call regardless of table patching.
        self.syscall_vocabulary: tuple[str, ...] = DEFAULT_SYSCALLS
        self._syscall_index = {
            name: i for i, name in enumerate(self.syscall_vocabulary)
        }
        self._syscall_prev: dict[str, int] = {}
        self._syscall_rows: list[np.ndarray] = []

        registry = obs.metrics()
        self._metric_ticks = registry.counter("platform.ticks")
        self._metric_intervals = registry.counter("platform.intervals")
        self._tracer = obs.tracer()

        self.sim.schedule_periodic(self.config.tick_period_ns, self._on_tick)
        if self.config.enable_kworker:
            self.sim.schedule_periodic(self.config.kworker_period_ns, self._on_kworker)
        self.sim.schedule_periodic(self.config.interval_ns, self._on_interval_boundary)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _build_snoop_chain(self):
        """Memometer snoop point per the configured placement."""
        placement = self.config.placement
        if placement == "pre-l1":
            return self.memometer
        l1 = SetAssociativeCache(L1_CONFIG)
        self.caches.append(l1)
        if placement == "post-l1":
            return CacheFilter(l1, self.memometer)
        l2 = SetAssociativeCache(L2_CONFIG)
        self.caches.append(l2)
        return CacheFilter(l1, CacheFilter(l2, self.memometer))

    # ------------------------------------------------------------------
    # Periodic platform activity
    # ------------------------------------------------------------------
    def _on_tick(self) -> None:
        # Each monitored core takes its own timer interrupt (SMP).
        self._metric_ticks.inc()
        if self._tracer.enabled:
            self._tracer.instant("irq.timer_tick", self.sim.now, category="sim")
        for scheduler in self.schedulers:
            self.kernel.run_service("kernel.tick", core=scheduler.core_id)
            if scheduler.is_idle:
                self.kernel.run_service("kernel.idle", core=scheduler.core_id)

    def _on_kworker(self) -> None:
        self.kernel.run_service("kernel.kworker")

    def _on_interval_boundary(self) -> None:
        self._metric_intervals.inc()
        if self._tracer.enabled:
            index = self.memometer.intervals_completed
            self._tracer.complete(
                "monitoring.interval",
                self.sim.now - self.config.interval_ns,
                self.config.interval_ns,
                category="sim",
                args={"interval_index": index},
            )
            self._tracer.instant(
                "interval.boundary",
                self.sim.now,
                category="sim",
                args={"interval_index": index},
            )
        self.memometer.interval_boundary(self.sim.now)
        self._capture_syscall_interval()

    def _capture_syscall_interval(self) -> None:
        """Difference the cumulative syscall counters into this
        interval's histogram (the persisted ``prev`` dict makes the
        first interval exact rather than a diff against zero)."""
        row = np.zeros(len(self.syscall_vocabulary), dtype=np.int64)
        for name, total in self.kernel.invocation_counts.items():
            if not name.startswith("syscall."):
                continue
            index = self._syscall_index.get(name[len("syscall."):])
            previous = self._syscall_prev.get(name, 0)
            self._syscall_prev[name] = total
            if index is not None:
                row[index] = total - previous
        self._syscall_rows.append(row)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        return self.sim.now

    @property
    def all_task_names(self) -> list[str]:
        """Every admitted task across all monitored cores."""
        names: list[str] = []
        for scheduler in self.schedulers:
            names.extend(scheduler.task_names)
        return sorted(names)

    @property
    def intervals_completed(self) -> int:
        return self.secure_core.intervals_received

    def run_for(self, duration_ns: int) -> None:
        self.sim.run_for(duration_ns)

    def run_intervals(self, count: int) -> None:
        """Advance the simulation by ``count`` monitoring intervals."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.sim.run_for(count * self.config.interval_ns)

    def collect_intervals(self, count: int) -> HeatMapSeries:
        """Run ``count`` intervals and return *their* MHMs as a series."""
        start = self.secure_core.intervals_received
        self.run_intervals(count)
        return self.secure_core.series(start=start)

    def heatmap_series(self) -> HeatMapSeries:
        """All MHMs collected since construction."""
        return self.secure_core.series()

    def syscall_matrix(self, start: int = 0) -> np.ndarray:
        """Per-interval syscall histograms from interval ``start`` on.

        Row *i* of the returned ``(intervals, len(syscall_vocabulary))``
        int64 matrix is the syscall-frequency vector of the interval
        whose MHM sits at ``secure_core.series()[start + i]`` — the two
        capture paths share the interval-boundary callback, so indices
        align by construction.
        """
        rows = self._syscall_rows[start:]
        if not rows:
            return np.zeros((0, len(self.syscall_vocabulary)), dtype=np.int64)
        return np.stack(rows)

"""Interrupt-driven I/O devices.

The paper's Limitation section (5.5): "Some systems may exhibit highly
unpredictable, but yet legitimate, memory usage caused by, for example,
network activities or user interactions.  In these cases, our current
model may alarm many false positives."

This module supplies that stressor as a first-class platform component:
a :class:`NetworkDevice` raises receive interrupts as a Poisson process
(optionally in bursts, modelling packet trains), each of which runs the
kernel's net-RX path (``kernel.net_rx``) — IRQ entry, softirq, protocol
handlers — inside the monitored region.  Because arrivals are
aperiodic, the per-interval MHM contribution varies in a way no
training set fully captures, which is exactly what the A9 ablation
feeds to the global-vs-local-feature comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from .kernel.kernel import Kernel

__all__ = ["NetworkDeviceConfig", "NetworkDevice"]


@dataclass(frozen=True)
class NetworkDeviceConfig:
    """Traffic model of one network interface.

    Parameters
    ----------
    mean_rate_hz:
        Mean interrupt-train arrival rate (Poisson process).
    burst_length_mean:
        Mean packets per train (geometric); each packet runs one
        ``kernel.net_rx`` service invocation.
    core:
        Monitored core that takes the interrupts.
    """

    mean_rate_hz: float = 200.0
    burst_length_mean: float = 2.0
    core: int = 0

    def __post_init__(self) -> None:
        if self.mean_rate_hz <= 0:
            raise ValueError("mean_rate_hz must be positive")
        if self.burst_length_mean < 1.0:
            raise ValueError("burst_length_mean must be >= 1")
        if self.core < 0:
            raise ValueError("core must be non-negative")


class NetworkDevice:
    """A Poisson interrupt source wired to the kernel's net-RX path."""

    def __init__(
        self,
        sim: Simulator,
        kernel: "Kernel",
        config: NetworkDeviceConfig,
        rng: np.random.Generator,
    ):
        self.sim = sim
        self.kernel = kernel
        self.config = config
        self.rng = rng
        self.interrupts_raised = 0
        self.packets_received = 0
        self._started = False

    def start(self) -> None:
        """Arm the device; the first arrival is scheduled immediately."""
        if self._started:
            raise RuntimeError("device already started")
        self._started = True
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap_s = self.rng.exponential(1.0 / self.config.mean_rate_hz)
        self.sim.schedule_after(max(1, int(gap_s * 1e9)), self._on_arrival)

    def _on_arrival(self) -> None:
        self.interrupts_raised += 1
        packets = 1 + int(self.rng.geometric(1.0 / self.config.burst_length_mean) - 1)
        for _ in range(packets):
            self.kernel.run_service("kernel.net_rx", core=self.config.core)
            self.packets_received += 1
        self._schedule_next()

    @property
    def mean_packets_per_interrupt(self) -> float:
        if self.interrupts_raised == 0:
            return 0.0
        return self.packets_received / self.interrupts_raised

"""Forensic analysis of flagged heat maps."""

from .attribution import AttributionReport, CellAttribution, explain_heatmap

__all__ = ["explain_heatmap", "AttributionReport", "CellAttribution"]

"""Anomaly forensics: *why* was this heat map flagged?

The paper's detector gives a per-interval verdict; an operator's next
question is *what changed*.  Because the pipeline is linear algebra
over an address-indexed vector, the answer is recoverable:

1. project the suspect MHM into eigenmemory space and find the GMM
   component that takes the most responsibility for it — the closest
   normal behaviour pattern;
2. reconstruct that component's *expected* heat map
   (``Ψ + uᵀ·μ_j``) and diff it against the observed one;
3. rank cells by their share of the squared deviation and translate
   each back into kernel symbols via the layout.

On the paper's attacks this points straight at the cause: the rootkit
load interval attributes to ``load_module``/``apply_relocate`` cells,
an application launch to the ``fork``/``execve``/loader path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.mhm import MemoryHeatMap
from ..learn.detector import MhmDetector
from ..sim.kernel.layout import KernelLayout

__all__ = ["CellAttribution", "AttributionReport", "explain_heatmap"]


@dataclass(frozen=True)
class CellAttribution:
    """One cell's contribution to the anomaly."""

    cell_index: int
    start_address: int
    end_address: int
    observed: float
    expected: float
    deviation_share: float
    functions: tuple[str, ...] = ()
    subsystem: Optional[str] = None

    @property
    def excess(self) -> float:
        """Positive = more accesses than the nearest normal pattern."""
        return self.observed - self.expected


@dataclass
class AttributionReport:
    """The forensic summary for one flagged interval."""

    log_density: float
    is_anomalous: bool
    nearest_component: int
    component_responsibility: float
    cells: list[CellAttribution] = field(default_factory=list)
    subsystem_shares: dict[str, float] = field(default_factory=dict)

    @property
    def dominant_subsystem(self) -> Optional[str]:
        if not self.subsystem_shares:
            return None
        return max(self.subsystem_shares, key=self.subsystem_shares.get)

    def render(self) -> str:
        """Human-readable forensic report."""
        lines = [
            f"log10 Pr(M) = {self.log_density / np.log(10):.2f}  "
            f"({'ANOMALOUS' if self.is_anomalous else 'normal'})",
            f"nearest normal pattern: GMM component {self.nearest_component} "
            f"(responsibility {self.component_responsibility:.1%})",
        ]
        if self.subsystem_shares:
            shares = ", ".join(
                f"{name} {share:.0%}"
                for name, share in sorted(
                    self.subsystem_shares.items(), key=lambda kv: -kv[1]
                )[:5]
            )
            lines.append(f"deviation by subsystem: {shares}")
        lines.append("top deviating cells:")
        for cell in self.cells:
            symbols = ", ".join(cell.functions[:3]) or "?"
            direction = "+" if cell.excess >= 0 else "-"
            lines.append(
                f"  cell {cell.cell_index:4d} "
                f"[{cell.start_address:#x}..{cell.end_address:#x}) "
                f"{direction}{abs(cell.excess):7.0f} accesses "
                f"({cell.deviation_share:5.1%})  {symbols}"
            )
        return "\n".join(lines)


def explain_heatmap(
    detector: MhmDetector,
    heat_map: MemoryHeatMap,
    layout: Optional[KernelLayout] = None,
    top_k: int = 10,
    p_percent: float = 1.0,
) -> AttributionReport:
    """Attribute a heat map's deviation to cells and kernel symbols.

    Parameters
    ----------
    detector:
        A fitted :class:`~repro.learn.detector.MhmDetector`.
    heat_map:
        The interval to explain (flagged or not).
    layout:
        Kernel layout for symbol translation; cells outside the image
        (or with no layout given) carry no symbol annotations.
    top_k:
        Number of cells to report.
    p_percent:
        θ_p used for the anomalous verdict.
    """
    if not detector.is_fitted:
        raise RuntimeError("detector must be fitted")
    vector = heat_map.as_vector()
    reduced = detector.eigenmemory.transform(vector[np.newaxis, :])
    responsibilities = detector.gmm.responsibilities(reduced)[0]
    nearest = int(responsibilities.argmax())

    # The nearest normal pattern, reconstructed in cell space.
    component_mean = detector.gmm.parameters.means[nearest]
    expected = detector.eigenmemory.inverse_transform(component_mean)

    residual = vector - expected
    squared = residual**2
    total = float(squared.sum()) or 1.0

    spec = heat_map.spec
    order = np.argsort(squared)[::-1][: max(0, top_k)]
    cells: list[CellAttribution] = []
    subsystem_shares: dict[str, float] = {}
    for index in order:
        start, end = spec.cell_range(int(index))
        functions: tuple[str, ...] = ()
        subsystem = None
        if layout is not None:
            overlapping = layout.functions_overlapping(start, end)
            functions = tuple(fn.name for fn in overlapping)
            if overlapping:
                subsystem = overlapping[0].subsystem
        share = float(squared[index]) / total
        cells.append(
            CellAttribution(
                cell_index=int(index),
                start_address=start,
                end_address=end,
                observed=float(vector[index]),
                expected=float(expected[index]),
                deviation_share=share,
                functions=functions,
                subsystem=subsystem,
            )
        )
        key = subsystem or "(outside image)"
        subsystem_shares[key] = subsystem_shares.get(key, 0.0) + share

    log_density = detector.log_density(heat_map)
    return AttributionReport(
        log_density=log_density,
        is_anomalous=log_density < detector.threshold(p_percent),
        nearest_component=nearest,
        component_responsibility=float(responsibilities[nearest]),
        cells=cells,
        subsystem_shares=subsystem_shares,
    )

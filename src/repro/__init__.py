"""repro — Memory Heat Map anomaly detection (DAC 2015 reproduction).

A complete, self-contained reproduction of *Memory Heat Map: Anomaly
Detection in Real-Time Embedded Systems Using Memory Behavior*
(Yoon, Mohan, Choi, Sha — DAC 2015), including:

* the MHM data structure and the Memometer/SecureCore hardware model;
* a discrete-event simulator of the monitored embedded platform
  (kernel, RM scheduler, MiBench-like periodic tasks);
* the eigenmemory (PCA) + GMM learning pipeline, written from scratch;
* the paper's three attack scenarios and the baseline detectors.

Quick start::

    from repro import Platform, PlatformConfig, MhmDetector

    platform = Platform(PlatformConfig(seed=7))
    training = platform.collect_intervals(300)
    detector = MhmDetector().fit(training)
    verdict = detector.classify(platform.collect_intervals(1)[0])
"""

from .core import HeatMapSeries, HeatMapSpec, MemoryHeatMap
from .sim import Platform, PlatformConfig, SyscallUse, TaskDefinition

__version__ = "1.0.0"

__all__ = [
    "HeatMapSpec",
    "MemoryHeatMap",
    "HeatMapSeries",
    "Platform",
    "PlatformConfig",
    "TaskDefinition",
    "SyscallUse",
    "MhmDetector",
    "__version__",
]


def __getattr__(name):
    # Lazy import: keeps `import repro` light and avoids a hard cycle
    # while still exposing the detector at the top level.
    if name == "MhmDetector":
        from .learn.detector import MhmDetector

        return MhmDetector
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

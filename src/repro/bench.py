"""Kernel benchmark harness — the repo's machine-readable perf trajectory.

``repro bench`` times every hot-path kernel under both
:mod:`repro.kernels` backends plus a small end-to-end train/detect
pipeline, and writes ``BENCH_kernels.json``: one entry per kernel with
``kernel, n, wall_s, speedup_vs_reference, git_sha``.  Subsequent PRs
regress against this file — CI's ``bench-smoke`` job runs
``repro bench --smoke --check`` and fails when the vectorized backend
falls below its per-kernel speedup floor (never slower than the
reference oracle; see ``SPEEDUP_FLOORS`` — ≥3x on Memometer counting,
≥5x on GMM batch scoring, ≥50x on the BLAS-bound batch kernels, ≥25x
on the fused fleet path, ≥30x end-to-end).  The report additionally
carries a ``fleet_throughput`` block: devices/sec through the fused
path under both compute dtypes (and per 10 ms paper interval), with
the measured float32 ULP maxima recorded next to the budget.

Problem sizes follow the paper/EXPERIMENTS.md scales: the monitored
region is the prototype's 1,472-cell kernel ``.text`` map, a full
counting run covers ~1M snooped addresses (≈100 monitoring intervals
of instruction-fetch trace; EXPERIMENTS.md scenarios span 400–500
intervals), and GMM scoring covers the Section 5.2 training-set size
(3,000 MHMs reduced to L′ = 9, J = 5 components).  ``--smoke`` shrinks
every size for CI while keeping the same shape.

Speedups are measured on one machine within one process, so they are
robust to absolute machine speed; ``wall_s`` entries are only
comparable across runs on similar hardware.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import asdict, dataclass
from typing import Callable

import numpy as np

from . import kernels
from .core.spec import HeatMapSpec
from .learn.detector import MhmDetector
from .pipeline.training import collect_training_data
from .sim.platform import PlatformConfig
from .sim.trace import synthetic_burst

__all__ = [
    "BenchResult",
    "SPEEDUP_FLOORS",
    "PAPER_SPEC",
    "git_sha",
    "run_benchmarks",
    "write_report",
    "check_regressions",
]

#: The paper's prototype region: Linux kernel .text, 1,472 cells at 2 KB.
PAPER_SPEC = HeatMapSpec(
    base_address=0xC0008000, region_size=3_013_284, granularity=2048
)

#: Minimum acceptable vectorized-over-reference speedup per kernel.
#: ``--check`` fails the run when any kernel lands below its floor.
#: Floors come from the PR acceptance criteria, set conservatively
#: below the smoke-mode measurements (CI gates in smoke mode): the
#: BLAS-bound batch kernels measure 150-1500x full / >100x smoke, so
#: 50x trips on any real regression without flaking on machine noise;
#: the fused fleet path and the end-to-end pipeline were ratcheted
#: when the fused kernel landed.
SPEEDUP_FLOORS = {
    "count_cells": 3.0,
    "project_batch": 50.0,
    "reconstruct_batch": 50.0,
    "log_density_batch": 5.0,
    "responsibilities_batch": 50.0,
    "fleet_score_batch": 25.0,
    "train_detect_e2e": 30.0,
}
DEFAULT_SPEEDUP_FLOOR = 1.0


@dataclass(frozen=True)
class BenchResult:
    """One row of ``BENCH_kernels.json``."""

    kernel: str
    n: int
    wall_s: float
    reference_wall_s: float
    speedup_vs_reference: float
    git_sha: str


def git_sha() -> str:
    """The current commit (short), or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _time_vectorized(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time with one warmup call (BLAS spin-up)."""
    fn()
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _time_reference(fn: Callable[[], object]) -> float:
    """Single-shot wall time — the scalar oracle needs no warmup and is
    too slow to repeat."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _result(
    kernel: str,
    n: int,
    vectorized_s: float,
    reference_s: float,
    sha: str,
) -> BenchResult:
    return BenchResult(
        kernel=kernel,
        n=n,
        wall_s=vectorized_s,
        reference_wall_s=reference_s,
        speedup_vs_reference=(
            reference_s / vectorized_s if vectorized_s > 0 else float("inf")
        ),
        git_sha=sha,
    )


# ----------------------------------------------------------------------
# Individual kernel benches
# ----------------------------------------------------------------------
def _bench_count_cells(n: int, repeats: int, sha: str, rng) -> BenchResult:
    burst = synthetic_burst(
        rng,
        n,
        base_address=PAPER_SPEC.base_address,
        region_size=PAPER_SPEC.region_size,
        in_region_fraction=0.95,
    )
    kwargs = dict(
        base_address=PAPER_SPEC.base_address,
        region_size=PAPER_SPEC.region_size,
        shift=PAPER_SPEC.shift,
        num_cells=PAPER_SPEC.num_cells,
    )
    vec = kernels.backend_module("vectorized")
    ref = kernels.backend_module("reference")
    vec_s = _time_vectorized(
        lambda: vec.count_cells(burst.addresses, burst.weights, **kwargs), repeats
    )
    ref_s = _time_reference(
        lambda: ref.count_cells(burst.addresses, burst.weights, **kwargs)
    )
    return _result("count_cells", n, vec_s, ref_s, sha)


def _pca_fixture(n: int, rng):
    num_cells = PAPER_SPEC.num_cells
    rank = 9  # the paper keeps 9 eigenmemories
    mean = rng.random(num_cells) * 1e4
    basis, _ = np.linalg.qr(rng.standard_normal((num_cells, rank)))
    components = basis.T
    matrix = mean + rng.standard_normal((n, num_cells)) * 100.0
    weights = rng.standard_normal((n, rank)) * 50.0
    return matrix, mean, components, weights


def _bench_project(n: int, repeats: int, sha: str, rng) -> BenchResult:
    matrix, mean, components, _ = _pca_fixture(n, rng)
    vec = kernels.backend_module("vectorized")
    ref = kernels.backend_module("reference")
    vec_s = _time_vectorized(
        lambda: vec.project_batch(matrix, mean, components), repeats
    )
    ref_s = _time_reference(lambda: ref.project_batch(matrix, mean, components))
    return _result("project_batch", n, vec_s, ref_s, sha)


def _bench_reconstruct(n: int, repeats: int, sha: str, rng) -> BenchResult:
    _, mean, components, weights = _pca_fixture(n, rng)
    vec = kernels.backend_module("vectorized")
    ref = kernels.backend_module("reference")
    vec_s = _time_vectorized(
        lambda: vec.reconstruct_batch(weights, mean, components), repeats
    )
    ref_s = _time_reference(
        lambda: ref.reconstruct_batch(weights, mean, components)
    )
    return _result("reconstruct_batch", n, vec_s, ref_s, sha)


def _gmm_fixture(n: int, rng):
    dim, num_components = 9, 5  # the paper's L' = 9, J = 5
    means = rng.standard_normal((num_components, dim)) * 4.0
    factors = rng.standard_normal((num_components, dim, dim)) * 0.3
    covariances = factors @ factors.transpose(0, 2, 1) + 0.5 * np.eye(dim)
    cholesky_factors = np.linalg.cholesky(covariances)
    weights = rng.dirichlet(np.ones(num_components))
    data = rng.standard_normal((n, dim)) * 4.0
    return data, weights, means, cholesky_factors


def _bench_log_density(n: int, repeats: int, sha: str, rng) -> BenchResult:
    data, weights, means, chols = _gmm_fixture(n, rng)
    vec = kernels.backend_module("vectorized")
    ref = kernels.backend_module("reference")
    vec_s = _time_vectorized(
        lambda: vec.log_density_batch(data, weights, means, chols), repeats
    )
    ref_s = _time_reference(
        lambda: ref.log_density_batch(data, weights, means, chols)
    )
    return _result("log_density_batch", n, vec_s, ref_s, sha)


def _bench_responsibilities(n: int, repeats: int, sha: str, rng) -> BenchResult:
    data, weights, means, chols = _gmm_fixture(n, rng)
    vec = kernels.backend_module("vectorized")
    ref = kernels.backend_module("reference")
    vec_s = _time_vectorized(
        lambda: vec.responsibilities_batch(data, weights, means, chols), repeats
    )
    ref_s = _time_reference(
        lambda: ref.responsibilities_batch(data, weights, means, chols)
    )
    return _result("responsibilities_batch", n, vec_s, ref_s, sha)


def _context_fixture(rng, syscall_dim: int = 12, num_contexts: int = 8,
                     hyperperiod: int = 10):
    """Second-modality model arrays at the serve layer's shapes."""
    centers = rng.random((num_contexts, syscall_dim)) * 40.0
    scales = rng.random(num_contexts) * 3.0 + 0.5
    phase_means = rng.random((hyperperiod, syscall_dim)) * 40.0
    return centers, scales, phase_means


def _fleet_fixture(n: int, rng):
    """One padded shard batch: MHM vectors + both models' arrays."""
    matrix, mean, components, _ = _pca_fixture(n, rng)
    _, weights, means, chols = _gmm_fixture(n, rng)
    centers, scales, phase_means = _context_fixture(rng)
    syscalls = rng.integers(0, 60, size=(n, centers.shape[1])).astype(
        np.float64
    )
    phases = np.arange(n, dtype=np.int64) % len(phase_means)
    return dict(
        matrix=matrix,
        mean=mean,
        components=components,
        weights=weights,
        means=means,
        cholesky_factors=chols,
        syscalls=syscalls,
        centers=centers,
        scales=scales,
        phase_means=phase_means,
        phases=phases,
    )


def _fused_call(module, fx: dict, dtype: str):
    return module.fleet_score_batch(
        fx["matrix"],
        fx["mean"],
        fx["components"],
        fx["weights"],
        fx["means"],
        fx["cholesky_factors"],
        pad_to=32,
        dtype=dtype,
        syscalls=fx["syscalls"],
        centers=fx["centers"],
        scales=fx["scales"],
        phase_means=fx["phase_means"],
        phases=fx["phases"],
    )


def _bench_fleet_score(
    n: int, repeats: int, sha: str, rng
) -> tuple[BenchResult, dict]:
    """The fused cross-device hot path, plus the fleet-throughput and
    float32-accuracy extras for the report payload.

    Throughput is quoted as devices/sec and as devices sustainable at
    the paper's 10 ms monitoring interval (each device contributes one
    row per interval, so devices-at-10ms = rows/sec x 0.01).
    """
    fx = _fleet_fixture(n, rng)
    vec = kernels.backend_module("vectorized")
    ref = kernels.backend_module("reference")
    vec_s = _time_vectorized(lambda: _fused_call(vec, fx, "float64"), repeats)
    ref_s = _time_reference(lambda: _fused_call(ref, fx, "float64"))
    f32_s = _time_vectorized(lambda: _fused_call(vec, fx, "float32"), repeats)
    oracle_d, oracle_c, _ = ref.fleet_score_batch(
        fx["matrix"], fx["mean"], fx["components"], fx["weights"],
        fx["means"], fx["cholesky_factors"], pad_to=32, dtype="float64",
        syscalls=fx["syscalls"], centers=fx["centers"], scales=fx["scales"],
        phase_means=fx["phase_means"], phases=fx["phases"],
    )
    fast_d, fast_c, _ = _fused_call(vec, fx, "float32")

    def throughput(wall_s: float) -> dict:
        rate = n / wall_s if wall_s > 0 else float("inf")
        return {
            "wall_s": wall_s,
            "devices_per_sec": rate,
            "devices_per_10ms_interval": rate * 0.01,
        }

    extras = {
        "batch_rows": n,
        "pad_to": 32,
        "float64": throughput(vec_s),
        "float32": {
            **throughput(f32_s),
            "max_ulp_error_log_density": float(
                kernels.float32_ulp_error(fast_d, oracle_d).max()
            ),
            "max_ulp_error_context_score": float(
                kernels.float32_ulp_error(fast_c, oracle_c).max()
            ),
            "ulp_budget": kernels.FLOAT32_ULP_BUDGET,
        },
    }
    return _result("fleet_score_batch", n, vec_s, ref_s, sha), extras


def _bench_end_to_end(smoke: bool, sha: str, seed: int) -> BenchResult:
    """Train + detect on fixed seeds under each backend.

    The MHM traces are collected once (simulation counting is already
    covered by the ``count_cells`` entry); the timed section is the
    learning pipeline — PCA fit/projection, multi-restart EM, threshold
    calibration — plus scoring a small fleet of devices through the
    fused fleet path: each device contributes one scenario-length
    fresh normal window (EXPERIMENTS.md scenarios span 400-500
    intervals), stacked and scored in pad_to=32 chunks, the serving
    layer's batch shape.  That exercises every floating-point kernel
    end-to-end at the online phase's real proportions — training is a
    one-off per profile, scoring repeats per device per interval.
    """
    intervals = 60 if smoke else 120
    num_devices = 2 if smoke else 4
    window = 240 if smoke else 450
    data = collect_training_data(
        PlatformConfig(),
        runs=1,
        intervals_per_run=intervals,
        validation_intervals=intervals // 2,
        base_seed=100 + seed,
    )
    # Ingest (heat-map series → float64 matrix) happens outside the
    # timed section: it is trace plumbing, not a floating-point kernel,
    # and both backends would pay it identically.
    fleet_matrix = np.vstack(
        [
            collect_training_data(
                PlatformConfig(),
                runs=1,
                intervals_per_run=window,
                validation_intervals=1,
                base_seed=900 + seed + device,
            ).training.matrix()
            for device in range(num_devices)
        ]
    )

    def train_and_detect() -> np.ndarray:
        detector = MhmDetector(
            num_gaussians=3 if smoke else 5,
            em_restarts=1 if smoke else 2,
            seed=seed,
        ).fit(data.training, data.validation)
        scorer = kernels.FleetScorer.from_detectors(detector)
        scores = scorer.score(fleet_matrix, pad_to=32)
        return detector.thresholds.flag_series(
            scores.log_densities, p_percent=1.0
        )

    with kernels.use_backend("vectorized"):
        vec_s = _time_vectorized(train_and_detect, repeats=1)
    with kernels.use_backend("reference"):
        ref_s = _time_reference(train_and_detect)
    total_rows = data.num_training + len(fleet_matrix)
    return _result("train_detect_e2e", total_rows, vec_s, ref_s, sha)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_benchmarks(
    smoke: bool = False, repeats: int = 3, seed: int = 2015
) -> tuple[list[BenchResult], dict]:
    """Time every kernel (both backends) and the end-to-end pipeline.

    Returns ``(results, extras)``: the per-kernel rows plus the
    fleet-throughput / float32-accuracy payload measured alongside the
    ``fleet_score_batch`` row.
    """
    rng = np.random.default_rng(seed)
    sha = git_sha()
    sizes = {
        "count_cells": 50_000 if smoke else 1_000_000,
        "project_batch": 32 if smoke else 256,
        "reconstruct_batch": 32 if smoke else 256,
        "log_density_batch": 400 if smoke else 3_000,
        "responsibilities_batch": 400 if smoke else 1_000,
        "fleet_score_batch": 64 if smoke else 512,
    }
    fleet_result, fleet_extras = _bench_fleet_score(
        sizes["fleet_score_batch"], repeats, sha, rng
    )
    results = [
        _bench_count_cells(sizes["count_cells"], repeats, sha, rng),
        _bench_project(sizes["project_batch"], repeats, sha, rng),
        _bench_reconstruct(sizes["reconstruct_batch"], repeats, sha, rng),
        _bench_log_density(sizes["log_density_batch"], repeats, sha, rng),
        _bench_responsibilities(sizes["responsibilities_batch"], repeats, sha, rng),
        fleet_result,
        _bench_end_to_end(smoke, sha, seed),
    ]
    return results, {"fleet_throughput": fleet_extras}


def check_regressions(results: list[BenchResult]) -> list[str]:
    """Kernels below their speedup floor (empty list = gate passes)."""
    failures = []
    for result in results:
        floor = SPEEDUP_FLOORS.get(result.kernel, DEFAULT_SPEEDUP_FLOOR)
        if result.speedup_vs_reference < floor:
            failures.append(
                f"{result.kernel}: {result.speedup_vs_reference:.2f}x "
                f"< required {floor:.1f}x (n={result.n}, "
                f"vectorized {result.wall_s:.4f}s vs "
                f"reference {result.reference_wall_s:.4f}s)"
            )
    return failures


def write_report(
    path,
    results: list[BenchResult],
    smoke: bool,
    repeats: int,
    extras: dict | None = None,
) -> dict:
    """Write ``BENCH_kernels.json`` and return the payload."""
    payload = {
        "schema_version": 1,
        "git_sha": git_sha(),
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "default_backend": kernels.DEFAULT_BACKEND,
        "speedup_floors": {
            r.kernel: SPEEDUP_FLOORS.get(r.kernel, DEFAULT_SPEEDUP_FLOOR)
            for r in results
        },
        "results": [asdict(r) for r in results],
    }
    if extras:
        payload.update(extras)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload

"""Scenario: SMM-style absence attack.

Chevalier et al. (arXiv 1803.02700) study attackers that run in System
Management Mode: their code lives in SMRAM, which no bus-level monitor
of the kernel text region ever sees.  The simulated attack installs an
SMI handler on a housekeeping kernel path — the classic entry point is
the idle loop — that executes its own SMRAM-resident body and then
*chains to the original handler*, exactly like a real SMM shadow
resumes the preempted kernel.  The monitored region therefore sees the
original path's fetches, unchanged; the handler's own fetches land in
SMRAM and are dropped by the Memometer's address filter.  Dispatch,
latency and jitter are untouched.

This is the corpus's *documented known-miss*: the attack's entire
footprint is outside the monitored window, so every detector column
misses it by construction, and the conformance matrix pins that blind
spot so a future absence-sensitive modality (per-cell "expected
activity" floors, SMRAM bus probes) has a ready-made oracle.

Reverting uninstalls the SMI handler and restores the original
service object.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..sim.kernel.footprint import CompiledFootprint, FootprintStep
from ..sim.kernel.syscalls import KernelService
from .base import Attack, AttackError

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.platform import Platform

__all__ = ["SMRAM_BASE", "SmmShadowAttack"]

#: TSEG-style SMRAM segment: far below the kernel text window
#: (0xC0008000+) and module space (0xBF000000+), so every handler
#: fetch is dropped by the Memometer's address filter.
SMRAM_BASE = 0x44A0_0000


class SmmShadowAttack(Attack):
    """Shadow a kernel code path with an SMRAM-resident SMI handler.

    Parameters
    ----------
    target:
        Registered kernel service the handler piggybacks on (default
        ``kernel.idle`` — SMM is conventionally entered from idle).
    handler_size:
        Size of the SMRAM-resident handler's text.
    smram_base:
        Base address of the handler; must lie outside the monitored
        region (the default is a TSEG-style segment).
    """

    name = "smm-shadow"

    expected_outcomes = {
        # The documented known-miss: the handler's fetches never enter
        # the monitored window, and the original path still runs.
        "gmm-alarm": "miss",
        "gmm-interval": "miss",
        "drift": "no-drift",
        "fpr-budget": "within-budget",
        # Still the all-miss row: the SMI handler issues no syscalls,
        # so the second modality is as blind as the first.
        "context": "miss",
    }

    expected_notes = {
        "context": (
            "Known blind spot in both modalities: the handler executes "
            "entirely inside SMRAM and issues no syscalls, so neither "
            "memory traffic nor syscall distributions shift.  Tracked "
            "by ROADMAP 'Close the SMM blind spot with an "
            "absence-sensitive modality'."
        ),
    }

    def __init__(
        self,
        target: str = "kernel.idle",
        handler_size: int = 8 * 1024,
        smram_base: int = SMRAM_BASE,
    ):
        if handler_size <= 0:
            raise ValueError("handler_size must be positive")
        if smram_base <= 0:
            raise ValueError("smram_base must be positive")
        self.target = target
        self.handler_size = handler_size
        self.smram_base = smram_base
        self._original: Optional[KernelService] = None

    def inject(self, platform: "Platform") -> None:
        if self._original is not None:
            raise AttackError("SMM shadow is already installed")
        kernel = platform.kernel
        if self.target not in kernel.services:
            raise AttackError(f"no kernel service {self.target!r} to shadow")
        spec = platform.spec
        if spec.base_address <= self.smram_base < spec.base_address + spec.region_size:
            raise AttackError(
                "smram_base lies inside the monitored region — that is not SMRAM"
            )
        original = kernel.services.get(self.target)
        handler = kernel.compiler.compile(
            [
                FootprintStep(
                    function=None,
                    address=self.smram_base,
                    size=self.handler_size,
                    iterations=2.0,
                    coverage=0.9,
                )
            ]
        )
        # The SMI handler body runs first (SMRAM, invisible), then the
        # original path exactly as before: same visible fetches, same
        # latency and jitter.
        original_fp = original.footprint
        combined = CompiledFootprint(
            addresses=np.concatenate([handler.addresses, original_fp.addresses]),
            step_lengths=np.concatenate(
                [handler.step_lengths, original_fp.step_lengths]
            ),
            mean_iterations=np.concatenate(
                [handler.mean_iterations, original_fp.mean_iterations]
            ),
            jitters=np.concatenate([handler.jitters, original_fp.jitters]),
        )
        shadow = KernelService(
            name=original.name,
            footprint=combined,
            latency_ns=original.latency_ns,
            latency_jitter=original.latency_jitter,
        )
        self._original = kernel.services.replace(self.target, shadow)

    def revert(self, platform: "Platform") -> None:
        """Uninstall the SMI handler: the original service runs again."""
        if self._original is None:
            raise AttackError("SMM shadow is not installed")
        platform.kernel.services.replace(self.target, self._original)
        self._original = None

"""Scenario: slow-drift exfiltration.

The adversary the serving layer's alarm rule cannot see: a resident
payload that leaks data through ordinary system calls at a *fractional*
per-interval rate, ramping so slowly that flagged intervals stay
isolated — no run of consecutive sub-θ_p verdicts ever reaches the
``consecutive_for_alarm`` alarm — yet the *distribution* of densities
shifts, which is exactly the failure mode the
:class:`~repro.serve.drift.DriftMonitor` exists to catch (a sustained
sub-θ rate well above the calibrated p-percent budget).

The pump fires once per monitoring interval; interval *k* since
injection issues ``pump_count(k)`` extra system calls, where the
counts are the integer increments of the accumulated fractional rate

    rate(k) = min(start_rate + ramp_per_interval · k, max_rate)
    pump_count(k) = floor(Σ_{j<=k} rate(j)) − floor(Σ_{j<k} rate(j))

Because ``rate`` never exceeds ``max_rate``, the interval-over-interval
activity is bounded by construction — ``pump_count(k) <=
ceil(max_rate)`` for every *k*, and the long-run pump frequency
approaches ``max_rate`` calls per interval.  The "slow" in slow drift
is a class invariant the property suite pins, not a tuning accident.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from .base import Attack, AttackError

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import EventHandle
    from ..sim.platform import Platform

__all__ = ["SlowDriftExfiltration"]


class SlowDriftExfiltration(Attack):
    """Exfiltration pump that ramps its syscall rate slowly.

    Parameters
    ----------
    syscall:
        System call the pump leaks through (default ``read`` — it
        blends into the task set's dominant traffic).
    start_rate:
        Pump calls per interval right after injection (may be < 1:
        the pump then fires only every ``1/start_rate`` intervals).
    ramp_per_interval:
        Per-interval increase of the rate.
    max_rate:
        Saturation level of the ramp; sized to shift the density
        distribution without producing consecutive θ_p violations.
    core:
        Monitored core the payload runs on.
    """

    name = "slow-drift"

    expected_outcomes = {
        "gmm-alarm": "miss",  # never enough consecutive sub-θ intervals
        "gmm-interval": "detect",  # ...but the raw flag rate exceeds budget
        "drift": "drift-flag",  # the DriftMonitor is the designed catcher
        "fpr-budget": "within-budget",
        # The exfiltration loop's extra reads bias the phase residuals.
        "context": "detect",
    }

    def __init__(
        self,
        syscall: str = "read",
        start_rate: float = 0.125,
        ramp_per_interval: float = 0.01,
        max_rate: float = 0.4,
        core: int = 0,
    ):
        if start_rate < 0:
            raise ValueError("start_rate must be non-negative")
        if ramp_per_interval < 0:
            raise ValueError("ramp_per_interval must be non-negative")
        if max_rate < start_rate:
            raise ValueError("max_rate must be >= start_rate")
        if core < 0:
            raise ValueError("core must be non-negative")
        self.syscall = syscall
        self.start_rate = start_rate
        self.ramp_per_interval = ramp_per_interval
        self.max_rate = max_rate
        self.core = core
        self._handle: Optional["EventHandle"] = None
        self._elapsed = 0

    def rate(self, k: int) -> float:
        """Target pump rate (calls/interval) in the ``k``-th interval."""
        if k < 0:
            raise ValueError("interval index must be non-negative")
        return min(self.start_rate + self.ramp_per_interval * k, self.max_rate)

    def pump_count(self, k: int) -> int:
        """Pump invocations in the ``k``-th interval since injection.

        Pure: the integer increment of the accumulated rate.  The
        property suite pins ``0 <= pump_count(k) <= ceil(max_rate)``
        and that the cumulative count never exceeds the accumulated
        rate budget.
        """
        if k < 0:
            raise ValueError("interval index must be non-negative")
        before = sum(self.rate(j) for j in range(k))
        return math.floor(before + self.rate(k)) - math.floor(before)

    def inject(self, platform: "Platform") -> None:
        if self._handle is not None:
            raise AttackError("slow-drift pump is already running")
        if self.syscall not in platform.kernel.syscall_table:
            raise AttackError(f"no syscall {self.syscall!r} to pump through")
        self._elapsed = 0
        # The pump wakes every monitoring interval starting now; most
        # wakes issue no call at all until the accumulated rate crosses
        # the next integer.
        self._handle = platform.sim.schedule_periodic(
            platform.config.interval_ns,
            self._pump,
            platform.kernel,
            start_at=platform.now,
        )

    def _pump(self, kernel) -> None:
        count = self.pump_count(self._elapsed)
        self._elapsed += 1
        for _ in range(count):
            kernel.invoke_syscall(self.syscall, core=self.core)

    def revert(self, platform: "Platform") -> None:
        """The payload's command channel closes; the pump stops."""
        if self._handle is None:
            raise AttackError("slow-drift pump is not running")
        platform.sim.cancel(self._handle)
        self._handle = None

"""Scenario: interrupt storm / interference anomaly.

The paper's Limitation section (5.5) treats aperiodic interrupt load
as a source of *legitimate* unpredictability; HeatSense-style work
(arXiv 2504.11421) flips that around: a compromised or malfunctioning
peripheral that floods the monitored core with receive interrupts is
itself an anomaly — a denial-of-service on the schedule that shows up
as kernel-path contention long before any deadline is missed.

The attack arms a rogue periodic interrupt source: every
``1/rate_hz`` seconds it forces a train of ``burst`` invocations of a
housekeeping kernel path (default ``kernel.net_rx`` — IRQ entry,
softirq, protocol handlers), all inside the monitored region.  At the
default 2 kHz × 3 packets that is ~60 extra net-RX invocations per
10 ms monitoring interval, an overwhelming composition shift the GMM
flags immediately.  Reverting disarms the source (the flood stops),
so fleet injection schedules can exercise recovery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .base import Attack, AttackError

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import EventHandle
    from ..sim.platform import Platform

__all__ = ["InterruptStormAttack"]


class InterruptStormAttack(Attack):
    """A rogue device floods the monitored core with interrupts.

    Parameters
    ----------
    rate_hz:
        Interrupt-train rate of the storm (deterministic, not Poisson —
        a jammed device asserts its line on a timer).
    burst:
        Kernel-service invocations per train (packets per interrupt).
    service:
        The kernel path each packet runs (default the net-RX path used
        by the legitimate :class:`~repro.sim.devices.NetworkDevice`).
    core:
        Monitored core that takes the interrupts.
    """

    name = "interrupt-storm"

    expected_outcomes = {
        "gmm-alarm": "detect",
        "gmm-interval": "detect",
        "drift": "drift-flag",
        "fpr-budget": "within-budget",
        # Interrupt pressure perturbs memory traffic, not the task
        # set's syscall mix — the MHM modality owns this scenario.
        "context": "miss",
    }

    def __init__(
        self,
        rate_hz: float = 2_000.0,
        burst: int = 3,
        service: str = "kernel.net_rx",
        core: int = 0,
    ):
        if rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        if core < 0:
            raise ValueError("core must be non-negative")
        self.rate_hz = rate_hz
        self.burst = burst
        self.service = service
        self.core = core
        self._handle: Optional["EventHandle"] = None

    @property
    def period_ns(self) -> int:
        """Gap between interrupt trains (integer ns, at least 1)."""
        return max(1, int(round(1e9 / self.rate_hz)))

    def inject(self, platform: "Platform") -> None:
        if self._handle is not None:
            raise AttackError("interrupt storm is already active")
        if self.service not in platform.kernel.services:
            raise AttackError(f"no kernel service {self.service!r} to storm")
        self._handle = platform.sim.schedule_periodic(
            self.period_ns, self._on_interrupt, platform.kernel
        )

    def _on_interrupt(self, kernel) -> None:
        for _ in range(self.burst):
            kernel.run_service(self.service, core=self.core)

    def revert(self, platform: "Platform") -> None:
        """Disarm the rogue source; the flood stops at once."""
        if self._handle is None:
            raise AttackError("interrupt storm is not active")
        platform.sim.cancel(self._handle)
        self._handle = None

"""Scenario 2: shellcode execution (Figure 8).

The paper injects the shell-storm #669 Linux/ARM shellcode into the
``bitcount`` application.  That shellcode disables ASLR by writing
``0`` to ``/proc/sys/kernel/randomize_va_space`` and then spawns a
shell — killing its host in the process.  "This shellcode was easily
detectable because the shellcode eventually kills its original host";
the MHM composition changes persistently once bitcount's periodic jobs
disappear from the schedule.

The simulated payload performs the same observable sequence:

1. the sysctl write (open → write → close through the procfs handlers,
   flipping the kernel's ASLR state);
2. fork + execve of ``/bin/sh`` (an aperiodic process that then just
   blocks);
3. ``exit_group`` of the host task, which is withdrawn from the
   scheduler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.kernel.aslr import RANDOMIZE_VA_SPACE
from .base import Attack, AttackError

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.platform import Platform

__all__ = ["ShellcodeAttack"]


class ShellcodeAttack(Attack):
    """ASLR-disabling, shell-spawning shellcode in a host application.

    Parameters
    ----------
    host:
        Name of the task the shellcode was injected into (paper:
        ``bitcount``).
    disable_aslr:
        Whether the payload performs the sysctl write (shell-storm
        #669's signature action).
    spawn_shell:
        Whether the payload execs a shell (killing the host); nearly
        every real shellcode does, which is the paper's point.
    """

    name = "shellcode"

    expected_outcomes = {
        "gmm-alarm": "detect",
        "gmm-interval": "detect",
        "drift": "drift-flag",
        "fpr-budget": "within-budget",
        # Killing bitcount removes its syscalls from every interval.
        "context": "detect",
    }

    def __init__(
        self,
        host: str = "bitcount",
        disable_aslr: bool = True,
        spawn_shell: bool = True,
    ):
        self.host = host
        self.disable_aslr = disable_aslr
        self.spawn_shell = spawn_shell
        self.executed = False

    def inject(self, platform: "Platform") -> None:
        if self.executed:
            raise AttackError("shellcode already executed")
        if self.host not in platform.all_task_names:
            raise AttackError(f"host task {self.host!r} is not running")
        if self.disable_aslr:
            platform.kernel.sysctl_write(RANDOMIZE_VA_SPACE, 0)
        if self.spawn_shell:
            platform.processes.spawn_shell()
            # Spawning the shell replaces the host's image: the host's
            # periodic jobs are gone for good.
            platform.processes.kill(self.host)
        self.executed = True

"""Scenario 1: unexpected application addition/deletion (Figure 7).

"While the MiBench benchmark applications ... are running, we launched
another application, qsort (exec time: 6 ms, period: 30 ms)."  The
abnormality the detector picks up is two-fold: the kernel facilities
used to launch (and later tear down) the process, and — persistently —
the new composition of kernel activity once qsort's periodic jobs join
the schedule and shift every other task's timing.

Reverting the attack kills qsort again ("qsort exited" in Figure 7),
after which densities return to the normal band.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..sim.task import TaskDefinition
from ..sim.workloads.mibench import qsort_task
from .base import Attack, AttackError

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.platform import Platform

__all__ = ["AppLaunchAttack"]


class AppLaunchAttack(Attack):
    """Launch an unexpected (but otherwise benign) periodic application.

    Parameters
    ----------
    task:
        The application to launch; defaults to the paper's qsort
        (6 ms / 30 ms).
    start_delay_ns:
        Delay between the exec and the first periodic job; defaults to
        one period (process initialisation).
    """

    name = "app-launch"

    expected_outcomes = {
        "gmm-alarm": "detect",
        "gmm-interval": "detect",
        "drift": "drift-flag",
        "fpr-budget": "within-budget",
        # qsort's syscall mix lands far from every learned context.
        "context": "detect",
    }

    def __init__(
        self,
        task: Optional[TaskDefinition] = None,
        start_delay_ns: Optional[int] = None,
    ):
        self.task = task if task is not None else qsort_task()
        self.start_delay_ns = start_delay_ns
        self.launched = False

    def inject(self, platform: "Platform") -> None:
        if self.launched:
            raise AttackError(f"{self.task.name!r} is already launched")
        first_release = None
        if self.start_delay_ns is not None:
            first_release = platform.now + self.start_delay_ns
        platform.processes.launch(self.task, first_release_ns=first_release)
        self.launched = True

    def revert(self, platform: "Platform") -> None:
        """The rogue application exits."""
        if not self.launched:
            raise AttackError(f"{self.task.name!r} is not running")
        platform.processes.kill(self.task.name)
        self.launched = False

"""The attack corpus: the paper's scenarios plus adversarial additions.

Section 5.3's three attacks (application launch, shellcode, rootkit)
are joined by four adversaries designed to stress the detector's blind
spots — mimicry padding, slow-drift exfiltration, an interrupt storm
and an SMM-style absence attack.  Every attack declares its expected
conformance outcomes (see :mod:`repro.conformance.matrix` and
``docs/attacks.md``).
"""

from .app_launch import AppLaunchAttack
from .base import Attack, AttackError
from .interrupt_storm import InterruptStormAttack
from .mimicry import MimicryShellcodeAttack
from .rootkit import SyscallHijackRootkit
from .shellcode import ShellcodeAttack
from .slow_drift import SlowDriftExfiltration
from .smm import SmmShadowAttack

__all__ = [
    "Attack",
    "AttackError",
    "AppLaunchAttack",
    "ShellcodeAttack",
    "SyscallHijackRootkit",
    "MimicryShellcodeAttack",
    "SlowDriftExfiltration",
    "InterruptStormAttack",
    "SmmShadowAttack",
]

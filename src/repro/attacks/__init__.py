"""The paper's attack scenarios (Section 5.3)."""

from .app_launch import AppLaunchAttack
from .base import Attack, AttackError
from .rootkit import SyscallHijackRootkit
from .shellcode import ShellcodeAttack

__all__ = [
    "Attack",
    "AttackError",
    "AppLaunchAttack",
    "ShellcodeAttack",
    "SyscallHijackRootkit",
]

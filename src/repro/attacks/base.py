"""Attack abstractions.

Each attack of Section 5.3 is an object that can :meth:`~Attack.inject`
itself into a running :class:`~repro.sim.platform.Platform` at the
current simulated instant, and (when the scenario calls for it, like
qsort's exit in Figure 7) :meth:`~Attack.revert` its effect later.  The
scenario runner in :mod:`repro.pipeline.scenario` handles the timing
and the interval bookkeeping.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.platform import Platform

__all__ = ["Attack", "AttackError"]


class AttackError(RuntimeError):
    """An attack could not be injected or reverted."""


class Attack(abc.ABC):
    """A system-level anomaly to inject into a running platform."""

    #: Human-readable scenario name.
    name: str = "attack"

    #: Conformance declarations: detector-column name → expected outcome
    #: (see :mod:`repro.conformance.matrix`).  Every attack registered in
    #: :data:`repro.pipeline.stages.SCENARIOS` must declare one outcome
    #: per registered detector column — the matrix build refuses to run
    #: otherwise, so a new attack cannot land without stating how each
    #: detector is expected to fare against it (detect / known-miss /
    #: drift-flag / FPR budget).
    expected_outcomes: Mapping[str, str] = {}

    #: Optional per-cell annotations: detector-column name → free-text
    #: note carried into the emitted matrix cell.  Use it to point a
    #: *declared miss* at the roadmap item that would close it, so the
    #: known-miss ledger stays actionable instead of silently accepted.
    expected_notes: Mapping[str, str] = {}

    @abc.abstractmethod
    def inject(self, platform: "Platform") -> None:
        """Carry out the attack at ``platform.now``."""

    def revert(self, platform: "Platform") -> None:
        """Undo the attack (optional; e.g. the launched app exits)."""
        raise AttackError(f"attack {self.name!r} cannot be reverted")

    @property
    def reversible(self) -> bool:
        """Whether :meth:`revert` is implemented."""
        return type(self).revert is not Attack.revert

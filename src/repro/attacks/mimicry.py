"""Scenario: mimicry shellcode.

The classic evasion of anomaly detectors (Wagner & Soto's mimicry
attacks, applied here to the MHM's eigenmemory projection): shellcode
that compromises a host task but, instead of spawning a shell and
killing its host (the paper's easily-detected Scenario 2), stays
resident and pads its own kernel activity to *look like the victim*.

Two design rules make it stealthy by construction:

* **mix mimicry** — every system call the payload issues is drawn from
  the victim task's own syscall mix, apportioned proportionally
  (largest-remainder), so the *direction* of the MHM perturbation is
  the victim's own eigenmemory projection;
* **footprint envelope** — the payload's padding rate is capped at
  ``budget_fraction`` of the victim's mean per-interval kernel
  invocations (:meth:`MimicryShellcodeAttack.victim_envelope`).  Since
  the kernel emits whole service invocations, a sub-call rate is
  realised by *duty cycling*: one padded call every
  :meth:`cadence_intervals` monitoring intervals, so most intervals
  see no padding at all and the rest see a single in-mix call — inside
  the jitter band the GMM was trained to absorb.  All planning methods
  are pure functions of the task definition; the property suite proves
  the realised padding rate can never exceed the envelope.

The expected conformance outcome is the uncomfortable one: every
detector column misses it.  The matrix exists precisely to keep that
blind spot documented rather than discovered.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

from ..sim.task import TaskDefinition
from .base import Attack, AttackError

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import EventHandle
    from ..sim.platform import Platform

__all__ = ["MimicryShellcodeAttack"]


class MimicryShellcodeAttack(Attack):
    """Resident shellcode that pads its footprint to match its host.

    Parameters
    ----------
    host:
        Task the shellcode was injected into (default ``sha`` — the
        busiest syscall mix, hence the roomiest envelope to hide in).
    budget_fraction:
        Fraction of the victim's mean per-interval kernel invocations
        the payload may add (the footprint envelope).  The default is
        deliberately tiny: mimicry trades bandwidth for stealth.
    cycle_length:
        Length of the repeating pump cycle the victim's syscall mix is
        apportioned over (composition granularity).
    core:
        Monitored core the payload runs on.
    """

    name = "mimicry-shellcode"

    expected_outcomes = {
        "gmm-alarm": "miss",  # designed evasion: padding stays in-envelope
        "gmm-interval": "miss",
        "drift": "no-drift",
        "fpr-budget": "within-budget",
        # The padding keeps each *interval* in the clean envelope, but
        # its per-interval bias accumulates in the context modality's
        # phase-conditional residual cumsum — the designed catcher.
        "context": "detect",
    }

    def __init__(
        self,
        host: str = "sha",
        budget_fraction: float = 0.015,
        cycle_length: int = 8,
        core: int = 0,
    ):
        if not 0.0 < budget_fraction <= 1.0:
            raise ValueError("budget_fraction must be in (0, 1]")
        if cycle_length < 1:
            raise ValueError("cycle_length must be >= 1")
        if core < 0:
            raise ValueError("core must be non-negative")
        self.host = host
        self.budget_fraction = budget_fraction
        self.cycle_length = cycle_length
        self.core = core
        self._handle: Optional["EventHandle"] = None
        self._cycle: List[str] = []
        self._cursor = 0

    # ------------------------------------------------------------------
    # Pure planning (property-tested)
    # ------------------------------------------------------------------
    @staticmethod
    def victim_envelope(task: TaskDefinition, interval_ns: int) -> float:
        """The victim's mean kernel-service invocations per interval."""
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        calls_per_job = sum(use.count for use in task.syscalls)
        return calls_per_job * (interval_ns / task.period_ns)

    def padding_rate(self, task: TaskDefinition, interval_ns: int) -> float:
        """The envelope: padded calls per interval the payload may add."""
        return self.budget_fraction * self.victim_envelope(task, interval_ns)

    def cadence_intervals(self, task: TaskDefinition, interval_ns: int) -> int:
        """Monitoring intervals between consecutive padded calls.

        ``ceil(1 / padding_rate)``, so the realised rate ``1/cadence``
        never exceeds the envelope (the property suite pins this).
        Returns ``0`` when the victim is too quiet to hide behind at
        all (zero envelope): the payload stays dormant.
        """
        rate = self.padding_rate(task, interval_ns)
        if rate <= 0.0:
            return 0
        return max(1, math.ceil(1.0 / rate))

    def plan(self, task: TaskDefinition) -> List[str]:
        """The repeating pump cycle: syscall names, victim-proportioned.

        ``cycle_length`` pump slots are apportioned across the victim's
        syscall mix by largest remainder, so the padding's composition
        matches the victim's as closely as whole invocations allow.
        Deterministic (ties broken by declaration order).
        """
        if not task.syscalls:
            return []
        total = sum(use.count for use in task.syscalls)
        if total == 0:
            return []
        shares = [
            (use.name, self.cycle_length * use.count / total)
            for use in task.syscalls
        ]
        counts = {name: int(share) for name, share in shares}
        remainder = self.cycle_length - sum(counts.values())
        by_fraction = sorted(
            shares, key=lambda item: item[1] - int(item[1]), reverse=True
        )
        for name, _ in by_fraction[:remainder]:
            counts[name] += 1
        cycle: List[str] = []
        for use in task.syscalls:
            cycle.extend([use.name] * counts[use.name])
        return cycle

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def _find_victim(self, platform: "Platform") -> TaskDefinition:
        for task in platform.config.tasks:
            if task.name == self.host:
                return task
        raise AttackError(f"host task {self.host!r} is not in the task set")

    def inject(self, platform: "Platform") -> None:
        if self._handle is not None:
            raise AttackError("mimicry payload is already resident")
        if self.host not in platform.all_task_names:
            raise AttackError(f"host task {self.host!r} is not running")
        victim = self._find_victim(platform)
        interval_ns = platform.config.interval_ns
        cadence = self.cadence_intervals(victim, interval_ns)
        self._cycle = self.plan(victim) if cadence else []
        self._cursor = 0
        if not self._cycle:
            # Victim too quiet to hide behind: the payload stays
            # dormant but is still "injected" (and revertible).
            self._handle = platform.sim.schedule_periodic(
                interval_ns, lambda kernel: None, platform.kernel
            )
            return
        self._handle = platform.sim.schedule_periodic(
            cadence * interval_ns,
            self._pad,
            platform.kernel,
            start_at=platform.now,
        )

    def _pad(self, kernel) -> None:
        syscall = self._cycle[self._cursor % len(self._cycle)]
        self._cursor += 1
        kernel.invoke_syscall(syscall, core=self.core)

    def revert(self, platform: "Platform") -> None:
        """The payload unloads itself (its job done) — host survives."""
        if self._handle is None:
            raise AttackError("mimicry payload is not resident")
        platform.sim.cancel(self._handle)
        self._handle = None
        self._cycle = []
        self._cursor = 0

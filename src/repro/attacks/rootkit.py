"""Scenario 3: kernel rootkit via system-call hijacking (Figures 9, 10).

The paper builds an LKM "that resembles the most representative type of
such rootkits, i.e., ones that perform system call hijacking [Phrack
52]": it redirects ``read`` by patching the system-call table; the
malicious handler just inspects the buffer returned by the original
handler.

Reproduced here in all its observable parts:

* **module load** — the ``init_module`` path runs inside the monitored
  kernel text and produces the big, easily detected spike at "Rootkit
  Launched";
* **the hijack itself** — the wrapper lives in module space, *outside*
  the monitored region, so its own fetches never reach the MHM;
* **the stealthy aftermath** — the wrapper chains to the original
  ``read`` handler (traffic volume stays normal: Figure 9) but adds a
  per-call delay, and those accumulated delays shift the timing of
  read-heavy tasks — sha above all — which weakly and intermittently
  perturbs the MHM composition (Figure 10).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.kernel.footprint import FootprintStep
from ..sim.kernel.syscalls import KernelService
from .base import Attack, AttackError

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.platform import Platform

__all__ = ["SyscallHijackRootkit"]


class SyscallHijackRootkit(Attack):
    """LKM rootkit that hijacks a system call.

    Parameters
    ----------
    syscall:
        Table entry to patch (paper: ``read``).
    extra_latency_ns:
        CPU time the malicious wrapper adds per call (reading the
        returned buffer).  This is the only channel through which the
        post-load rootkit perturbs the MHMs.
    module_size:
        Size of the loaded module's text in module space.
    module_name:
        Name under which the LKM registers.
    """

    name = "rootkit-syscall-hijack"

    expected_outcomes = {
        # The insmod spike is one loud interval; the post-hijack
        # perturbation is weak and intermittent (Figure 10), so the raw
        # per-interval verdicts catch it while the serving layer's
        # consecutive-interval alarm does not.
        "gmm-alarm": "miss",
        "gmm-interval": "detect",
        "drift": "drift-flag",
        "fpr-budget": "within-budget",
        # The hijack adds latency, not calls: invocation *counts* stay
        # clean, so the syscall-distribution modality sees nothing.
        "context": "miss",
    }

    def __init__(
        self,
        syscall: str = "read",
        extra_latency_ns: int = 25_000,
        module_size: int = 16 * 1024,
        module_name: str = "netfilter_helper",
    ):
        if extra_latency_ns < 0:
            raise ValueError("extra_latency_ns must be non-negative")
        self.syscall = syscall
        self.extra_latency_ns = extra_latency_ns
        self.module_size = module_size
        self.module_name = module_name
        self.loaded = False

    def inject(self, platform: "Platform") -> None:
        if self.loaded:
            raise AttackError("rootkit module is already loaded")
        kernel = platform.kernel
        if self.syscall not in kernel.syscall_table:
            raise AttackError(f"no syscall {self.syscall!r} to hijack")

        # insmod: very visible in the monitored region.
        module = kernel.modules.load(
            self.module_name,
            self.module_size,
            function_names=["evil_entry", "evil_inspect_buffer", "evil_helpers"],
        )

        # The wrapper's own footprint is entirely in module space.
        wrapper_steps = [
            FootprintStep(
                function=None,
                address=fn.address,
                size=fn.size,
                iterations=2.0,
                coverage=0.8,
            )
            for fn in module.functions
        ]
        wrapper = KernelService(
            name=f"rootkit.{self.syscall}_wrapper",
            footprint=kernel.compiler.compile(wrapper_steps),
            latency_ns=max(1, self.extra_latency_ns // 2),
        )
        kernel.syscall_table.hijack(
            self.syscall, wrapper, extra_latency_ns=self.extra_latency_ns
        )
        self.loaded = True

    def revert(self, platform: "Platform") -> None:
        """rmmod: restore the table entry and unload the module."""
        if not self.loaded:
            raise AttackError("rootkit module is not loaded")
        platform.kernel.syscall_table.restore(self.syscall)
        platform.kernel.modules.unload(self.module_name)
        self.loaded = False

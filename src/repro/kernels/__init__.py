"""Hot-path kernels with switchable backends.

The pipeline's three hot loops — Memometer cell counting over
instruction-fetch traces, eigenmemory (PCA) projection of whole MHM
batches, and GMM log-density scoring (EM E-step, threshold
calibration, online detection) — are concentrated here as *kernels*
with two interchangeable backends:

``vectorized`` (default)
    Batched NumPy/BLAS implementations: one ``np.bincount`` per trace
    burst, one GEMM per MHM batch, one pass over all J mixture
    components for N samples.  This is the production path.

``reference``
    Deliberately scalar pure-Python implementations that follow the
    paper's formulas one element at a time (accumulating with
    ``math.fsum``, so they are *more* accurate than a naive loop).
    They exist as the differential-test oracle: slow, obvious,
    independently written.  ``tests/kernels/test_differential.py``
    holds the vectorized backend to the oracle — bit-identical for
    integer counting, ≤1e-9 for floating point — on hypothesis-generated
    inputs and on the end-to-end golden pipeline.

Select the backend with the ``REPRO_KERNELS`` environment variable
(``reference`` or ``vectorized``), or programmatically::

    from repro import kernels
    kernels.set_backend("reference")      # process-wide
    with kernels.use_backend("reference"):  # scoped
        ...

Every public kernel dispatches per call, so a switch takes effect
immediately.  ``repro.bench`` times each kernel under both backends
and records the speedups in ``BENCH_kernels.json``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

import numpy as np

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "KernelBackendError",
    "active_backend",
    "set_backend",
    "use_backend",
    "backend_module",
    "count_cells",
    "project_batch",
    "reconstruct_batch",
    "component_log_densities",
    "log_density_batch",
    "responsibilities_batch",
    "nearest_context_batch",
    "logsumexp",
    "safe_log_weights",
]

#: Recognised backend names.
BACKENDS = ("reference", "vectorized")
#: Environment variable that selects the backend for a process.
ENV_VAR = "REPRO_KERNELS"
#: Backend used when neither an override nor the env var is set.
DEFAULT_BACKEND = "vectorized"

#: Process-wide programmatic override (survives env changes).
_override: Optional[str] = None


class KernelBackendError(ValueError):
    """Raised for an unknown ``REPRO_KERNELS`` / backend name."""


def _validate(name: str) -> str:
    name = str(name).strip().lower()
    if name not in BACKENDS:
        raise KernelBackendError(
            f"unknown kernels backend {name!r}; choose from {list(BACKENDS)} "
            f"(set via the {ENV_VAR} environment variable or "
            f"repro.kernels.set_backend)"
        )
    return name


def active_backend() -> str:
    """The backend name kernels will dispatch to right now."""
    if _override is not None:
        return _override
    raw = os.environ.get(ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_BACKEND
    return _validate(raw)


def set_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide backend override.

    The override takes precedence over the ``REPRO_KERNELS``
    environment variable.
    """
    global _override
    _override = None if name is None else _validate(name)


@contextmanager
def use_backend(name: str):
    """Scoped backend switch (restores the previous override on exit)."""
    global _override
    previous = _override
    _override = _validate(name)
    try:
        yield
    finally:
        _override = previous


def backend_module(name: Optional[str] = None):
    """The implementation module for ``name`` (default: active backend)."""
    resolved = _validate(name) if name is not None else active_backend()
    if resolved == "reference":
        from . import reference

        return reference
    from . import vectorized

    return vectorized


# ----------------------------------------------------------------------
# Shared helpers (backend-independent)
# ----------------------------------------------------------------------
def safe_log_weights(weights: np.ndarray) -> np.ndarray:
    """``log λ_j`` with exact ``-inf`` for collapsed (zero) weights.

    ``np.log`` on a zero weight emits a divide-by-zero RuntimeWarning —
    which ``make test-fast`` promotes to an error — before returning
    the ``-inf`` we want anyway.  A collapsed mixture component must
    score as impossible, silently.
    """
    weights = np.asarray(weights, dtype=np.float64)
    out = np.full(weights.shape, -np.inf)
    positive = weights > 0
    np.log(weights, out=out, where=positive)
    return out


# ----------------------------------------------------------------------
# Dispatching kernel entry points
# ----------------------------------------------------------------------
def count_cells(
    addresses: np.ndarray,
    weights: Optional[np.ndarray] = None,
    *,
    base_address: int,
    region_size: int,
    shift: int,
    num_cells: int,
) -> tuple:
    """Memometer histogramming: per-cell access counts for one burst.

    Implements the Section 3.1 datapath — ``offset = addr - base``,
    drop unless ``0 <= offset < S``, ``idx = offset >> g`` — over a
    whole address burst.  Returns ``(counts, accepted)`` where
    ``counts`` is an ``int64`` array of length ``num_cells`` holding
    the (unsaturated) increments and ``accepted`` is the total weight
    that passed the region filter.  Integer arithmetic throughout:
    both backends are bit-identical (exact for totals below 2**53).
    """
    return backend_module().count_cells(
        addresses,
        weights,
        base_address=base_address,
        region_size=region_size,
        shift=shift,
        num_cells=num_cells,
    )


def project_batch(
    matrix: np.ndarray, mean: np.ndarray, components: np.ndarray
) -> np.ndarray:
    """Eigenmemory projection ``(M - Ψ) Uᵀ`` for a whole MHM batch."""
    return backend_module().project_batch(matrix, mean, components)


def reconstruct_batch(
    weights: np.ndarray, mean: np.ndarray, components: np.ndarray
) -> np.ndarray:
    """Inverse eigenmemory transform ``W U + Ψ`` for a weight batch."""
    return backend_module().reconstruct_batch(weights, mean, components)


def component_log_densities(
    data: np.ndarray, means: np.ndarray, cholesky_factors: np.ndarray
) -> np.ndarray:
    """``(N, J)`` per-component Gaussian log densities."""
    return backend_module().component_log_densities(data, means, cholesky_factors)


def log_density_batch(
    data: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
) -> np.ndarray:
    """GMM mixture log density ``ln Pr(M)`` for N samples in one pass.

    Shared by EM's likelihood evaluation, threshold calibration and
    the online monitor (paper Eq. 2, evaluated in log space with the
    log-sum-exp trick).
    """
    return backend_module().log_density_batch(data, weights, means, cholesky_factors)


def responsibilities_batch(
    data: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
) -> tuple:
    """EM E-step: ``(log_norm, responsibilities)`` for N samples.

    ``log_norm`` is the per-sample mixture log density (shape ``(N,)``)
    and ``responsibilities`` the ``(N, J)`` posterior memberships.
    """
    return backend_module().responsibilities_batch(
        data, weights, means, cholesky_factors
    )


def nearest_context_batch(
    matrix: np.ndarray, centers: np.ndarray
) -> tuple:
    """Nearest execution context per syscall-frequency vector.

    The hot loop of the second detection modality
    (:mod:`repro.learn.contexts`): for each row of ``matrix`` find the
    closest k-means center and its Euclidean distance.  Returns
    ``(labels, distances)`` with shapes ``(N,)`` — ``labels`` int64,
    ``distances`` float64.  Ties break to the lowest center index in
    both backends.  The computation is row-separable (no cross-row
    reduction), so — unlike the BLAS-backed projection — a row's result
    is independent of its batch-mates at any batch shape.
    """
    return backend_module().nearest_context_batch(matrix, centers)


def logsumexp(values: np.ndarray, axis: int = 1) -> np.ndarray:
    """Numerically stable ``log Σ exp`` along ``axis``.

    All-``-inf`` rows reduce to ``-inf`` without warnings; widely
    separated finite values never overflow.
    """
    return backend_module().logsumexp(values, axis=axis)

"""Hot-path kernels with switchable backends.

The pipeline's three hot loops — Memometer cell counting over
instruction-fetch traces, eigenmemory (PCA) projection of whole MHM
batches, and GMM log-density scoring (EM E-step, threshold
calibration, online detection) — are concentrated here as *kernels*
with two interchangeable backends:

``vectorized`` (default)
    Batched NumPy/BLAS implementations: one ``np.bincount`` per trace
    burst, one GEMM per MHM batch, one pass over all J mixture
    components for N samples.  This is the production path.

``reference``
    Deliberately scalar pure-Python implementations that follow the
    paper's formulas one element at a time (accumulating with
    ``math.fsum``, so they are *more* accurate than a naive loop).
    They exist as the differential-test oracle: slow, obvious,
    independently written.  ``tests/kernels/test_differential.py``
    holds the vectorized backend to the oracle — bit-identical for
    integer counting, ≤1e-9 for floating point — on hypothesis-generated
    inputs and on the end-to-end golden pipeline.

Select the backend with the ``REPRO_KERNELS`` environment variable
(``reference`` or ``vectorized``), or programmatically::

    from repro import kernels
    kernels.set_backend("reference")      # process-wide
    with kernels.use_backend("reference"):  # scoped
        ...

Every public kernel dispatches per call, so a switch takes effect
immediately.  ``repro.bench`` times each kernel under both backends
and records the speedups in ``BENCH_kernels.json``.

The fused fleet-scoring path (:func:`fleet_score_batch` /
:class:`FleetScorer`) additionally honours a *compute dtype*,
selected with ``REPRO_KERNELS_DTYPE`` (``float64`` — the default and
the shipped digest path — or ``float32``, an opt-in fast path on the
vectorized backend whose error against the float64 oracle is bounded
by :data:`FLOAT32_ULP_BUDGET`).  The scalar reference backend always
computes in float64: it *is* the accuracy oracle.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "DTYPES",
    "DEFAULT_DTYPE",
    "DTYPE_ENV_VAR",
    "FLOAT32_ULP_BUDGET",
    "KernelBackendError",
    "active_backend",
    "set_backend",
    "use_backend",
    "active_dtype",
    "set_dtype",
    "use_dtype",
    "backend_module",
    "count_cells",
    "project_batch",
    "reconstruct_batch",
    "component_log_densities",
    "log_density_batch",
    "responsibilities_batch",
    "nearest_context_batch",
    "logsumexp",
    "safe_log_weights",
    "float32_ulp_error",
    "FleetScores",
    "fleet_score_batch",
    "FleetScorer",
]

#: Recognised backend names.
BACKENDS = ("reference", "vectorized")
#: Environment variable that selects the backend for a process.
ENV_VAR = "REPRO_KERNELS"
#: Backend used when neither an override nor the env var is set.
DEFAULT_BACKEND = "vectorized"

#: Recognised fused-path compute dtypes.
DTYPES = ("float64", "float32")
#: Environment variable that selects the fused-path compute dtype.
DTYPE_ENV_VAR = "REPRO_KERNELS_DTYPE"
#: Dtype used when neither an override nor the env var is set.  The
#: float64 default is the digest-bearing path: its results are
#: bit-identical to the unfused kernel chain.
DEFAULT_DTYPE = "float64"

#: Maximum allowed float32 fast-path error, in float32 ULPs of the
#: float64 oracle result (see :func:`float32_ulp_error`).  Measured
#: maxima on realistic device batches sit around a few hundred ULPs
#: (dominated by cancellation in the 1,472-term projection dot
#: products); the budget leaves an order-of-magnitude margin while
#: still catching any float64 intermediate accidentally dropped to
#: bfloat16-class precision.  ``tests/kernels/test_fused.py`` enforces
#: it; ``repro bench`` records the measured maximum next to it.
FLOAT32_ULP_BUDGET = 4096.0

#: Process-wide programmatic override (survives env changes).
_override: Optional[str] = None

#: Process-wide programmatic dtype override (survives env changes).
_dtype_override: Optional[str] = None


class KernelBackendError(ValueError):
    """Raised for an unknown ``REPRO_KERNELS`` / backend name."""


def _validate(name: str) -> str:
    name = str(name).strip().lower()
    if name not in BACKENDS:
        raise KernelBackendError(
            f"unknown kernels backend {name!r}; choose from {list(BACKENDS)} "
            f"(set via the {ENV_VAR} environment variable or "
            f"repro.kernels.set_backend)"
        )
    return name


def active_backend() -> str:
    """The backend name kernels will dispatch to right now."""
    if _override is not None:
        return _override
    raw = os.environ.get(ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_BACKEND
    return _validate(raw)


def set_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide backend override.

    The override takes precedence over the ``REPRO_KERNELS``
    environment variable.
    """
    global _override
    _override = None if name is None else _validate(name)


@contextmanager
def use_backend(name: str):
    """Scoped backend switch (restores the previous override on exit)."""
    global _override
    previous = _override
    _override = _validate(name)
    try:
        yield
    finally:
        _override = previous


def _validate_dtype(name: str) -> str:
    name = str(name).strip().lower()
    if name not in DTYPES:
        raise KernelBackendError(
            f"unknown kernels dtype {name!r}; choose from {list(DTYPES)} "
            f"(set via the {DTYPE_ENV_VAR} environment variable or "
            f"repro.kernels.set_dtype)"
        )
    return name


def active_dtype() -> str:
    """The compute dtype the fused fleet path will use right now."""
    if _dtype_override is not None:
        return _dtype_override
    raw = os.environ.get(DTYPE_ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_DTYPE
    return _validate_dtype(raw)


def set_dtype(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide dtype override.

    The override takes precedence over the ``REPRO_KERNELS_DTYPE``
    environment variable.  It does **not** cross process boundaries —
    pool children inherit only the environment variable, which is why
    :class:`repro.serve.service.ServeConfig` resolves the dtype in the
    parent and ships it to every shard explicitly.
    """
    global _dtype_override
    _dtype_override = None if name is None else _validate_dtype(name)


@contextmanager
def use_dtype(name: str):
    """Scoped dtype switch (restores the previous override on exit)."""
    global _dtype_override
    previous = _dtype_override
    _dtype_override = _validate_dtype(name)
    try:
        yield
    finally:
        _dtype_override = previous


def backend_module(name: Optional[str] = None):
    """The implementation module for ``name`` (default: active backend)."""
    resolved = _validate(name) if name is not None else active_backend()
    if resolved == "reference":
        from . import reference

        return reference
    from . import vectorized

    return vectorized


# ----------------------------------------------------------------------
# Shared helpers (backend-independent)
# ----------------------------------------------------------------------
def safe_log_weights(weights: np.ndarray) -> np.ndarray:
    """``log λ_j`` with exact ``-inf`` for collapsed (zero) weights.

    ``np.log`` on a zero weight emits a divide-by-zero RuntimeWarning —
    which ``make test-fast`` promotes to an error — before returning
    the ``-inf`` we want anyway.  A collapsed mixture component must
    score as impossible, silently.
    """
    weights = np.asarray(weights, dtype=np.float64)
    out = np.full(weights.shape, -np.inf)
    positive = weights > 0
    np.log(weights, out=out, where=positive)
    return out


# ----------------------------------------------------------------------
# Dispatching kernel entry points
# ----------------------------------------------------------------------
def count_cells(
    addresses: np.ndarray,
    weights: Optional[np.ndarray] = None,
    *,
    base_address: int,
    region_size: int,
    shift: int,
    num_cells: int,
) -> tuple:
    """Memometer histogramming: per-cell access counts for one burst.

    Implements the Section 3.1 datapath — ``offset = addr - base``,
    drop unless ``0 <= offset < S``, ``idx = offset >> g`` — over a
    whole address burst.  Returns ``(counts, accepted)`` where
    ``counts`` is an ``int64`` array of length ``num_cells`` holding
    the (unsaturated) increments and ``accepted`` is the total weight
    that passed the region filter.  Integer arithmetic throughout:
    both backends are bit-identical (exact for totals below 2**53).
    """
    return backend_module().count_cells(
        addresses,
        weights,
        base_address=base_address,
        region_size=region_size,
        shift=shift,
        num_cells=num_cells,
    )


def project_batch(
    matrix: np.ndarray, mean: np.ndarray, components: np.ndarray
) -> np.ndarray:
    """Eigenmemory projection ``(M - Ψ) Uᵀ`` for a whole MHM batch."""
    return backend_module().project_batch(matrix, mean, components)


def reconstruct_batch(
    weights: np.ndarray, mean: np.ndarray, components: np.ndarray
) -> np.ndarray:
    """Inverse eigenmemory transform ``W U + Ψ`` for a weight batch."""
    return backend_module().reconstruct_batch(weights, mean, components)


def component_log_densities(
    data: np.ndarray, means: np.ndarray, cholesky_factors: np.ndarray
) -> np.ndarray:
    """``(N, J)`` per-component Gaussian log densities."""
    return backend_module().component_log_densities(data, means, cholesky_factors)


def log_density_batch(
    data: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
) -> np.ndarray:
    """GMM mixture log density ``ln Pr(M)`` for N samples in one pass.

    Shared by EM's likelihood evaluation, threshold calibration and
    the online monitor (paper Eq. 2, evaluated in log space with the
    log-sum-exp trick).
    """
    return backend_module().log_density_batch(data, weights, means, cholesky_factors)


def responsibilities_batch(
    data: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
) -> tuple:
    """EM E-step: ``(log_norm, responsibilities)`` for N samples.

    ``log_norm`` is the per-sample mixture log density (shape ``(N,)``)
    and ``responsibilities`` the ``(N, J)`` posterior memberships.
    """
    return backend_module().responsibilities_batch(
        data, weights, means, cholesky_factors
    )


def nearest_context_batch(
    matrix: np.ndarray, centers: np.ndarray
) -> tuple:
    """Nearest execution context per syscall-frequency vector.

    The hot loop of the second detection modality
    (:mod:`repro.learn.contexts`): for each row of ``matrix`` find the
    closest k-means center and its Euclidean distance.  Returns
    ``(labels, distances)`` with shapes ``(N,)`` — ``labels`` int64,
    ``distances`` float64.  Ties break to the lowest center index in
    both backends.  The computation is row-separable (no cross-row
    reduction), so — unlike the BLAS-backed projection — a row's result
    is independent of its batch-mates at any batch shape.
    """
    return backend_module().nearest_context_batch(matrix, centers)


def logsumexp(values: np.ndarray, axis: int = 1) -> np.ndarray:
    """Numerically stable ``log Σ exp`` along ``axis``.

    All-``-inf`` rows reduce to ``-inf`` without warnings; widely
    separated finite values never overflow.
    """
    return backend_module().logsumexp(values, axis=axis)


# ----------------------------------------------------------------------
# Fused fleet scoring
# ----------------------------------------------------------------------
def float32_ulp_error(fast: np.ndarray, oracle: np.ndarray) -> np.ndarray:
    """Elementwise error of ``fast`` in float32 ULPs of ``oracle``.

    The unit is ``spacing(float32(|oracle|))`` — the gap between
    adjacent float32 values at the oracle's magnitude — floored at
    ``spacing(float32(1.0))`` so near-zero oracle values don't make the
    denominator degenerate.  Non-finite elements count as 0 ULPs when
    the two values are identical (matching ``±inf``) and ``inf`` ULPs
    otherwise.  This is the metric :data:`FLOAT32_ULP_BUDGET` bounds.
    """
    oracle = np.asarray(oracle, dtype=np.float64)
    fast = np.asarray(fast, dtype=np.float64)
    spacing = np.spacing(np.abs(oracle).astype(np.float32)).astype(np.float64)
    spacing = np.maximum(spacing, float(np.spacing(np.float32(1.0))))
    out = np.full(np.broadcast(fast, oracle).shape, np.inf, dtype=np.float64)
    finite = np.isfinite(oracle) & np.isfinite(fast)
    np.divide(np.abs(fast - oracle), spacing, out=out, where=finite)
    out[~finite & (fast == oracle)] = 0.0
    return out


@dataclass(frozen=True)
class FleetScores:
    """One fused fleet-scoring call's results, in input-row order.

    ``context_scores`` and ``context_residuals`` are ``None`` unless
    the call carried the second modality's model arrays; residuals
    additionally need the per-row phase indices.  All arrays are
    float64 regardless of the compute dtype (the float32 fast path
    casts its results back).
    """

    log_densities: np.ndarray
    context_scores: Optional[np.ndarray] = None
    context_residuals: Optional[np.ndarray] = None


def fleet_score_batch(
    matrix: np.ndarray,
    mean: np.ndarray,
    components: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
    *,
    pad_to: Optional[int] = None,
    dtype: Optional[str] = None,
    syscalls: Optional[np.ndarray] = None,
    centers: Optional[np.ndarray] = None,
    scales: Optional[np.ndarray] = None,
    phase_means: Optional[np.ndarray] = None,
    phases: Optional[np.ndarray] = None,
) -> FleetScores:
    """Score a whole cross-device batch through one fused call.

    Chains eigenmemory projection → GMM mixture log-density and (when
    the context-model arrays are given) syscall nearest-centroid
    scoring → phase-residual extraction, without re-entering the
    dispatch layer between stages.

    ``pad_to=None`` scores the batch at its own shape — bit-identical
    to ``detector.score_series`` on the same matrix.  ``pad_to=k``
    zero-pads to fixed ``k``-row chunks — bit-identical to the serving
    layer's historical ``batched_log_densities`` chunk loop, keeping
    every row's score a pure function of its own vector (the serial ≡
    sharded digest contract).  ``dtype=None`` uses
    :func:`active_dtype`; the reference backend ignores the dtype and
    always computes the float64 oracle result.
    """
    if pad_to is not None and pad_to < 1:
        raise ValueError("pad_to must be >= 1 (or None for whole-batch)")
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D batch of MHM vectors")
    if centers is not None and syscalls is None:
        raise ValueError("context centers given without a syscall batch")
    if phases is not None:
        phases = np.asarray(phases, dtype=np.int64)
        if syscalls is not None and len(phases) != len(
            np.atleast_2d(np.asarray(syscalls))
        ):
            raise ValueError("phases must align with the syscall batch rows")
    resolved = _validate_dtype(dtype) if dtype is not None else active_dtype()
    densities, context_scores, residuals = backend_module().fleet_score_batch(
        matrix,
        mean,
        components,
        weights,
        means,
        cholesky_factors,
        pad_to=pad_to,
        dtype=resolved,
        syscalls=syscalls,
        centers=centers,
        scales=scales,
        phase_means=phase_means,
        phases=phases,
    )
    return FleetScores(
        log_densities=densities,
        context_scores=context_scores,
        context_residuals=residuals,
    )


class FleetScorer:
    """Bound model arrays + the fused kernel: the fleet hot path.

    Wraps one profile's fitted parameters (both modalities) so the
    serving layer, ``repro detect`` and the bench can score batches
    with a single call and zero per-call model marshalling.
    ``from_detectors`` is duck-typed — it only reads fitted-array
    attributes — so this module never imports :mod:`repro.learn`.
    """

    def __init__(
        self,
        *,
        pca_mean: np.ndarray,
        pca_components: np.ndarray,
        gmm_weights: np.ndarray,
        gmm_means: np.ndarray,
        gmm_cholesky_factors: np.ndarray,
        context_centers: Optional[np.ndarray] = None,
        context_scales: Optional[np.ndarray] = None,
        context_phase_means: Optional[np.ndarray] = None,
        context_hyperperiod: Optional[int] = None,
    ):
        self.pca_mean = np.asarray(pca_mean, dtype=np.float64)
        self.pca_components = np.asarray(pca_components, dtype=np.float64)
        self.gmm_weights = np.asarray(gmm_weights, dtype=np.float64)
        self.gmm_means = np.asarray(gmm_means, dtype=np.float64)
        self.gmm_cholesky_factors = np.asarray(
            gmm_cholesky_factors, dtype=np.float64
        )
        self.context_centers = (
            np.asarray(context_centers, dtype=np.float64)
            if context_centers is not None
            else None
        )
        self.context_scales = (
            np.asarray(context_scales, dtype=np.float64)
            if context_scales is not None
            else None
        )
        self.context_phase_means = (
            np.asarray(context_phase_means, dtype=np.float64)
            if context_phase_means is not None
            else None
        )
        self.context_hyperperiod = (
            int(context_hyperperiod) if context_hyperperiod is not None else None
        )

    @property
    def has_context(self) -> bool:
        return self.context_centers is not None

    @classmethod
    def from_detectors(cls, detector, context=None) -> "FleetScorer":
        """Build from a fitted ``MhmDetector`` (+ optional
        ``ContextDetector``) via attribute access only."""
        eigen = detector.eigenmemory
        params = detector.gmm.parameters
        kwargs = dict(
            pca_mean=eigen.mean_,
            pca_components=eigen.components_,
            gmm_weights=params.weights,
            gmm_means=params.means,
            gmm_cholesky_factors=params.cholesky_factors,
        )
        if context is not None:
            kwargs.update(
                context_centers=context.centers_,
                context_scales=context.scales_,
                context_phase_means=context.phase_means_,
                context_hyperperiod=context.hyperperiod,
            )
        return cls(**kwargs)

    def score(
        self,
        matrix: np.ndarray,
        *,
        syscalls: Optional[np.ndarray] = None,
        interval_indices: Optional[np.ndarray] = None,
        pad_to: Optional[int] = None,
        dtype: Optional[str] = None,
    ) -> FleetScores:
        """Fused scores for one cross-device batch.

        ``interval_indices`` (each row's absolute interval index on its
        device's clock) keys the drift channel's phase alignment; when
        given alongside ``syscalls``, the result carries the per-row
        phase residuals the caller's cumsum consumes.
        """
        if syscalls is not None and not self.has_context:
            raise ValueError("scorer has no context model for a syscall batch")
        phases = None
        if syscalls is not None and interval_indices is not None:
            phases = (
                np.asarray(interval_indices, dtype=np.int64)
                % self.context_hyperperiod
            )
        return fleet_score_batch(
            matrix,
            self.pca_mean,
            self.pca_components,
            self.gmm_weights,
            self.gmm_means,
            self.gmm_cholesky_factors,
            pad_to=pad_to,
            dtype=dtype,
            syscalls=syscalls if self.has_context else None,
            centers=self.context_centers if syscalls is not None else None,
            scales=self.context_scales if syscalls is not None else None,
            phase_means=(
                self.context_phase_means if phases is not None else None
            ),
            phases=phases,
        )

"""Scalar reference implementations — the differential-test oracle.

Every kernel here walks its input one element at a time in pure
Python, following the paper's formulas directly: the Section 3.1
filter/shift datapath per snooped address, the Eq. 1 projection as an
explicit dot product per (sample, eigenmemory) pair, the Eq. 2 mixture
density as a per-sample, per-component forward substitution with a
scalar log-sum-exp.  Floating-point accumulations use ``math.fsum``
(exactly rounded summation), so the oracle is *more* accurate than a
naive loop — when the vectorized backend disagrees beyond rounding,
the vectorized backend is wrong.

These implementations are intentionally slow (they are what
``repro bench`` reports speedups against) and intentionally obvious.
Keep them free of NumPy vector tricks: their entire value is being an
independent second derivation of each kernel.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

LOG_2PI = math.log(2.0 * math.pi)


# ----------------------------------------------------------------------
# Memometer counting
# ----------------------------------------------------------------------
def count_cells(
    addresses: np.ndarray,
    weights: Optional[np.ndarray] = None,
    *,
    base_address: int,
    region_size: int,
    shift: int,
    num_cells: int,
) -> tuple[np.ndarray, int]:
    addresses = np.asarray(addresses, dtype=np.int64)
    if weights is None:
        weight_list = [1] * len(addresses)
    else:
        weight_list = [int(w) for w in np.asarray(weights, dtype=np.int64)]
    counts = [0] * num_cells
    accepted = 0
    for address, weight in zip(addresses.tolist(), weight_list):
        offset = address - base_address
        if not 0 <= offset < region_size:
            continue
        counts[offset >> shift] += weight
        accepted += weight
    return np.array(counts, dtype=np.int64), accepted


# ----------------------------------------------------------------------
# Eigenmemory projection
# ----------------------------------------------------------------------
def project_batch(
    matrix: np.ndarray, mean: np.ndarray, components: np.ndarray
) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.float64)
    mean_list = np.asarray(mean, dtype=np.float64).tolist()
    rows = matrix.tolist()
    basis = np.asarray(components, dtype=np.float64).tolist()
    out = np.empty((len(rows), len(basis)), dtype=np.float64)
    for n, row in enumerate(rows):
        centered = [value - mu for value, mu in zip(row, mean_list)]
        for k, component in enumerate(basis):
            out[n, k] = math.fsum(
                phi * u for phi, u in zip(centered, component)
            )
    return out


def reconstruct_batch(
    weights: np.ndarray, mean: np.ndarray, components: np.ndarray
) -> np.ndarray:
    weight_rows = np.asarray(weights, dtype=np.float64).tolist()
    mean_list = np.asarray(mean, dtype=np.float64).tolist()
    basis = np.asarray(components, dtype=np.float64).tolist()
    num_cells = len(mean_list)
    out = np.empty((len(weight_rows), num_cells), dtype=np.float64)
    for n, row in enumerate(weight_rows):
        for cell in range(num_cells):
            out[n, cell] = mean_list[cell] + math.fsum(
                w * component[cell] for w, component in zip(row, basis)
            )
    return out


# ----------------------------------------------------------------------
# GMM log densities
# ----------------------------------------------------------------------
def _forward_substitution(lower: list, rhs: list) -> list:
    """Solve ``L z = rhs`` for lower-triangular ``L``, one row at a time."""
    dim = len(rhs)
    z = [0.0] * dim
    for row in range(dim):
        partial = math.fsum(lower[row][col] * z[col] for col in range(row))
        z[row] = (rhs[row] - partial) / lower[row][row]
    return z


def component_log_densities(
    data: np.ndarray, means: np.ndarray, cholesky_factors: np.ndarray
) -> np.ndarray:
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    num_samples, dim = data.shape
    rows = data.tolist()
    out = np.empty((num_samples, len(means)), dtype=np.float64)
    for j in range(len(means)):
        mean = np.asarray(means[j], dtype=np.float64).tolist()
        lower = np.asarray(cholesky_factors[j], dtype=np.float64).tolist()
        log_det = 2.0 * math.fsum(math.log(lower[d][d]) for d in range(dim))
        for n, row in enumerate(rows):
            centered = [value - mu for value, mu in zip(row, mean)]
            z = _forward_substitution(lower, centered)
            mahalanobis_sq = math.fsum(value * value for value in z)
            out[n, j] = -0.5 * (dim * LOG_2PI + log_det + mahalanobis_sq)
    return out


def nearest_context_batch(
    matrix: np.ndarray, centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    center_rows = np.asarray(centers, dtype=np.float64).tolist()
    labels = np.empty(len(matrix), dtype=np.int64)
    distances = np.empty(len(matrix), dtype=np.float64)
    for n, row in enumerate(matrix.tolist()):
        best_index = 0
        best_sq = math.inf
        for j, center in enumerate(center_rows):
            squared = math.fsum(
                (value - c) * (value - c) for value, c in zip(row, center)
            )
            # Strict less-than: ties keep the lowest center index, the
            # same first-minimum rule np.argmin applies.
            if squared < best_sq:
                best_sq = squared
                best_index = j
        labels[n] = best_index
        distances[n] = math.sqrt(best_sq)
    return labels, distances


def logsumexp(values: np.ndarray, axis: int = 1) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    if axis != 1 or values.ndim != 2:
        # Normalise to rows-along-axis-1 so the scalar loop below covers
        # every layout the pipeline uses.
        moved = np.moveaxis(values, axis, -1)
        flat = moved.reshape(-1, moved.shape[-1])
        result = logsumexp(flat, axis=1)
        return result.reshape(moved.shape[:-1])
    out = np.empty(values.shape[0], dtype=np.float64)
    for n, row in enumerate(values.tolist()):
        peak = max(row)
        if peak == -math.inf:
            out[n] = -math.inf
            continue
        if math.isnan(peak):
            out[n] = math.nan
            continue
        out[n] = peak + math.log(
            math.fsum(math.exp(value - peak) for value in row)
        )
    return out


def _log_joint(
    data: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
) -> np.ndarray:
    from . import safe_log_weights

    return component_log_densities(data, means, cholesky_factors) + safe_log_weights(
        weights
    )


def log_density_batch(
    data: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
) -> np.ndarray:
    return logsumexp(_log_joint(data, weights, means, cholesky_factors), axis=1)


def responsibilities_batch(
    data: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    log_joint = _log_joint(data, weights, means, cholesky_factors)
    log_norm = logsumexp(log_joint, axis=1)
    responsibilities = np.empty_like(log_joint)
    for n in range(log_joint.shape[0]):
        for j in range(log_joint.shape[1]):
            responsibilities[n, j] = math.exp(log_joint[n, j] - log_norm[n])
    return log_norm, responsibilities


# ----------------------------------------------------------------------
# Fused fleet scoring
# ----------------------------------------------------------------------
def fleet_score_batch(
    matrix: np.ndarray,
    mean: np.ndarray,
    components: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
    *,
    pad_to: Optional[int] = None,
    dtype: str = "float64",
    syscalls: Optional[np.ndarray] = None,
    centers: Optional[np.ndarray] = None,
    scales: Optional[np.ndarray] = None,
    phase_means: Optional[np.ndarray] = None,
    phases: Optional[np.ndarray] = None,
) -> tuple:
    """The fused pipeline, recomputed scalar-by-scalar.

    ``dtype`` and ``pad_to`` are accepted for signature parity and
    deliberately ignored: the oracle always computes the float64
    answer (it is the accuracy baseline the float32 fast path is
    budgeted against), and every scalar kernel here is row-separable,
    so zero-padding cannot change any row's result by construction.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    reduced = project_batch(matrix, mean, components)
    densities = log_density_batch(
        reduced, weights, means, cholesky_factors
    )
    context_scores = None
    residuals = None
    if centers is not None:
        data = np.atleast_2d(np.asarray(syscalls, dtype=np.float64))
        labels, distances = nearest_context_batch(data, centers)
        scale_list = np.asarray(scales, dtype=np.float64).tolist()
        context_scores = np.zeros(len(data), dtype=np.float64)
        for n in range(len(data)):
            scale = scale_list[int(labels[n])]
            distance = float(distances[n])
            if scale > 0:
                context_scores[n] = distance / scale
            elif distance > 0:
                context_scores[n] = math.inf
        if phase_means is not None and phases is not None:
            phase_rows = np.asarray(phase_means, dtype=np.float64).tolist()
            residuals = np.empty(data.shape, dtype=np.float64)
            for n, row in enumerate(data.tolist()):
                phase_mean = phase_rows[int(phases[n])]
                for d, (value, mu) in enumerate(zip(row, phase_mean)):
                    residuals[n, d] = value - mu
    return densities, context_scores, residuals

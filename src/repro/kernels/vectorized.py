"""Batched NumPy implementations of the hot-path kernels.

This is the production backend: one ``np.bincount`` per trace burst,
one GEMM per MHM batch, and per-component triangular solves that are
batched over all N samples at once (N is the large axis; J ≤ ~10).

The numerics here are the pipeline's canonical numerics — the golden
regression fixtures were produced by exactly these operations — so
changes must preserve results bit-for-bit or regenerate the goldens.
The scalar oracle in :mod:`repro.kernels.reference` independently
recomputes every kernel; the differential suite keeps the two within
1e-9 (bit-identical for integer counting).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

LOG_2PI = float(np.log(2.0 * np.pi))


# ----------------------------------------------------------------------
# Memometer counting
# ----------------------------------------------------------------------
def count_cells(
    addresses: np.ndarray,
    weights: Optional[np.ndarray] = None,
    *,
    base_address: int,
    region_size: int,
    shift: int,
    num_cells: int,
) -> tuple[np.ndarray, int]:
    addresses = np.asarray(addresses, dtype=np.int64)
    if weights is None:
        weights = np.ones(addresses.shape, dtype=np.int64)
    else:
        weights = np.asarray(weights, dtype=np.int64)
    offsets = addresses - base_address
    in_region = (offsets >= 0) & (offsets < region_size)
    indices = offsets[in_region] >> shift
    kept = weights[in_region]
    counts = np.bincount(indices, weights=kept, minlength=num_cells).astype(
        np.int64
    )
    return counts, int(kept.sum())


# ----------------------------------------------------------------------
# Eigenmemory projection
# ----------------------------------------------------------------------
def project_batch(
    matrix: np.ndarray, mean: np.ndarray, components: np.ndarray
) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.float64)
    return (matrix - mean) @ components.T


def reconstruct_batch(
    weights: np.ndarray, mean: np.ndarray, components: np.ndarray
) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64)
    return weights @ components + mean


# ----------------------------------------------------------------------
# GMM log densities
# ----------------------------------------------------------------------
def _solve_lower(lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    try:
        from scipy.linalg import solve_triangular

        return solve_triangular(lower, rhs, lower=True, check_finite=False)
    except ImportError:  # pragma: no cover - scipy is a dependency
        return np.linalg.solve(lower, rhs)


def _mvn_logpdf(
    x: np.ndarray, mean: np.ndarray, cholesky_factor: np.ndarray
) -> np.ndarray:
    dim = x.shape[1]
    centered = x - mean
    solved = _solve_lower(cholesky_factor, centered.T).T
    mahalanobis_sq = np.einsum("nd,nd->n", solved, solved)
    log_det = 2.0 * np.log(np.diag(cholesky_factor)).sum()
    return -0.5 * (dim * LOG_2PI + log_det + mahalanobis_sq)


def component_log_densities(
    data: np.ndarray, means: np.ndarray, cholesky_factors: np.ndarray
) -> np.ndarray:
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    columns = [
        _mvn_logpdf(data, means[j], cholesky_factors[j])
        for j in range(len(means))
    ]
    return np.stack(columns, axis=1)


def nearest_context_batch(
    matrix: np.ndarray, centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    centers = np.asarray(centers, dtype=np.float64)
    diff = matrix[:, np.newaxis, :] - centers[np.newaxis, :, :]
    squared = np.einsum("nkd,nkd->nk", diff, diff)
    labels = squared.argmin(axis=1).astype(np.int64)
    distances = np.sqrt(squared[np.arange(len(matrix)), labels])
    return labels, distances


def logsumexp(values: np.ndarray, axis: int = 1) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    peak = values.max(axis=axis, keepdims=True)
    # Guard against -inf peaks (all components impossible): the row's
    # true reduction is -inf; computing it would take log(0), whose
    # FP divide-by-zero warning test-fast promotes to an error.
    safe_peak = np.where(np.isfinite(peak), peak, 0.0)
    with np.errstate(divide="ignore"):
        result = np.log(np.exp(values - safe_peak).sum(axis=axis)) + safe_peak.squeeze(
            axis
        )
    return result


def _log_joint(
    data: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
) -> np.ndarray:
    from . import safe_log_weights

    return component_log_densities(data, means, cholesky_factors) + safe_log_weights(
        weights
    )


def log_density_batch(
    data: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
) -> np.ndarray:
    return logsumexp(_log_joint(data, weights, means, cholesky_factors), axis=1)


def responsibilities_batch(
    data: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    log_joint = _log_joint(data, weights, means, cholesky_factors)
    log_norm = logsumexp(log_joint, axis=1)
    responsibilities = np.exp(log_joint - log_norm[:, np.newaxis])
    return log_norm, responsibilities


# ----------------------------------------------------------------------
# Fused fleet scoring
# ----------------------------------------------------------------------
def _fleet_densities_f64(
    matrix: np.ndarray,
    mean: np.ndarray,
    components: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
    pad_to: Optional[int],
) -> np.ndarray:
    """The digest-bearing float64 path.

    Executes exactly the op sequence of the historical unfused chain —
    ``project_batch`` then ``log_density_batch`` per fixed-shape chunk
    (or once, whole-batch, for ``pad_to=None``) — so results are
    bit-identical to the pre-fused serving and detect paths.
    """
    if pad_to is None:
        reduced = project_batch(matrix, mean, components)
        return log_density_batch(reduced, weights, means, cholesky_factors)
    out = np.empty(len(matrix), dtype=np.float64)
    for start in range(0, len(matrix), pad_to):
        chunk = matrix[start : start + pad_to]
        n = len(chunk)
        padded = np.zeros((pad_to, matrix.shape[1]), dtype=np.float64)
        padded[:n] = chunk
        reduced = project_batch(padded, mean, components)
        densities = log_density_batch(
            reduced, weights, means, cholesky_factors
        )
        out[start : start + n] = densities[:n]
    return out


def _logsumexp_f32(values: np.ndarray) -> np.ndarray:
    """Row-wise log-sum-exp that stays in float32 (same -inf guard as
    the float64 :func:`logsumexp`)."""
    peak = values.max(axis=1, keepdims=True)
    safe_peak = np.where(np.isfinite(peak), peak, np.float32(0.0))
    with np.errstate(divide="ignore"):
        result = np.log(np.exp(values - safe_peak).sum(axis=1)) + safe_peak[:, 0]
    return result


def _fleet_densities_f32(
    matrix: np.ndarray,
    mean: np.ndarray,
    components: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
    pad_to: Optional[int],
) -> np.ndarray:
    """The opt-in float32 fast path: sgemm projection + float32
    triangular solves, same fixed-shape chunking as the float64 path
    (so scores stay pure functions of each row's own vector), results
    cast back to float64.  Error vs the float64 oracle is bounded by
    ``repro.kernels.FLOAT32_ULP_BUDGET``.
    """
    from . import safe_log_weights

    mean32 = np.asarray(mean, dtype=np.float32)
    components32_t = np.ascontiguousarray(
        np.asarray(components, dtype=np.float32).T
    )
    means32 = np.atleast_2d(np.asarray(means, dtype=np.float32))
    chols32 = np.asarray(cholesky_factors, dtype=np.float32)
    log_weights32 = safe_log_weights(weights).astype(np.float32)
    num_components, dim = means32.shape
    # Per-component -0.5 * (d ln 2π + ln|Σ_j|) + ln λ_j, precomputed in
    # float32 once per call.
    offsets = np.empty(num_components, dtype=np.float32)
    for j in range(num_components):
        # A diagonal entry can underflow to 0 on the float64→float32
        # cast; the component then scores -inf (impossible), silently.
        with np.errstate(divide="ignore"):
            log_det = np.float32(2.0) * np.log(np.diag(chols32[j])).sum()
        offsets[j] = (
            np.float32(-0.5) * (np.float32(dim * LOG_2PI) + log_det)
            + log_weights32[j]
        )
    out = np.empty(len(matrix), dtype=np.float64)
    step = pad_to if pad_to is not None else max(len(matrix), 1)
    for start in range(0, len(matrix), step):
        chunk = matrix[start : start + step]
        n = len(chunk)
        rows = step if pad_to is not None else n
        padded = np.zeros((rows, matrix.shape[1]), dtype=np.float32)
        padded[:n] = chunk
        reduced = (padded - mean32) @ components32_t
        log_joint = np.empty((rows, num_components), dtype=np.float32)
        for j in range(num_components):
            centered = reduced - means32[j]
            solved = _solve_lower(chols32[j], centered.T).T
            mahalanobis_sq = np.einsum("nd,nd->n", solved, solved)
            log_joint[:, j] = (
                np.float32(-0.5) * mahalanobis_sq + offsets[j]
            )
        out[start : start + n] = _logsumexp_f32(log_joint)[:n].astype(
            np.float64
        )
    return out


def _context_scores_f64(
    data: np.ndarray, centers: np.ndarray, scales: np.ndarray
) -> np.ndarray:
    """Scaled nearest-context scores — the exact op sequence of
    ``ContextDetector.score_series`` (bit-identical)."""
    if data.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)
    labels, distances = nearest_context_batch(data, centers)
    row_scales = np.asarray(scales, dtype=np.float64)[labels]
    scores = np.zeros(len(distances), dtype=np.float64)
    positive = row_scales > 0
    np.divide(distances, row_scales, out=scores, where=positive)
    scores[~positive & (distances > 0)] = np.inf
    return scores


def _context_scores_f32(
    data: np.ndarray, centers: np.ndarray, scales: np.ndarray
) -> np.ndarray:
    if data.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)
    data32 = data.astype(np.float32)
    centers32 = np.asarray(centers, dtype=np.float32)
    diff = data32[:, np.newaxis, :] - centers32[np.newaxis, :, :]
    squared = np.einsum("nkd,nkd->nk", diff, diff)
    labels = squared.argmin(axis=1)
    distances = np.sqrt(squared[np.arange(len(data32)), labels])
    row_scales = np.asarray(scales, dtype=np.float32)[labels]
    scores = np.zeros(len(distances), dtype=np.float32)
    positive = row_scales > 0
    np.divide(distances, row_scales, out=scores, where=positive)
    scores[~positive & (distances > 0)] = np.inf
    return scores.astype(np.float64)


def fleet_score_batch(
    matrix: np.ndarray,
    mean: np.ndarray,
    components: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
    *,
    pad_to: Optional[int] = None,
    dtype: str = "float64",
    syscalls: Optional[np.ndarray] = None,
    centers: Optional[np.ndarray] = None,
    scales: Optional[np.ndarray] = None,
    phase_means: Optional[np.ndarray] = None,
    phases: Optional[np.ndarray] = None,
) -> tuple:
    """Fused project → GMM log-density → context score → phase
    residual for one cross-device batch (see the facade docstring).
    Returns ``(log_densities, context_scores, context_residuals)``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    density_fn = (
        _fleet_densities_f32 if dtype == "float32" else _fleet_densities_f64
    )
    densities = density_fn(
        matrix, mean, components, weights, means, cholesky_factors, pad_to
    )
    context_scores = None
    residuals = None
    if centers is not None:
        data = np.atleast_2d(np.asarray(syscalls, dtype=np.float64))
        scores_fn = (
            _context_scores_f32 if dtype == "float32" else _context_scores_f64
        )
        context_scores = scores_fn(data, centers, scales)
        if phase_means is not None and phases is not None:
            phase_rows = np.asarray(phase_means, dtype=np.float64)[
                np.asarray(phases, dtype=np.int64)
            ]
            if dtype == "float32":
                residuals = (
                    data.astype(np.float32) - phase_rows.astype(np.float32)
                ).astype(np.float64)
            else:
                # Elementwise row subtraction: bit-identical to the
                # per-record residual the drift channel historically
                # computed.
                residuals = data - phase_rows
    return densities, context_scores, residuals

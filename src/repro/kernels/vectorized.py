"""Batched NumPy implementations of the hot-path kernels.

This is the production backend: one ``np.bincount`` per trace burst,
one GEMM per MHM batch, and per-component triangular solves that are
batched over all N samples at once (N is the large axis; J ≤ ~10).

The numerics here are the pipeline's canonical numerics — the golden
regression fixtures were produced by exactly these operations — so
changes must preserve results bit-for-bit or regenerate the goldens.
The scalar oracle in :mod:`repro.kernels.reference` independently
recomputes every kernel; the differential suite keeps the two within
1e-9 (bit-identical for integer counting).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

LOG_2PI = float(np.log(2.0 * np.pi))


# ----------------------------------------------------------------------
# Memometer counting
# ----------------------------------------------------------------------
def count_cells(
    addresses: np.ndarray,
    weights: Optional[np.ndarray] = None,
    *,
    base_address: int,
    region_size: int,
    shift: int,
    num_cells: int,
) -> tuple[np.ndarray, int]:
    addresses = np.asarray(addresses, dtype=np.int64)
    if weights is None:
        weights = np.ones(addresses.shape, dtype=np.int64)
    else:
        weights = np.asarray(weights, dtype=np.int64)
    offsets = addresses - base_address
    in_region = (offsets >= 0) & (offsets < region_size)
    indices = offsets[in_region] >> shift
    kept = weights[in_region]
    counts = np.bincount(indices, weights=kept, minlength=num_cells).astype(
        np.int64
    )
    return counts, int(kept.sum())


# ----------------------------------------------------------------------
# Eigenmemory projection
# ----------------------------------------------------------------------
def project_batch(
    matrix: np.ndarray, mean: np.ndarray, components: np.ndarray
) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.float64)
    return (matrix - mean) @ components.T


def reconstruct_batch(
    weights: np.ndarray, mean: np.ndarray, components: np.ndarray
) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64)
    return weights @ components + mean


# ----------------------------------------------------------------------
# GMM log densities
# ----------------------------------------------------------------------
def _solve_lower(lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    try:
        from scipy.linalg import solve_triangular

        return solve_triangular(lower, rhs, lower=True, check_finite=False)
    except ImportError:  # pragma: no cover - scipy is a dependency
        return np.linalg.solve(lower, rhs)


def _mvn_logpdf(
    x: np.ndarray, mean: np.ndarray, cholesky_factor: np.ndarray
) -> np.ndarray:
    dim = x.shape[1]
    centered = x - mean
    solved = _solve_lower(cholesky_factor, centered.T).T
    mahalanobis_sq = np.einsum("nd,nd->n", solved, solved)
    log_det = 2.0 * np.log(np.diag(cholesky_factor)).sum()
    return -0.5 * (dim * LOG_2PI + log_det + mahalanobis_sq)


def component_log_densities(
    data: np.ndarray, means: np.ndarray, cholesky_factors: np.ndarray
) -> np.ndarray:
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    columns = [
        _mvn_logpdf(data, means[j], cholesky_factors[j])
        for j in range(len(means))
    ]
    return np.stack(columns, axis=1)


def nearest_context_batch(
    matrix: np.ndarray, centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    centers = np.asarray(centers, dtype=np.float64)
    diff = matrix[:, np.newaxis, :] - centers[np.newaxis, :, :]
    squared = np.einsum("nkd,nkd->nk", diff, diff)
    labels = squared.argmin(axis=1).astype(np.int64)
    distances = np.sqrt(squared[np.arange(len(matrix)), labels])
    return labels, distances


def logsumexp(values: np.ndarray, axis: int = 1) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    peak = values.max(axis=axis, keepdims=True)
    # Guard against -inf peaks (all components impossible): the row's
    # true reduction is -inf; computing it would take log(0), whose
    # FP divide-by-zero warning test-fast promotes to an error.
    safe_peak = np.where(np.isfinite(peak), peak, 0.0)
    with np.errstate(divide="ignore"):
        result = np.log(np.exp(values - safe_peak).sum(axis=axis)) + safe_peak.squeeze(
            axis
        )
    return result


def _log_joint(
    data: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
) -> np.ndarray:
    from . import safe_log_weights

    return component_log_densities(data, means, cholesky_factors) + safe_log_weights(
        weights
    )


def log_density_batch(
    data: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
) -> np.ndarray:
    return logsumexp(_log_joint(data, weights, means, cholesky_factors), axis=1)


def responsibilities_batch(
    data: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    cholesky_factors: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    log_joint = _log_joint(data, weights, means, cholesky_factors)
    log_norm = logsumexp(log_joint, axis=1)
    responsibilities = np.exp(log_joint - log_norm[:, np.newaxis])
    return log_norm, responsibilities

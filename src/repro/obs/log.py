"""Structured logging: schema-versioned JSON event lines.

The serving stack needs logs a machine can aggregate across a fleet —
``grep alarm`` does not scale to millions of devices.  Every log line
here is one JSON object with a fixed envelope::

    {"schema": 1, "seq": 17, "event": "serve.alarm", "component":
     "serve", "level": "warn", "device_id": "dev-0003", "shard": 1,
     "sim_time_ns": 420000000, "seed": 2015, "trace_id": "…",
     "span_id": "…", "fields": {"interval": 42, "streak": 3}}

Three rules keep the layer deterministic and cheap:

* **registered events only** — every event name is declared once in
  :data:`EVENTS` with its allowed field set; ``tools/check_log_schema.py``
  statically checks call sites and :meth:`StructuredLogger.event`
  re-checks at runtime, so the log schema cannot drift silently;
* **no wall clock in the record** — timestamps are *simulated* time
  (``sim_time_ns``), so two runs of the same seed produce byte-equal
  logs (the telemetry determinism suite asserts this);
* **no-op twin** — like the metrics registry and tracer, a disabled
  logger is a shared do-nothing singleton; an instrumented call site
  pays one bound-method call.

Sinks: a bounded :class:`RingBufferSink` is always attached (it backs
``repro top``'s alarm stream and the shard→parent merge) and a
:class:`FileSink` streams JSONL to disk (CLI ``--log PATH``).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "LOG_SCHEMA_VERSION",
    "LEVELS",
    "CONTEXT_KEYS",
    "EventSpec",
    "EVENTS",
    "register_event",
    "RingBufferSink",
    "FileSink",
    "StructuredLogger",
    "NoopLogger",
    "NOOP_LOGGER",
]

#: Version stamped on every record; bump on envelope changes.
LOG_SCHEMA_VERSION = 1

#: Severity levels, least to most severe.
LEVELS = ("debug", "info", "warn", "error")

#: Envelope context keys accepted by every event (all optional).  They
#: identify *where* in the fleet a record came from; per-event payload
#: goes in ``fields`` and must be declared in the event's spec.
CONTEXT_KEYS = ("device_id", "shard", "sim_time_ns", "seed")


@dataclass(frozen=True)
class EventSpec:
    """One registered event: its component and allowed field names."""

    name: str
    component: str
    fields: frozenset
    description: str = ""


#: name → spec for every event the codebase may emit.
EVENTS: Dict[str, EventSpec] = {}


def register_event(
    name: str,
    component: str,
    fields: Iterable[str] = (),
    description: str = "",
) -> EventSpec:
    """Declare an event name and its field set (idempotent re-register
    with an identical spec; conflicting re-register raises)."""
    spec = EventSpec(
        name=name,
        component=component,
        fields=frozenset(fields),
        description=description,
    )
    existing = EVENTS.get(name)
    if existing is not None and existing != spec:
        raise ValueError(f"event {name!r} already registered with a different spec")
    EVENTS[name] = spec
    return spec


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class RingBufferSink:
    """Keeps the most recent ``capacity`` records in memory."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._records: deque = deque(maxlen=capacity)

    def emit(self, record: dict) -> None:
        self._records.append(record)

    def records(
        self, event: Optional[str] = None, events: Optional[Iterable[str]] = None
    ) -> List[dict]:
        """Buffered records, optionally filtered by event name(s)."""
        if event is not None:
            return [r for r in self._records if r.get("event") == event]
        if events is not None:
            wanted = set(events)
            return [r for r in self._records if r.get("event") in wanted]
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)


class FileSink:
    """Streams records as JSON lines; flushed per record so ``tail -f``
    (and ``repro top``) see events as they happen."""

    def __init__(self, path):
        self.path = path
        self._fh = open(path, "w")

    def emit(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=False))
        self._fh.write("\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


# ----------------------------------------------------------------------
# Logger
# ----------------------------------------------------------------------
class StructuredLogger:
    """Emits schema-versioned JSON records to every attached sink."""

    enabled = True

    def __init__(self, ring_capacity: int = 4096):
        self.ring = RingBufferSink(ring_capacity)
        self.sinks: List = [self.ring]
        self.seq = 0

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    # ------------------------------------------------------------------
    def event(
        self,
        event: str,
        *,
        level: str = "info",
        device_id: Optional[str] = None,
        shard: Optional[int] = None,
        sim_time_ns: Optional[int] = None,
        seed: Optional[int] = None,
        trace=None,
        **fields,
    ) -> dict:
        """Emit one event record; returns the record emitted.

        ``event`` must be registered (:func:`register_event`) and every
        keyword in ``fields`` must be declared in its spec — the same
        contract ``tools/check_log_schema.py`` enforces statically.
        ``trace`` accepts a :class:`~repro.obs.context.TraceContext`
        and is flattened into ``trace_id``/``span_id``/``parent_id``.
        """
        spec = EVENTS.get(event)
        if spec is None:
            raise ValueError(f"unregistered log event {event!r}")
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}; choose from {LEVELS}")
        unknown = set(fields) - spec.fields
        if unknown:
            raise ValueError(
                f"event {event!r} does not declare field(s) {sorted(unknown)}; "
                f"declared: {sorted(spec.fields)}"
            )
        record: dict = {
            "schema": LOG_SCHEMA_VERSION,
            "seq": self.seq,
            "event": event,
            "component": spec.component,
            "level": level,
        }
        self.seq += 1
        if device_id is not None:
            record["device_id"] = device_id
        if shard is not None:
            record["shard"] = shard
        if sim_time_ns is not None:
            record["sim_time_ns"] = sim_time_ns
        if seed is not None:
            record["seed"] = seed
        if trace is not None:
            record["trace_id"] = trace.trace_id
            record["span_id"] = trace.span_id
            if trace.parent_id is not None:
                record["parent_id"] = trace.parent_id
        if fields:
            record["fields"] = fields
        for sink in self.sinks:
            sink.emit(record)
        return record

    def emit_record(self, record: dict) -> None:
        """Replay a pre-built record (shard → parent telemetry merge).

        The record keeps its original ``seq``/``shard`` so merged logs
        stay attributable; no validation is repeated — the emitting
        process already enforced the schema.
        """
        for sink in self.sinks:
            sink.emit(record)

    # ------------------------------------------------------------------
    def records(
        self, event: Optional[str] = None, events: Optional[Iterable[str]] = None
    ) -> List[dict]:
        """The ring buffer's view (most recent records, bounded)."""
        return self.ring.records(event=event, events=events)

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __len__(self) -> int:
        return len(self.ring)


class NoopLogger:
    """Do-nothing twin handed out while logging is disabled."""

    enabled = False
    seq = 0

    def add_sink(self, sink) -> None:
        pass

    def event(self, event, **kwargs) -> dict:
        return {}

    def emit_record(self, record: dict) -> None:
        pass

    def records(self, event=None, events=None) -> List[dict]:
        return []

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: The module-level disabled logger (shared singleton).
NOOP_LOGGER = NoopLogger()


# ----------------------------------------------------------------------
# Event registry — every event the codebase emits, in one place.
# docs/observability.md renders this table; tools/check_log_schema.py
# checks call sites against it.
# ----------------------------------------------------------------------
register_event(
    "serve.start", "serve",
    ("devices", "shards", "intervals", "policy", "batch_size"),
    "a fleet serving run begins",
)
register_event(
    "serve.detectors.ready", "serve",
    ("profiles", "cache_hits"),
    "every profile detector is trained/loaded; the fleet can score",
)
register_event(
    "serve.shard.start", "serve",
    ("devices",),
    "one shard worker starts replaying its device streams",
)
register_event(
    "serve.shard.done", "serve",
    ("submitted", "dropped", "block_stalls"),
    "one shard worker finished its streams",
)
register_event(
    "serve.queue.drop", "serve",
    ("interval", "depth"),
    "drop-oldest backpressure evicted a pending record",
)
register_event(
    "serve.queue.stall", "serve",
    ("depth",),
    "block backpressure stalled a producer while a batch drained",
)
register_event(
    "serve.score.skip", "serve",
    ("interval", "reason"),
    "a record's verdict degraded to SKIPPED (fault or non-finite density)",
)
register_event(
    "serve.alarm", "serve",
    ("interval", "streak"),
    "K consecutive sub-θ intervals raised a device alarm",
)
register_event(
    "serve.drift.flag", "serve",
    ("observed_rate", "expected_rate", "suggested_threshold", "samples"),
    "a device's sub-θ rate exceeded the drift policy budget",
)
register_event(
    "serve.report.ready", "serve",
    ("devices", "alarms", "dropped", "fleet_digest"),
    "the merged fleet report was built",
)
register_event(
    "serve.health", "serve",
    ("status", "ready", "phase"),
    "a health/readiness summary was produced",
)
register_event(
    "serve.recalibrate.proposed", "serve",
    ("threshold", "interval"),
    "a drift-suggested threshold entered a canary trial",
)
register_event(
    "serve.recalibrate.committed", "serve",
    ("threshold", "interval", "shadow_flags"),
    "a canary trial passed; the device's threshold was hot-swapped",
)
register_event(
    "serve.recalibrate.rejected", "serve",
    ("threshold", "interval", "shadow_flags"),
    "a canary trial over-flagged in shadow; the proposal was dropped",
)
register_event(
    "bus.publish.lost", "bus",
    ("topic", "key"),
    "a bus.publish fault exhausted its retry; the event was lost",
)
register_event(
    "bus.deliver.lost", "bus",
    ("topic", "key", "subscriber"),
    "a bus.deliver fault exhausted its retry for one subscription",
)
register_event(
    "bus.stall", "bus",
    ("subscriber", "topic", "depth", "timeout_s"),
    "a block-policy publish timed out on a subscriber that stopped "
    "draining (the run aborts with BusStallError)",
)
register_event(
    "bus.subscriber.poisoned", "bus",
    ("subscriber", "topic", "error"),
    "a subscriber callback crashed; it was detached and recorded in "
    "the failures manifest (run degrades, no deadlock)",
)
register_event(
    "runner.grid.start", "runner",
    ("jobs", "workers"),
    "the experiment runner starts a grid",
)
register_event(
    "runner.grid.done", "runner",
    ("completed", "failed", "retries"),
    "the experiment runner finished a grid",
)
register_event(
    "runner.job.retry", "runner",
    ("job", "attempt", "error"),
    "a grid job failed an attempt and will be retried",
)
register_event(
    "runner.job.failed", "runner",
    ("job", "attempts", "error"),
    "a grid job exhausted its retries (lands in the failure manifest)",
)
register_event(
    "runner.job.completed", "runner",
    ("job", "attempts"),
    "a grid job completed",
)

"""Run provenance: the manifest written next to detector/monitor output.

A result file without its provenance is unreproducible: the paper's
protocol fixes seeds, interval counts and region parameters, and a
reproduction must record which of those a given artefact was produced
with.  :class:`RunInfo` captures the command, full platform
configuration, seeds, interval counts, package version, host info and
a metrics snapshot, and serialises them to JSON.

:func:`to_jsonable` is the shared serialiser — it also backs the CLI's
``--json`` output, so heat maps, reports and manifests all round-trip
through the same conversion rules (numpy scalars/arrays, dataclasses,
tuples, paths).
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform as _platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = ["to_jsonable", "host_info", "RunInfo"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into plain JSON-encodable data."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):  # includes np.float64, a float subclass
        return float(obj) if np.isfinite(obj) else repr(float(obj))
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        value = float(obj)
        return value if np.isfinite(value) else repr(value)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(v) for v in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    if hasattr(obj, "__fspath__"):
        return os.fspath(obj)
    return repr(obj)


def host_info() -> dict:
    """Where the run happened (enough to explain wall-clock numbers)."""
    return {
        "platform": _platform.platform(),
        "machine": _platform.machine(),
        "python": _platform.python_version(),
        "implementation": _platform.python_implementation(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


@dataclass
class RunInfo:
    """Everything needed to say *what produced this output file*."""

    command: str
    argv: list = field(default_factory=list)
    seed: Optional[int] = None
    intervals: Optional[int] = None
    config: dict = field(default_factory=dict)
    version: str = ""
    host: dict = field(default_factory=host_info)
    created_unix: float = field(default_factory=time.time)
    metrics: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        command: str,
        config: Any = None,
        seed: Optional[int] = None,
        intervals: Optional[int] = None,
        metrics: Optional[dict] = None,
        **extra: Any,
    ) -> "RunInfo":
        """Build a manifest from live objects (config may be a dataclass)."""
        from repro import __version__  # local import: repro/__init__ is upstream

        return cls(
            command=command,
            argv=list(sys.argv[1:]),
            seed=seed,
            intervals=intervals,
            config=to_jsonable(config) if config is not None else {},
            version=__version__,
            metrics=to_jsonable(metrics or {}),
            extra=to_jsonable(extra),
        )

    def to_dict(self) -> dict:
        return to_jsonable(dataclasses.asdict(self))

    def write(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=False)
            fh.write("\n")

    @classmethod
    def read(cls, path) -> dict:
        """Load a previously written manifest (as a plain dict)."""
        with open(path) as fh:
            return json.load(fh)

"""``repro.obs`` — metrics, logs, traces and run provenance.

The reproduction observes a running system (the Memometer snoops the
fetch stream; the secure core must finish each analysis inside the
monitoring interval), so the reproduction itself must be observable:
where does simulation time go, how many accesses did each component
process, how close is per-interval analysis to its budget?  This
package answers those questions without ever perturbing results —
instrumentation only *reads* wall-clock time and simulated state, and
the test suite asserts bit-identical outputs with observability on and
off.

Four pillars:

* **metrics** (:mod:`.registry`) — process-wide counters, gauges and
  fixed-bucket histograms (now with labelled families and
  reservoir-sampled quantile estimation), wall-clock ``span`` timers,
  OpenMetrics text exposition (:mod:`.openmetrics`) and periodic
  snapshot files (:mod:`.snapshots`) for the ``repro top`` dashboard;
* **structured logs** (:mod:`.log`) — schema-versioned JSON event
  lines with a registered-event vocabulary, ring-buffer and file
  sinks;
* **tracing** (:mod:`.tracer`) — simulator and fleet events with
  simulated-time timestamps, exported as Chrome trace-event JSON
  (open in ``chrome://tracing`` / Perfetto) or JSONL; cross-stage
  correlation via deterministic :class:`~repro.obs.context.TraceContext`
  ids;
* **provenance** (:mod:`.manifest`) — a run manifest recording
  config, seeds, versions, host and a metrics snapshot alongside any
  output artefact.

Usage contract
--------------
Observability is **disabled by default**: the globals below hand out
shared no-op instruments whose methods do nothing, so instrumented hot
loops pay one bound-method call.  Components cache their instruments
at construction, therefore :func:`enable` must run *before* the
instrumented objects (``Platform``, ``MhmDetector``...) are built:

    from repro import obs

    registry, tracer = obs.enable()
    platform = Platform(PlatformConfig(seed=7))   # now instrumented
    ...
    tracer.write_chrome("trace.json")
    print(registry.snapshot())
    obs.disable()

or, scoped (used throughout the tests)::

    with obs.observed() as (registry, tracer):
        ...

:func:`enable` keeps its historical ``(registry, tracer)`` return; the
structured logger installed alongside them is reached with
:func:`logger` (named so the :mod:`repro.obs.log` *module* attribute
is not shadowed).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Optional, Tuple, Union

from .context import TraceContext, trace_args
from .log import (
    EVENTS,
    LOG_SCHEMA_VERSION,
    NOOP_LOGGER,
    EventSpec,
    FileSink,
    NoopLogger,
    RingBufferSink,
    StructuredLogger,
    register_event,
)
from .manifest import RunInfo, host_info, to_jsonable
from .openmetrics import render_openmetrics, write_openmetrics
from .registry import (
    DEFAULT_RESERVOIR_SIZE,
    DEFAULT_TIME_BUCKETS_US,
    NOOP_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NoopMetricsRegistry,
    Span,
    labeled_name,
    log_buckets,
)
from .snapshots import SnapshotWriter, latest_snapshots, load_snapshots
from .timing import Timer, span
from .tracer import NOOP_TRACER, TRACE_CATEGORIES, EventTracer, NoopTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "Span",
    "Timer",
    "span",
    "MetricsRegistry",
    "NoopMetricsRegistry",
    "EventTracer",
    "NoopTracer",
    "StructuredLogger",
    "NoopLogger",
    "RingBufferSink",
    "FileSink",
    "EventSpec",
    "EVENTS",
    "register_event",
    "TraceContext",
    "trace_args",
    "SnapshotWriter",
    "load_snapshots",
    "latest_snapshots",
    "render_openmetrics",
    "write_openmetrics",
    "RunInfo",
    "host_info",
    "to_jsonable",
    "DEFAULT_TIME_BUCKETS_US",
    "DEFAULT_RESERVOIR_SIZE",
    "TRACE_CATEGORIES",
    "LOG_SCHEMA_VERSION",
    "labeled_name",
    "log_buckets",
    "metrics",
    "tracer",
    "logger",
    "is_enabled",
    "enable",
    "disable",
    "observed",
]

_metrics: Union[MetricsRegistry, NoopMetricsRegistry] = NOOP_METRICS
_tracer: Union[EventTracer, NoopTracer] = NOOP_TRACER
_logger: Union[StructuredLogger, NoopLogger] = NOOP_LOGGER


def metrics() -> Union[MetricsRegistry, NoopMetricsRegistry]:
    """The current process-wide metrics registry (no-op when disabled)."""
    return _metrics


def tracer() -> Union[EventTracer, NoopTracer]:
    """The current process-wide event tracer (no-op when disabled)."""
    return _tracer


def logger() -> Union[StructuredLogger, NoopLogger]:
    """The current process-wide structured logger (no-op when disabled)."""
    return _logger


def is_enabled() -> bool:
    return _metrics.enabled or _tracer.enabled or _logger.enabled


def enable(
    with_metrics: bool = True,
    with_tracing: bool = True,
    with_logging: bool = True,
    trace_categories: Optional[Iterable[str]] = None,
) -> Tuple[Union[MetricsRegistry, NoopMetricsRegistry], Union[EventTracer, NoopTracer]]:
    """Install fresh live instruments; returns ``(registry, tracer)``.

    Must be called before constructing the objects to observe — they
    cache their instruments at ``__init__`` time.  The structured
    logger is installed too (reach it via :func:`logger`); pass
    ``with_logging=False`` to leave it disabled.  ``trace_categories``
    restricts the tracer to a category allow-list (the fleet service
    passes ``("serve", "alarm")`` to keep soak traces bounded).
    """
    global _metrics, _tracer, _logger
    if with_metrics:
        _metrics = MetricsRegistry()
    if with_tracing:
        _tracer = EventTracer(categories=trace_categories)
    if with_logging:
        _logger = StructuredLogger()
    return _metrics, _tracer


def disable() -> None:
    """Reset all globals to the shared no-op singletons."""
    global _metrics, _tracer, _logger
    _logger.close()
    _metrics = NOOP_METRICS
    _tracer = NOOP_TRACER
    _logger = NOOP_LOGGER


@contextmanager
def observed(
    with_metrics: bool = True,
    with_tracing: bool = True,
    with_logging: bool = True,
    trace_categories: Optional[Iterable[str]] = None,
):
    """Scoped :func:`enable`; restores the previous globals on exit."""
    global _metrics, _tracer, _logger
    previous = (_metrics, _tracer, _logger)
    try:
        yield enable(
            with_metrics=with_metrics,
            with_tracing=with_tracing,
            with_logging=with_logging,
            trace_categories=trace_categories,
        )
    finally:
        if _logger is not previous[2]:
            _logger.close()
        _metrics, _tracer, _logger = previous

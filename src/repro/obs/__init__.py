"""``repro.obs`` — metrics, event tracing and run provenance.

The reproduction observes a running system (the Memometer snoops the
fetch stream; the secure core must finish each analysis inside the
monitoring interval), so the reproduction itself must be observable:
where does simulation time go, how many accesses did each component
process, how close is per-interval analysis to its budget?  This
package answers those questions without ever perturbing results —
instrumentation only *reads* wall-clock time and simulated state, and
the test suite asserts bit-identical outputs with observability on and
off.

Three pillars:

* **metrics** (:mod:`.registry`) — process-wide counters, gauges and
  fixed-bucket histograms, plus wall-clock ``span`` timers;
* **tracing** (:mod:`.tracer`) — simulator events (interval
  boundaries, buffer swaps, context switches, verdicts, alarms) with
  simulated-time timestamps, exported as Chrome trace-event JSON
  (open in ``chrome://tracing`` / Perfetto) or JSONL;
* **provenance** (:mod:`.manifest`) — a run manifest recording
  config, seeds, versions, host and a metrics snapshot alongside any
  output artefact.

Usage contract
--------------
Observability is **disabled by default**: the globals below hand out
shared no-op instruments whose methods do nothing, so instrumented hot
loops pay one bound-method call.  Components cache their instruments
at construction, therefore :func:`enable` must run *before* the
instrumented objects (``Platform``, ``MhmDetector``...) are built:

    from repro import obs

    registry, tracer = obs.enable()
    platform = Platform(PlatformConfig(seed=7))   # now instrumented
    ...
    tracer.write_chrome("trace.json")
    print(registry.snapshot())
    obs.disable()

or, scoped (used throughout the tests)::

    with obs.observed() as (registry, tracer):
        ...
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple, Union

from .manifest import RunInfo, host_info, to_jsonable
from .registry import (
    DEFAULT_TIME_BUCKETS_US,
    NOOP_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetricsRegistry,
    Span,
)
from .timing import Timer, span
from .tracer import NOOP_TRACER, EventTracer, NoopTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "Timer",
    "span",
    "MetricsRegistry",
    "NoopMetricsRegistry",
    "EventTracer",
    "NoopTracer",
    "RunInfo",
    "host_info",
    "to_jsonable",
    "DEFAULT_TIME_BUCKETS_US",
    "metrics",
    "tracer",
    "is_enabled",
    "enable",
    "disable",
    "observed",
]

_metrics: Union[MetricsRegistry, NoopMetricsRegistry] = NOOP_METRICS
_tracer: Union[EventTracer, NoopTracer] = NOOP_TRACER


def metrics() -> Union[MetricsRegistry, NoopMetricsRegistry]:
    """The current process-wide metrics registry (no-op when disabled)."""
    return _metrics


def tracer() -> Union[EventTracer, NoopTracer]:
    """The current process-wide event tracer (no-op when disabled)."""
    return _tracer


def is_enabled() -> bool:
    return _metrics.enabled or _tracer.enabled


def enable(
    with_metrics: bool = True, with_tracing: bool = True
) -> Tuple[Union[MetricsRegistry, NoopMetricsRegistry], Union[EventTracer, NoopTracer]]:
    """Install fresh live instruments; returns ``(registry, tracer)``.

    Must be called before constructing the objects to observe — they
    cache their instruments at ``__init__`` time.
    """
    global _metrics, _tracer
    if with_metrics:
        _metrics = MetricsRegistry()
    if with_tracing:
        _tracer = EventTracer()
    return _metrics, _tracer


def disable() -> None:
    """Reset both globals to the shared no-op singletons."""
    global _metrics, _tracer
    _metrics = NOOP_METRICS
    _tracer = NOOP_TRACER


@contextmanager
def observed(with_metrics: bool = True, with_tracing: bool = True):
    """Scoped :func:`enable`; restores the previous globals on exit."""
    global _metrics, _tracer
    previous = (_metrics, _tracer)
    try:
        yield enable(with_metrics=with_metrics, with_tracing=with_tracing)
    finally:
        _metrics, _tracer = previous

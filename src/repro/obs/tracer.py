"""Event tracing with Chrome trace-event JSON export.

The simulator's interesting instants — scheduler dispatches, timer
interrupts, Memometer buffer swaps, interval boundaries, detector
verdicts, alarms — are recorded with **simulated-time** timestamps and
exported in the Chrome trace-event format, so a run can be opened
directly in ``chrome://tracing`` or https://ui.perfetto.dev.  A plain
JSONL export (one event object per line) is provided for ad-hoc
scripting (``jq``, pandas).

Timestamp convention: the trace-event ``ts``/``dur`` fields are in
*microseconds* (the format's unit); we emit simulated nanoseconds
divided by 1,000, so one trace second is one simulated second.  Wall
clock never appears in the trace — wall-clock profiling lives in the
metrics registry (:mod:`repro.obs.registry`).

Like the metrics registry, the tracer has a no-op twin handed out when
observability is disabled; emitting against it costs one bound-method
call.  Hot paths that would *build* an args dict can check the class
attribute ``tracer.enabled`` first.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

__all__ = ["TRACE_CATEGORIES", "EventTracer", "NoopTracer", "NOOP_TRACER"]

#: Categories used by the built-in instrumentation (for filtering in
#: the trace viewer).  Free-form strings are also accepted.
TRACE_CATEGORIES = ("sim", "hw", "sched", "detector", "alarm", "serve")


class EventTracer:
    """Collects trace events in memory; exports Chrome JSON / JSONL.

    ``categories`` optionally restricts recording to a category
    allow-list at emit time.  The fleet service uses this to keep a
    60-second soak trace at fleet granularity (``serve``/``alarm``
    events) instead of drowning it in per-tick simulator events.
    """

    enabled = True

    def __init__(
        self,
        process_name: str = "repro",
        categories: Optional[Iterable[str]] = None,
    ):
        self.process_name = process_name
        self.categories = frozenset(categories) if categories is not None else None
        self.events: list[dict] = []

    def _keep(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def instant(
        self,
        name: str,
        time_ns: int,
        category: str = "sim",
        args: Optional[dict] = None,
        track: int = 0,
    ) -> None:
        """A point event (``ph = "i"``) at simulated time ``time_ns``."""
        if not self._keep(category):
            return
        event = {
            "name": name,
            "cat": category,
            "ph": "i",
            "ts": time_ns / 1_000.0,
            "pid": 1,
            "tid": track,
            "s": "t",
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def complete(
        self,
        name: str,
        start_ns: int,
        duration_ns: int,
        category: str = "sim",
        args: Optional[dict] = None,
        track: int = 0,
    ) -> None:
        """A duration event (``ph = "X"``) spanning ``duration_ns``."""
        if not self._keep(category):
            return
        event = {
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": start_ns / 1_000.0,
            "dur": duration_ns / 1_000.0,
            "pid": 1,
            "tid": track,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(self, name: str, time_ns: int, values: dict, track: int = 0) -> None:
        """A counter-track sample (``ph = "C"``) — graphs in the viewer."""
        if not self._keep("sim"):
            return
        self.events.append(
            {
                "name": name,
                "cat": "sim",
                "ph": "C",
                "ts": time_ns / 1_000.0,
                "pid": 1,
                "tid": track,
                "args": dict(values),
            }
        )

    def extend(self, events: Iterable[dict]) -> None:
        """Append pre-built events (shard → parent telemetry merge).

        Shard processes trace against their own tracer and ship the raw
        event dicts back; the parent stitches them into one timeline.
        Events keep their simulated timestamps, so the merged trace is
        a valid single-clock view of the whole fleet.
        """
        self.events.extend(events)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def _metadata_events(self) -> list[dict]:
        return [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": self.process_name},
            }
        ]

    def chrome_trace(self) -> dict:
        """The full trace as a Chrome trace-event JSON object."""
        return {
            "traceEvents": self._metadata_events() + self.events,
            "displayTimeUnit": "ms",
            "otherData": {"clock": "simulated", "source": "repro.obs"},
        }

    def write_chrome(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)
            fh.write("\n")

    def write_jsonl(self, path) -> None:
        with open(path, "w") as fh:
            for event in self.events:
                fh.write(json.dumps(event))
                fh.write("\n")

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class NoopTracer:
    """Do-nothing twin handed out while tracing is disabled."""

    enabled = False
    events: list = []

    def instant(self, name, time_ns, category="sim", args=None, track=0) -> None:
        pass

    def complete(self, name, start_ns, duration_ns, category="sim", args=None, track=0) -> None:
        pass

    def counter(self, name, time_ns, values, track=0) -> None:
        pass

    def extend(self, events) -> None:
        pass

    def chrome_trace(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def write_chrome(self, path) -> None:
        raise RuntimeError("tracing is disabled; enable repro.obs before running")

    def write_jsonl(self, path) -> None:
        raise RuntimeError("tracing is disabled; enable repro.obs before running")

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: The module-level disabled tracer (shared singleton).
NOOP_TRACER = NoopTracer()

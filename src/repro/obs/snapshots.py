"""Periodic metrics snapshots: the serve soak's telemetry time series.

A final metrics manifest tells you *that* a 60-second soak drifted —
not *when*.  :class:`SnapshotWriter` writes the live registry to disk
every N fleet steps, so a run leaves a time series:

* ``shard0-000003.metrics.json`` — the registry snapshot plus metadata
  (shard, sequence number, fleet step, simulated time) and the most
  recent alarm/drift/drop log events from the ring buffer (the feed
  for ``repro top``'s alarm stream);
* ``shard0-000003.om`` — the same snapshot as OpenMetrics text
  (:mod:`repro.obs.openmetrics`), scrape-ready.

Writes are atomic (tmp + rename) so a concurrently running
``repro top`` never reads a torn file.  Each shard writes its own
series — per-shard files are exactly what the dashboard wants
(per-shard throughput and latency quantiles), and no cross-process
coordination is needed.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path
from typing import Dict, List, Optional

from .manifest import to_jsonable
from .openmetrics import write_openmetrics

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "EVENT_FEED",
    "SnapshotWriter",
    "load_snapshots",
    "latest_snapshots",
]

SNAPSHOT_SCHEMA_VERSION = 1

#: Log events surfaced in each snapshot's ``recent_events`` feed.
EVENT_FEED = (
    "serve.alarm",
    "serve.drift.flag",
    "serve.queue.drop",
    "serve.score.skip",
)

#: Most recent feed events carried per snapshot.
FEED_LIMIT = 32

_SNAPSHOT_NAME = re.compile(r"^shard(?P<shard>\d+)-(?P<seq>\d+)\.metrics\.json$")


class SnapshotWriter:
    """Writes the current registry to ``directory`` every ``interval``
    fleet steps (plus a final snapshot at end of run)."""

    def __init__(
        self,
        directory,
        shard: int = 0,
        interval: Optional[int] = None,
        meta: Optional[dict] = None,
    ):
        if interval is not None and interval < 1:
            raise ValueError("snapshot interval must be >= 1 step (or None)")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shard = shard
        self.interval = interval
        self.meta = dict(meta or {})
        self.seq = 0

    def maybe_write(self, step: int, sim_time_ns: int) -> bool:
        """Write if ``step`` (1-based) lands on the snapshot cadence."""
        if self.interval is None or step % self.interval != 0:
            return False
        self.write(step=step, sim_time_ns=sim_time_ns)
        return True

    def write(self, step: int, sim_time_ns: int, final: bool = False) -> Path:
        from . import logger, metrics  # late: resolve the live globals

        self.seq += 1
        payload = {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "shard": self.shard,
            "seq": self.seq,
            "step": step,
            "sim_time_ns": int(sim_time_ns),
            "final": final,
            "written_unix": time.time(),
            "meta": self.meta,
            "metrics": to_jsonable(metrics().snapshot()),
            "recent_events": logger().records(events=EVENT_FEED)[-FEED_LIMIT:],
        }
        stem = f"shard{self.shard}-{self.seq:06d}"
        json_path = self.directory / f"{stem}.metrics.json"
        self._atomic_write(json_path, json.dumps(payload, sort_keys=False))
        om_path = self.directory / f"{stem}.om"
        tmp = om_path.with_suffix(".om.tmp")
        write_openmetrics(tmp, payload["metrics"])
        os.replace(tmp, om_path)
        return json_path

    def write_final(self, step: int, sim_time_ns: int) -> Path:
        return self.write(step=step, sim_time_ns=sim_time_ns, final=True)

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text + "\n")
        os.replace(tmp, path)


# ----------------------------------------------------------------------
# Readers (repro top, CI assertions)
# ----------------------------------------------------------------------
def load_snapshots(directory) -> Dict[int, List[dict]]:
    """All snapshots under ``directory``: shard → list sorted by seq.

    Unreadable/torn files are skipped — the writer is atomic, but a
    snapshot directory may be copied mid-run.
    """
    root = Path(directory)
    series: Dict[int, List[dict]] = {}
    if not root.is_dir():
        return series
    for entry in sorted(root.iterdir()):
        match = _SNAPSHOT_NAME.match(entry.name)
        if not match:
            continue
        try:
            payload = json.loads(entry.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        series.setdefault(int(match.group("shard")), []).append(payload)
    for snapshots in series.values():
        snapshots.sort(key=lambda s: s.get("seq", 0))
    return series


def latest_snapshots(directory) -> Dict[int, dict]:
    """shard → its most recent snapshot."""
    return {
        shard: snapshots[-1]
        for shard, snapshots in load_snapshots(directory).items()
        if snapshots
    }

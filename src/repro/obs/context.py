"""Deterministic trace contexts: one trace per device-interval.

A fleet run scores tens of thousands of device-intervals through four
stages (fleet simulator → router → shard worker → report).  To debug
one of them end-to-end you need every stage's telemetry to carry the
same correlation id — and for the reproduction's determinism story,
that id must be a *pure function of the run*, not a random UUID.

:class:`TraceContext` derives everything from ``(seed, device_id,
interval_index)`` with sha256:

* ``trace_id`` — 32 hex chars identifying the device-interval's whole
  journey;
* ``span_id`` — 16 hex chars identifying one stage's span within the
  trace; children derive from ``(trace_id, parent span_id, name)``, so
  the span *tree* is reproducible too (the telemetry determinism suite
  runs the same serve twice in fresh interpreters and asserts identical
  trace ids and parent/child links).

Contexts ride on :class:`~repro.sim.fleet.IntervalRecord` (plain
frozen dataclass — picklable, crosses shard process boundaries) and
are flattened into trace-event ``args`` and structured-log records.
Span *status* records how the stage ended (``ok`` / ``anomalous`` /
``skipped`` / ``dropped``), with fault-site firings from
:mod:`repro.faults` surfacing as ``skipped`` + a reason.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

__all__ = ["TraceContext", "trace_args"]

_ROOT_SPAN_NAME = "interval"


def _digest(payload: str, length: int) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()[:length]


@dataclass(frozen=True)
class TraceContext:
    """One span's identity within a deterministic trace."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    name: str = _ROOT_SPAN_NAME

    @classmethod
    def for_interval(
        cls, seed: int, device_id: str, interval_index: int
    ) -> "TraceContext":
        """The root span of one device-interval's journey.

        ``trace_id`` is sha256 over ``(seed, device_id, interval)`` —
        two runs of the same fleet seed assign every record the same
        trace, regardless of shard count or interleaving.
        """
        trace_id = _digest(f"{seed}:{device_id}:{interval_index}", 32)
        span_id = _digest(f"{trace_id}:{_ROOT_SPAN_NAME}", 16)
        return cls(trace_id=trace_id, span_id=span_id, parent_id=None)

    def child(self, name: str) -> "TraceContext":
        """A child span for stage ``name`` (deterministic id)."""
        span_id = _digest(f"{self.trace_id}:{self.span_id}:{name}", 16)
        return TraceContext(
            trace_id=self.trace_id,
            span_id=span_id,
            parent_id=self.span_id,
            name=name,
        )


def trace_args(
    context: Optional[TraceContext],
    status: Optional[str] = None,
    **extra,
) -> dict:
    """Trace-event ``args`` for a span: ids, status, extras.

    Shared by every stage so trace events stay uniform — a Perfetto
    query on ``args.trace_id`` reconstructs the full journey.
    """
    args = dict(extra)
    if context is not None:
        args["trace_id"] = context.trace_id
        args["span_id"] = context.span_id
        if context.parent_id is not None:
            args["parent_id"] = context.parent_id
    if status is not None:
        args["status"] = status
    return args

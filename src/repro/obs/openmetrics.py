"""OpenMetrics / Prometheus text exposition for metric snapshots.

Converts a :meth:`~repro.obs.registry.MetricsRegistry.snapshot` into
the OpenMetrics text format, so the fleet service's periodic snapshot
files can be scraped, diffed, or loaded into any Prometheus-compatible
tool without a client-library dependency (the container deliberately
has none).

Mapping rules:

* metric names are prefixed (default ``repro_``) and sanitised — dots
  and other illegal characters become underscores, so the counter
  ``serve.queue.dropped`` exports as ``repro_serve_queue_dropped``;
* counters gain the mandated ``_total`` suffix;
* labelled family children (``name{shard="0"}`` registry keys) are
  regrouped under one exposition family with proper label sets;
* histograms export cumulative ``_bucket{le="…"}`` series (OpenMetrics
  buckets are cumulative; the registry's are per-bucket) plus
  ``_sum`` / ``_count``, and estimated quantiles ride along as a
  ``_p50/_p95/_p99`` gauge family — Prometheus summaries are
  client-computed too, so exporting them is idiomatic;
* the exposition ends with the required ``# EOF`` marker.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

__all__ = ["render_openmetrics", "write_openmetrics"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABELED = re.compile(r"^(?P<family>[^{]+)\{(?P<labels>.*)\}$")
_LABEL_PAIR = re.compile(r'(?P<key>[^=,]+)="(?P<value>[^"]*)"')


def _sanitize(name: str) -> str:
    clean = _NAME_OK.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _split_name(name: str, data: dict) -> Tuple[str, Dict[str, str]]:
    """Resolve a snapshot key into (family, labels)."""
    labels = data.get("labels")
    family = data.get("family")
    if family and labels is not None:
        return family, dict(labels)
    match = _LABELED.match(name)
    if match:
        parsed = {
            m.group("key"): m.group("value")
            for m in _LABEL_PAIR.finditer(match.group("labels"))
        }
        return match.group("family"), parsed
    return name, {}


def _label_str(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{_sanitize(k)}="{_escape_label(str(merged[k]))}"' for k in sorted(merged)
    )
    return "{" + inner + "}"


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        return repr(value)
    return str(value)


def render_openmetrics(snapshot: dict, prefix: str = "repro") -> str:
    """The snapshot as OpenMetrics text (ends with ``# EOF``)."""
    families: Dict[str, List[Tuple[Dict[str, str], dict]]] = {}
    kinds: Dict[str, str] = {}
    for name in sorted(snapshot):
        data = snapshot[name]
        family, labels = _split_name(name, data)
        families.setdefault(family, []).append((labels, data))
        kinds[family] = data.get("type", "untyped")

    lines: List[str] = []
    for family in sorted(families):
        kind = kinds[family]
        metric = f"{_sanitize(prefix)}_{_sanitize(family)}" if prefix else _sanitize(family)
        if kind == "counter":
            lines.append(f"# TYPE {metric} counter")
            for labels, data in families[family]:
                lines.append(
                    f"{metric}_total{_label_str(labels)} "
                    f"{_format_value(data.get('value', 0))}"
                )
        elif kind == "gauge":
            lines.append(f"# TYPE {metric} gauge")
            for labels, data in families[family]:
                lines.append(
                    f"{metric}{_label_str(labels)} "
                    f"{_format_value(data.get('value', 0.0))}"
                )
        elif kind == "histogram":
            lines.append(f"# TYPE {metric} histogram")
            for labels, data in families[family]:
                cumulative = 0
                for bucket in data.get("buckets", []):
                    cumulative += int(bucket.get("count", 0))
                    le = bucket.get("le")
                    le_text = "+Inf" if le == "inf" else _format_value(float(le))
                    lines.append(
                        f"{metric}_bucket{_label_str(labels, {'le': le_text})} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{metric}_sum{_label_str(labels)} "
                    f"{_format_value(float(data.get('total', 0.0)))}"
                )
                lines.append(
                    f"{metric}_count{_label_str(labels)} "
                    f"{int(data.get('count', 0))}"
                )
            quantile_rows = [
                (labels, data)
                for labels, data in families[family]
                if data.get("quantiles")
            ]
            if quantile_rows:
                qmetric = f"{metric}_quantile"
                lines.append(f"# TYPE {qmetric} gauge")
                for labels, data in quantile_rows:
                    for pname in sorted(data["quantiles"]):
                        lines.append(
                            f"{qmetric}"
                            f"{_label_str(labels, {'quantile': pname})} "
                            f"{_format_value(float(data['quantiles'][pname]))}"
                        )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(path, snapshot: dict, prefix: str = "repro") -> None:
    with open(path, "w") as fh:
        fh.write(render_openmetrics(snapshot, prefix=prefix))

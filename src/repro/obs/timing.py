"""Wall-clock timing helpers over ``time.perf_counter_ns``.

Two layers:

* :class:`Timer` — a bare stopwatch context manager, independent of
  any registry (useful in benchmarks and scripts);
* :func:`span` — times a block into the *current* global metrics
  registry under a named timer histogram.  The registry is looked up
  at ``__enter__`` time, so a ``span`` written inside library code is
  a no-op until observability is enabled and costs one method call
  thereafter.

All durations are reported in microseconds, matching the metric
convention of :mod:`repro.obs.registry`.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Timer", "span"]


class Timer:
    """A stopwatch: ``with Timer() as t: ...; t.elapsed_us``."""

    __slots__ = ("_start_ns", "_stop_ns")

    def __init__(self):
        self._start_ns: Optional[int] = None
        self._stop_ns: Optional[int] = None

    def start(self) -> "Timer":
        self._start_ns = time.perf_counter_ns()
        self._stop_ns = None
        return self

    def stop(self) -> float:
        if self._start_ns is None:
            raise RuntimeError("timer was never started")
        self._stop_ns = time.perf_counter_ns()
        return self.elapsed_us

    @property
    def running(self) -> bool:
        return self._start_ns is not None and self._stop_ns is None

    @property
    def elapsed_ns(self) -> int:
        if self._start_ns is None:
            return 0
        end = self._stop_ns if self._stop_ns is not None else time.perf_counter_ns()
        return end - self._start_ns

    @property
    def elapsed_us(self) -> float:
        return self.elapsed_ns / 1_000.0

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def span(name: str):
    """Time a block into the current global registry's ``name`` timer.

    ``with span("train.pca"): ...`` records the block's wall-clock
    duration (µs) into the histogram ``name`` of whatever registry is
    active when the block is entered.
    """
    from . import metrics  # late import: resolves the live registry

    return metrics().span(name)

"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

The observability layer must never perturb what it observes — the
Memometer/secure-core pipeline is bit-for-bit deterministic and the
property tests hold it to that.  Two consequences shape this module:

* instruments only *read* wall-clock time and never touch any RNG or
  simulated state;
* when observability is disabled, every instrument is a shared no-op
  singleton whose methods do nothing, so an instrumented hot loop pays
  one bound-method call and nothing else (no branching, no dict
  lookups, no allocation).

Components grab their instruments **once at construction** (e.g. the
Memometer caches its counters in ``__init__``), so observability must
be enabled *before* the instrumented objects are built — the CLI does
this, and :func:`repro.obs.observed` scopes it for tests.

Instruments are registered by name: asking a registry twice for
``counter("x")`` returns the same object, which is what lets several
components share an aggregate and lets :meth:`MetricsRegistry.snapshot`
export everything at once.
"""

from __future__ import annotations

import bisect
import math
import time
from typing import Dict, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "MetricsRegistry",
    "NoopMetricsRegistry",
    "NOOP_METRICS",
    "DEFAULT_TIME_BUCKETS_US",
]

#: Default histogram buckets for wall-clock timings, in microseconds.
#: Spans 10 µs (one GMM density evaluation) to 100 s (a full-scale
#: training run), roughly geometric.
DEFAULT_TIME_BUCKETS_US = (
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    250_000.0,
    500_000.0,
    1_000_000.0,
    10_000_000.0,
    100_000_000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")
    enabled = True

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (queue depth, budget, best likelihood)."""

    __slots__ = ("name", "value")
    enabled = True

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A fixed-bucket histogram with running count/sum/min/max.

    ``buckets`` are inclusive upper bounds; one implicit overflow
    bucket (``le = inf``) catches everything above the last bound.
    An observation lands in the first bucket whose bound is >= the
    value.  Bounds are sorted at construction.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")
    enabled = True

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_US):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(self.bounds)) != len(self.bounds):
            raise ValueError("bucket bounds must be distinct")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile: the upper bound of the bucket holding
        the q-th observation (``inf`` if it landed in overflow)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            cumulative += n
            if cumulative >= target:
                return self.bounds[i] if i < len(self.bounds) else math.inf
        return math.inf

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": [
                {"le": bound, "count": n}
                for bound, n in zip(self.bounds, self.bucket_counts)
            ]
            + [{"le": "inf", "count": self.bucket_counts[-1]}],
        }


class Span:
    """Context manager timing a phase into a histogram (microseconds).

    Re-entrant-safe by being cheap to construct; one is built per
    ``with`` block via :meth:`MetricsRegistry.span`.
    """

    __slots__ = ("histogram", "_start_ns", "elapsed_us")

    def __init__(self, histogram: Histogram):
        self.histogram = histogram
        self._start_ns = 0
        self.elapsed_us = 0.0

    def __enter__(self) -> "Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed_us = (time.perf_counter_ns() - self._start_ns) / 1_000.0
        self.histogram.observe(self.elapsed_us)


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments plus a one-call JSON-able snapshot."""

    enabled = True

    def __init__(self):
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, factory, kind: type) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is already a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_US
    ) -> Histogram:
        return self._get(name, lambda: Histogram(name, buckets), Histogram)

    def timer(self, name: str) -> Histogram:
        """A histogram of wall-clock durations in microseconds."""
        return self.histogram(name, DEFAULT_TIME_BUCKETS_US)

    def span(self, name: str) -> Span:
        """``with registry.span("train.pca"): ...`` — times the block."""
        return Span(self.timer(name))

    def names(self) -> list:
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def snapshot(self) -> dict:
        """All instruments as plain JSON-able data, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }


# ----------------------------------------------------------------------
# No-op implementation (observability disabled)
# ----------------------------------------------------------------------
class _NoopCounter:
    __slots__ = ()
    value = 0
    enabled = False

    def inc(self, amount: int = 1) -> None:
        pass

    def snapshot(self) -> dict:
        return {"type": "counter", "value": 0}


class _NoopGauge:
    __slots__ = ()
    value = 0.0
    enabled = False

    def set(self, value: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": 0.0}


class _NoopHistogram:
    __slots__ = ()
    enabled = False
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {"type": "histogram", "count": 0}


class _NoopSpan:
    __slots__ = ()
    elapsed_us = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_COUNTER = _NoopCounter()
_NOOP_GAUGE = _NoopGauge()
_NOOP_HISTOGRAM = _NoopHistogram()
_NOOP_SPAN = _NoopSpan()


class NoopMetricsRegistry:
    """Hands out shared do-nothing instruments; zero state, zero cost."""

    enabled = False

    def counter(self, name: str) -> _NoopCounter:
        return _NOOP_COUNTER

    def gauge(self, name: str) -> _NoopGauge:
        return _NOOP_GAUGE

    def histogram(self, name: str, buckets=DEFAULT_TIME_BUCKETS_US) -> _NoopHistogram:
        return _NOOP_HISTOGRAM

    def timer(self, name: str) -> _NoopHistogram:
        return _NOOP_HISTOGRAM

    def span(self, name: str) -> _NoopSpan:
        return _NOOP_SPAN

    def names(self) -> list:
        return []

    def get(self, name: str) -> None:
        return None

    def snapshot(self) -> dict:
        return {}


#: The module-level disabled registry (shared singleton).
NOOP_METRICS = NoopMetricsRegistry()

"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

The observability layer must never perturb what it observes — the
Memometer/secure-core pipeline is bit-for-bit deterministic and the
property tests hold it to that.  Two consequences shape this module:

* instruments only *read* wall-clock time and never touch any RNG or
  simulated state;
* when observability is disabled, every instrument is a shared no-op
  singleton whose methods do nothing, so an instrumented hot loop pays
  one bound-method call and nothing else (no branching, no dict
  lookups, no allocation).

Components grab their instruments **once at construction** (e.g. the
Memometer caches its counters in ``__init__``), so observability must
be enabled *before* the instrumented objects are built — the CLI does
this, and :func:`repro.obs.observed` scopes it for tests.

Instruments are registered by name: asking a registry twice for
``counter("x")`` returns the same object, which is what lets several
components share an aggregate and lets :meth:`MetricsRegistry.snapshot`
export everything at once.
"""

from __future__ import annotations

import bisect
import math
import random
import time
from typing import Dict, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "MetricFamily",
    "MetricsRegistry",
    "NoopMetricsRegistry",
    "NOOP_METRICS",
    "DEFAULT_TIME_BUCKETS_US",
    "DEFAULT_RESERVOIR_SIZE",
    "log_buckets",
    "labeled_name",
]

#: Default histogram buckets for wall-clock timings, in microseconds.
#: Spans 10 µs (one GMM density evaluation) to 100 s (a full-scale
#: training run), roughly geometric.
DEFAULT_TIME_BUCKETS_US = (
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    250_000.0,
    500_000.0,
    1_000_000.0,
    10_000_000.0,
    100_000_000.0,
)

#: Raw observations retained per histogram for quantile estimation;
#: beyond this, reservoir sampling keeps a uniform subsample so memory
#: stays flat over arbitrarily long soaks (regression-tested).
DEFAULT_RESERVOIR_SIZE = 512


def log_buckets(lo: float, hi: float, per_decade: int = 4) -> tuple:
    """Geometric bucket bounds from ``lo`` to at least ``hi``.

    ``per_decade`` bounds per power of ten — the standard shape for
    latency histograms, where relative (not absolute) resolution
    matters.  Example: ``log_buckets(10, 1e6, 2)`` → 10, ~31.6, 100 …
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    factor = 10.0 ** (1.0 / per_decade)
    bounds = [float(lo)]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * factor)
    return tuple(bounds)


def labeled_name(family: str, labels: Dict[str, object]) -> str:
    """The registry key for a family child: ``name{k="v",...}``, keys
    sorted so the encoding (and snapshot order) is deterministic."""
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{family}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "labels", "family")
    enabled = True

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.labels: Optional[dict] = None
        self.family: Optional[str] = None

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        data = {"type": "counter", "value": self.value}
        if self.labels is not None:
            data["labels"] = dict(self.labels)
            data["family"] = self.family
        return data


class Gauge:
    """A point-in-time value (queue depth, budget, best likelihood)."""

    __slots__ = ("name", "value", "labels", "family")
    enabled = True

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self.labels: Optional[dict] = None
        self.family: Optional[str] = None

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        data = {"type": "gauge", "value": self.value}
        if self.labels is not None:
            data["labels"] = dict(self.labels)
            data["family"] = self.family
        return data


class Histogram:
    """A fixed-bucket histogram with running count/sum/min/max.

    ``buckets`` are inclusive upper bounds; one implicit overflow
    bucket (``le = inf``) catches everything above the last bound.
    An observation lands in the first bucket whose bound is >= the
    value.  Bounds are sorted at construction.

    For quantile *estimation* (p50/p95/p99 in ``repro top`` and the
    OpenMetrics snapshots) a bounded reservoir of raw observations is
    kept alongside the buckets: exact below
    :data:`DEFAULT_RESERVOIR_SIZE` observations, a uniform Algorithm-R
    subsample beyond it — so memory stays flat over week-long soaks.
    The reservoir RNG is private (seeded from the metric name) and
    never touches numpy's or the simulator's random state.
    """

    __slots__ = (
        "name", "bounds", "bucket_counts", "count", "total", "min", "max",
        "reservoir_size", "_samples", "_rng", "labels", "family",
    )
    enabled = True

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_US,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
    ):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.name = name
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(self.bounds)) != len(self.bounds):
            raise ValueError("bucket bounds must be distinct")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.reservoir_size = reservoir_size
        self._samples: list = []
        self._rng: Optional[random.Random] = None
        self.labels: Optional[dict] = None
        self.family: Optional[str] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # Reservoir (Algorithm R): keep every observation until the
        # reservoir fills, then replace a uniform-random slot with
        # probability size/count — an unbiased fixed-memory subsample.
        if len(self._samples) < self.reservoir_size:
            self._samples.append(value)
        else:
            if self._rng is None:
                # Seeded from the name (sha512 under the hood), so the
                # subsample is process-independent and hash-seed-proof.
                self._rng = random.Random(self.name)
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self._samples[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile: the upper bound of the bucket holding
        the q-th observation (``inf`` if it landed in overflow)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            cumulative += n
            if cumulative >= target:
                return self.bounds[i] if i < len(self.bounds) else math.inf
        return math.inf

    def estimate_quantile(self, q: float) -> float:
        """Best-effort q-quantile from the raw-sample reservoir.

        Exact while ``count <= reservoir_size``; an unbiased estimate
        after.  Falls back to the bucket approximation for histograms
        reconstructed without samples (e.g. merged shard snapshots).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._samples:
            return self.quantile(q)
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        # Linear interpolation between closest ranks.
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def quantiles(self, qs: Sequence[float] = (0.5, 0.95, 0.99)) -> dict:
        """``{"p50": ..., "p95": ..., "p99": ...}`` via the reservoir."""
        return {f"p{round(q * 100)}": self.estimate_quantile(q) for q in qs}

    def snapshot(self) -> dict:
        data = {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": [
                {"le": bound, "count": n}
                for bound, n in zip(self.bounds, self.bucket_counts)
            ]
            + [{"le": "inf", "count": self.bucket_counts[-1]}],
        }
        if self.count:
            data["quantiles"] = self.quantiles()
        if self.labels is not None:
            data["labels"] = dict(self.labels)
            data["family"] = self.family
        return data


class Span:
    """Context manager timing a phase into a histogram (microseconds).

    Re-entrant-safe by being cheap to construct; one is built per
    ``with`` block via :meth:`MetricsRegistry.span`.
    """

    __slots__ = ("histogram", "_start_ns", "elapsed_us")

    def __init__(self, histogram: Histogram):
        self.histogram = histogram
        self._start_ns = 0
        self.elapsed_us = 0.0

    def __enter__(self) -> "Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed_us = (time.perf_counter_ns() - self._start_ns) / 1_000.0
        self.histogram.observe(self.elapsed_us)


Instrument = Union[Counter, Gauge, Histogram]


class MetricFamily:
    """A named metric with labels: ``family.labels(shard="0")`` hands
    out (and memoises) one child instrument per label combination.

    Children live in the owning registry under the encoded name
    ``name{k="v",...}`` so one :meth:`MetricsRegistry.snapshot` call
    exports every labelled series, and the OpenMetrics writer can group
    them back into a single exposition family.
    """

    def __init__(self, registry, name, label_names, factory, kind):
        self.registry = registry
        self.name = name
        self.label_names = tuple(sorted(label_names))
        if not self.label_names:
            raise ValueError("a metric family needs at least one label name")
        self._factory = factory
        self._kind = kind

    def labels(self, **labels) -> Instrument:
        if tuple(sorted(labels)) != self.label_names:
            raise ValueError(
                f"family {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = labeled_name(self.name, labels)
        instrument = self.registry._get(key, lambda: self._factory(key), self._kind)
        if instrument.labels is None:
            instrument.labels = {k: str(v) for k, v in labels.items()}
            instrument.family = self.name
        return instrument


class MetricsRegistry:
    """Named instruments plus a one-call JSON-able snapshot."""

    enabled = True

    def __init__(self):
        self._instruments: Dict[str, Instrument] = {}
        self._families: Dict[str, MetricFamily] = {}

    def _get(self, name: str, factory, kind: type) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is already a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_US
    ) -> Histogram:
        return self._get(name, lambda: Histogram(name, buckets), Histogram)

    def timer(self, name: str) -> Histogram:
        """A histogram of wall-clock durations in microseconds."""
        return self.histogram(name, DEFAULT_TIME_BUCKETS_US)

    def span(self, name: str) -> Span:
        """``with registry.span("train.pca"): ...`` — times the block."""
        return Span(self.timer(name))

    # -- labelled families ---------------------------------------------
    def _family(self, name, label_names, factory, kind) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(self, name, label_names, factory, kind)
            self._families[name] = family
        elif family._kind is not kind or family.label_names != tuple(
            sorted(label_names)
        ):
            raise TypeError(
                f"family {name!r} already registered as "
                f"{family._kind.__name__}{family.label_names}"
            )
        return family

    def counter_family(self, name: str, label_names: Sequence[str]) -> MetricFamily:
        return self._family(name, label_names, Counter, Counter)

    def gauge_family(self, name: str, label_names: Sequence[str]) -> MetricFamily:
        return self._family(name, label_names, Gauge, Gauge)

    def histogram_family(
        self,
        name: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_US,
    ) -> MetricFamily:
        return self._family(
            name, label_names, lambda key: Histogram(key, buckets), Histogram
        )

    def names(self) -> list:
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def snapshot(self) -> dict:
        """All instruments as plain JSON-able data, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    # -- cross-process merge -------------------------------------------
    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The serving layer runs shard workers in separate processes;
        each returns its final snapshot and the parent merges them here
        so ``--metrics-out`` manifests (and ``repro stats``) see the
        whole fleet.  Counters add, gauges take the incoming value
        (last write wins), histograms merge bucket-by-bucket.  The
        raw-sample reservoir does not cross the process boundary, so
        merged histogram quantiles degrade to the bucket approximation.
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                instrument = self.counter(name)
                instrument.inc(int(data.get("value", 0)))
            elif kind == "gauge":
                instrument = self.gauge(name)
                instrument.set(data.get("value", 0.0))
            elif kind == "histogram":
                incoming = data.get("buckets") or []
                bounds = tuple(
                    entry["le"] for entry in incoming if entry["le"] != "inf"
                )
                instrument = self.histogram(
                    name, bounds or DEFAULT_TIME_BUCKETS_US
                )
                if bounds and instrument.bounds != tuple(
                    float(b) for b in bounds
                ):
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ across "
                        "snapshots; cannot merge"
                    )
                counts = [entry["count"] for entry in incoming]
                # ``buckets`` lists every bound once plus the overflow
                # entry; fold both into our (len(bounds)+1)-wide counts.
                for i, n in enumerate(counts[: len(instrument.bucket_counts)]):
                    instrument.bucket_counts[i] += int(n)
                instrument.count += int(data.get("count", 0))
                instrument.total += float(data.get("total", 0.0))
                if data.get("min") is not None:
                    instrument.min = min(instrument.min, float(data["min"]))
                if data.get("max") is not None:
                    instrument.max = max(instrument.max, float(data["max"]))
            else:
                continue
            if data.get("labels") is not None and instrument.labels is None:
                instrument.labels = dict(data["labels"])
                instrument.family = data.get("family")


# ----------------------------------------------------------------------
# No-op implementation (observability disabled)
# ----------------------------------------------------------------------
class _NoopCounter:
    __slots__ = ()
    value = 0
    enabled = False

    def inc(self, amount: int = 1) -> None:
        pass

    def snapshot(self) -> dict:
        return {"type": "counter", "value": 0}


class _NoopGauge:
    __slots__ = ()
    value = 0.0
    enabled = False

    def set(self, value: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": 0.0}


class _NoopHistogram:
    __slots__ = ()
    enabled = False
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def estimate_quantile(self, q: float) -> float:
        return 0.0

    def quantiles(self, qs=(0.5, 0.95, 0.99)) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {"type": "histogram", "count": 0}


class _NoopSpan:
    __slots__ = ()
    elapsed_us = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class _NoopFamily:
    __slots__ = ("_instrument",)
    enabled = False

    def __init__(self, instrument):
        self._instrument = instrument

    def labels(self, **labels):
        return self._instrument


_NOOP_COUNTER = _NoopCounter()
_NOOP_GAUGE = _NoopGauge()
_NOOP_HISTOGRAM = _NoopHistogram()
_NOOP_SPAN = _NoopSpan()
_NOOP_COUNTER_FAMILY = _NoopFamily(_NOOP_COUNTER)
_NOOP_GAUGE_FAMILY = _NoopFamily(_NOOP_GAUGE)
_NOOP_HISTOGRAM_FAMILY = _NoopFamily(_NOOP_HISTOGRAM)


class NoopMetricsRegistry:
    """Hands out shared do-nothing instruments; zero state, zero cost."""

    enabled = False

    def counter(self, name: str) -> _NoopCounter:
        return _NOOP_COUNTER

    def gauge(self, name: str) -> _NoopGauge:
        return _NOOP_GAUGE

    def histogram(self, name: str, buckets=DEFAULT_TIME_BUCKETS_US) -> _NoopHistogram:
        return _NOOP_HISTOGRAM

    def timer(self, name: str) -> _NoopHistogram:
        return _NOOP_HISTOGRAM

    def span(self, name: str) -> _NoopSpan:
        return _NOOP_SPAN

    def counter_family(self, name: str, label_names) -> _NoopFamily:
        return _NOOP_COUNTER_FAMILY

    def gauge_family(self, name: str, label_names) -> _NoopFamily:
        return _NOOP_GAUGE_FAMILY

    def histogram_family(
        self, name: str, label_names, buckets=DEFAULT_TIME_BUCKETS_US
    ) -> _NoopFamily:
        return _NOOP_HISTOGRAM_FAMILY

    def names(self) -> list:
        return []

    def get(self, name: str) -> None:
        return None

    def snapshot(self) -> dict:
        return {}

    def merge_snapshot(self, snapshot: dict) -> None:
        pass


#: The module-level disabled registry (shared singleton).
NOOP_METRICS = NoopMetricsRegistry()

"""Shard workers: batched scoring of interleaved device streams.

A :class:`ShardWorker` owns a subset of the fleet's devices and scores
their interval records in cross-device batches through the fused
fleet-scoring kernel — one :func:`repro.kernels.fleet_score_batch`
call per profile group chains projection, GMM density, context
nearest-centroid scoring and phase-residual extraction over every
record in the batch, regardless of which device produced it.

**Fixed-shape batching.** BLAS matrix products are not row-separable:
``(A[:n] @ B)`` and ``(A @ B)[:n]`` can differ in the last ulp, and
the difference depends on the batch's *row count*.  Naive cross-device
batching would therefore make a device's log-densities depend on which
other records happened to share its batch — breaking the serial ≡
sharded bit-identity contract.  :func:`batched_log_densities` instead
pads every batch to a fixed ``pad_to`` row count with zero rows before
calling the kernels.  At a fixed matrix shape, each row's result is
independent of the other rows' *contents and order* (verified by the
serve determinism suite), so every record's score is a pure function
of its own MHM vector — whatever batch, shard or interleaving it
arrived through.

Per-record degradation mirrors the single-device
:class:`~repro.pipeline.monitoring.OnlineMonitor`: an injected
``serve.score`` fault or a non-finite density degrades that record's
verdict to SKIPPED and the stream continues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .. import faults, kernels, obs
from ..learn.contexts import ContextDetector
from ..learn.detector import MhmDetector
from ..learn.ensemble import EnsembleConfig
from ..obs.context import trace_args
from ..sim.fleet import DeviceSpec, IntervalRecord
from .drift import DriftMonitor
from .report import DeviceReport, device_digest

__all__ = [
    "MODALITIES",
    "batched_log_densities",
    "DeviceState",
    "ScoredInterval",
    "ShardWorker",
]

#: Verdict labels recorded per scored interval.
OK, ANOMALOUS, SKIPPED = "ok", "anomalous", "skipped"

#: Scoring modes: MHM densities only, syscall contexts only, or both
#: fused under an :class:`~repro.learn.ensemble.EnsembleConfig` rule.
MODALITIES = ("mhm", "contexts", "ensemble")


def batched_log_densities(
    detector: MhmDetector, matrix: np.ndarray, pad_to: int = 32
) -> np.ndarray:
    """Log-densities for ``matrix`` rows at a fixed kernel batch shape.

    Rows are processed in zero-padded chunks of exactly ``pad_to``
    rows, so each row's score is bitwise independent of how many real
    records shared its kernel call.

    This is the historical unfused chain, kept as the regression
    oracle for the fused path: :class:`ShardWorker` now scores through
    one :func:`repro.kernels.fleet_score_batch` call per profile
    group, and ``tests/kernels/test_fused.py`` pins the fused float64
    result bit-identical to this function.
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D batch of MHM vectors")
    eigen = detector.eigenmemory
    params = detector.gmm.parameters
    out = np.empty(len(matrix), dtype=np.float64)
    for start in range(0, len(matrix), pad_to):
        chunk = matrix[start : start + pad_to]
        n = len(chunk)
        padded = np.zeros((pad_to, matrix.shape[1]), dtype=np.float64)
        padded[:n] = chunk
        reduced = kernels.project_batch(padded, eigen.mean_, eigen.components_)
        densities = kernels.log_density_batch(
            reduced, params.weights, params.means, params.cholesky_factors
        )
        out[start : start + n] = densities[:n]
    return out


@dataclass(frozen=True)
class ScoredInterval:
    """One scored record's outcome, as handed to ``on_scored``.

    The event-bus executor publishes this on ``interval.scored`` after
    every scored (not skipped, not dropped) record — the control
    plane's entire view of the data plane.  ``theta`` is the threshold
    the verdict was actually judged against (the per-device override
    when one is committed, the profile θ_p otherwise).
    """

    device_id: str
    profile: str
    interval_index: int
    log_density: float
    theta: float
    flag: str  # OK / ANOMALOUS
    alarm: bool  # this record completed an alarm streak
    truth: bool
    time_ns: int = 0


@dataclass
class DeviceState:
    """Accumulated scoring record for one device on a shard.

    The context-modality fields stay empty under ``modality="mhm"``.
    ``context_cumulative`` is the drift channel's running
    phase-residual sum — per-device and advanced strictly in interval
    order, so it is shard-placement invariant (a device lives on
    exactly one shard and its records arrive in stream order).
    """

    spec: DeviceSpec
    interval_indices: List[int] = field(default_factory=list)
    log_densities: List[float] = field(default_factory=list)
    flags: List[str] = field(default_factory=list)
    truths: List[bool] = field(default_factory=list)
    alarms: List[int] = field(default_factory=list)
    emitted: int = 0
    dropped: int = 0
    streak: int = 0
    context_scores: List[float] = field(default_factory=list)
    context_flagged: int = 0
    context_cumulative: Optional[np.ndarray] = None
    context_drift_max: float = 0.0
    context_drift_exceeded: bool = False


class ShardWorker:
    """Scores the interval records of one shard's devices."""

    def __init__(
        self,
        detectors: Dict[str, MhmDetector],
        specs: Sequence[DeviceSpec],
        p_percent: float = 1.0,
        consecutive_for_alarm: int = 3,
        batch_pad: int = 32,
        drift: Optional[DriftMonitor] = None,
        shard: int = 0,
        modality: str = "mhm",
        context_detectors: Optional[Dict[str, ContextDetector]] = None,
        ensemble: Optional[EnsembleConfig] = None,
    ):
        if batch_pad < 1:
            raise ValueError("batch_pad must be >= 1")
        if modality not in MODALITIES:
            raise ValueError(
                f"unknown modality {modality!r}; choose from {MODALITIES}"
            )
        if modality != "mhm" and not context_detectors:
            raise ValueError(
                f"modality {modality!r} needs per-profile context detectors"
            )
        self.detectors = detectors
        self.p_percent = p_percent
        self.consecutive_for_alarm = consecutive_for_alarm
        self.batch_pad = batch_pad
        self.shard = shard
        self.modality = modality
        self.context_detectors = context_detectors or {}
        self.ensemble = ensemble if ensemble is not None else EnsembleConfig()
        self.drift = drift if drift is not None else DriftMonitor(shard=shard)
        # The MHM budget: the full p under single-modality scoring, the
        # ensemble's share of it when both modalities split the budget.
        mhm_p = self.ensemble.p_mhm if modality == "ensemble" else p_percent
        self.thetas = {
            profile: detector.threshold(mhm_p)
            for profile, detector in detectors.items()
        }
        self.context_thetas: Dict[str, float] = {}
        if modality != "mhm":
            context_p = (
                self.ensemble.p_context if modality == "ensemble" else p_percent
            )
            self.context_thetas = {
                profile: context.threshold(context_p)
                for profile, context in self.context_detectors.items()
            }
        # One fused scorer per profile, built on first use: both
        # modalities' fitted arrays bound once, scored in a single
        # kernels.fleet_score_batch call per cross-device batch.
        self._scorers: Dict[str, kernels.FleetScorer] = {}
        # Hot-swapped per-device thresholds (recalibration commits) and
        # their provenance.  Empty under the lockstep executor, so the
        # per-record override lookup cannot perturb historical digests.
        self._theta_overrides: Dict[str, float] = {}
        self._recalibrations: Dict[str, dict] = {}
        #: Control-plane tap: called synchronously with a
        #: :class:`ScoredInterval` after each scored record, in stream
        #: order.  The async executor bridges this onto the event bus.
        self.on_scored: Optional[Callable[[ScoredInterval], None]] = None
        self.states: Dict[str, DeviceState] = {
            spec.device_id: DeviceState(spec=spec) for spec in specs
        }
        registry = obs.metrics()
        self._metric_scored = registry.counter("serve.intervals_scored")
        self._metric_flagged = registry.counter("serve.intervals_flagged")
        self._metric_skipped = registry.counter("serve.intervals_skipped")
        self._metric_alarms = registry.counter("serve.alarms")
        self._metric_shard_scored = registry.counter_family(
            "serve.shard.intervals_scored", ("shard",)
        ).labels(shard=str(shard))
        modality_flags = registry.counter_family(
            "serve.modality.flags", ("modality",)
        )
        self._metric_mhm_flags = modality_flags.labels(modality="mhm")
        self._metric_context_flags = modality_flags.labels(modality="context")
        self._metric_modality_alarms = registry.counter_family(
            "serve.modality.alarms", ("modality",)
        ).labels(modality=modality)
        self._log = obs.logger()
        self._tracer = obs.tracer()

    # ------------------------------------------------------------------
    def scorer_for(self, profile: str) -> kernels.FleetScorer:
        """The profile's fused scorer (memoised)."""
        scorer = self._scorers.get(profile)
        if scorer is None:
            scorer = kernels.FleetScorer.from_detectors(
                self.detectors[profile],
                self.context_detectors.get(profile)
                if self.modality != "mhm"
                else None,
            )
            self._scorers[profile] = scorer
        return scorer

    # ------------------------------------------------------------------
    def score_batch(self, records: Sequence[IntervalRecord]) -> None:
        """Score one cross-device batch of interval records.

        Outcomes are applied to device state in **stream order**: a
        record skipped by a ``serve.score`` fault lands in its device's
        history at the same position whether its batch held one record
        or thirty-two.  (Appending skips during the fault pass and
        scores during the kernel pass would front-load a device's skips
        within large batches — reordering its digest chain and resetting
        alarm streaks at the wrong point in the stream, so the report
        would depend on batch composition.)
        """
        faulted: Dict[int, bool] = {}
        # Group live records by profile (each profile scores through
        # its own detector), remembering each record's batch position.
        by_profile: Dict[str, List[int]] = {}
        for position, record in enumerate(records):
            self.states[record.device_id].emitted += 1
            try:
                fault = faults.check(
                    "serve.score",
                    token=f"{record.device_id}@{record.interval_index}",
                )
                if fault is not None and fault.mode in ("corrupt", "truncate"):
                    raise faults.FaultError(
                        "serve.score", "corrupted MHM interval buffer"
                    )
            except Exception:
                faulted[position] = True
                continue
            by_profile.setdefault(record.profile, []).append(position)
        densities: Dict[int, float] = {}
        context_by_pos: Dict[int, float] = {}
        residual_by_pos: Dict[int, np.ndarray] = {}
        for profile, positions in by_profile.items():
            scorer = self.scorer_for(profile)
            group = [records[i] for i in positions]
            matrix = np.stack([record.vector for record in group])
            if self.modality != "mhm":
                # The context channels ride in the same fused call; the
                # nearest-centroid stage is row-separable (no BLAS), so
                # it needs no fixed-shape padding to stay
                # batch-composition independent.
                scores = scorer.score(
                    matrix,
                    syscalls=np.stack([record.syscalls for record in group]),
                    interval_indices=[
                        record.interval_index for record in group
                    ],
                    pad_to=self.batch_pad,
                )
            else:
                scores = scorer.score(matrix, pad_to=self.batch_pad)
            for row, position in enumerate(positions):
                densities[position] = float(scores.log_densities[row])
                if scores.context_scores is not None:
                    context_by_pos[position] = float(
                        scores.context_scores[row]
                    )
                if scores.context_residuals is not None:
                    residual_by_pos[position] = scores.context_residuals[row]
        for position, record in enumerate(records):
            state = self.states[record.device_id]
            if faulted.get(position):
                self._skip(state, record, reason="fault:serve.score")
                continue
            log_density = densities[position]
            if not np.isfinite(log_density):
                self._skip(state, record, reason="non-finite-density")
                continue
            # Per-record threshold lookup so a recalibration commit
            # takes effect on the device's very next record — even
            # mid-batch (`on_scored` runs inline below, and a commit
            # it triggers lands in _theta_overrides immediately).
            effective = self._theta_overrides.get(
                record.device_id, self.thetas[record.profile]
            )
            self._record(
                state,
                record,
                log_density,
                effective,
                context_score=context_by_pos.get(position),
                context_residual=residual_by_pos.get(position),
            )
            if self.on_scored is not None:
                self.on_scored(
                    ScoredInterval(
                        device_id=record.device_id,
                        profile=record.profile,
                        interval_index=record.interval_index,
                        log_density=log_density,
                        theta=effective,
                        flag=state.flags[-1],
                        alarm=bool(
                            state.alarms
                            and state.alarms[-1] == record.interval_index
                        ),
                        truth=record.truth,
                        time_ns=record.time_ns,
                    )
                )

    def record_dropped(self, record: IntervalRecord) -> None:
        """Account for a record the router evicted (drop-oldest)."""
        state = self.states[record.device_id]
        state.emitted += 1
        state.dropped += 1

    def apply_threshold(
        self,
        device_id: str,
        theta: float,
        interval_index: Optional[int] = None,
    ) -> None:
        """Hot-swap one device's detection threshold (recalibration
        commit).  Takes effect on the device's next scored record."""
        self._theta_overrides[device_id] = float(theta)
        self._recalibrations[device_id] = {
            "threshold": float(theta),
            "interval": interval_index,
        }

    # ------------------------------------------------------------------
    def _verdict_telemetry(
        self, record: IntervalRecord, status: str, **extra
    ) -> None:
        """One ``score.verdict`` span per record (telemetry only)."""
        span = record.trace.child("score") if record.trace is not None else None
        self._tracer.instant(
            "score.verdict",
            record.time_ns,
            category="serve",
            args=trace_args(
                span,
                status=status,
                device_id=record.device_id,
                interval=record.interval_index,
                shard=self.shard,
                **extra,
            ),
            track=record.device_index,
        )

    def _skip(
        self, state: DeviceState, record: IntervalRecord, reason: str = "fault"
    ) -> None:
        state.interval_indices.append(record.interval_index)
        state.log_densities.append(float("nan"))
        state.flags.append(SKIPPED)
        state.truths.append(record.truth)
        if self.modality != "mhm":
            state.context_scores.append(float("nan"))
        state.streak = 0
        self._metric_skipped.inc()
        if self._log.enabled:
            self._log.event(
                "serve.score.skip",
                level="warn",
                device_id=record.device_id,
                shard=self.shard,
                sim_time_ns=record.time_ns,
                trace=record.trace,
                interval=record.interval_index,
                reason=reason,
            )
        if self._tracer.enabled:
            self._verdict_telemetry(record, SKIPPED, reason=reason)

    def _context_flag(
        self,
        state: DeviceState,
        record: IntervalRecord,
        score: float,
        residual: np.ndarray,
    ) -> bool:
        """Context-modality verdict: score channel OR drift channel.

        Advances the device's running phase-residual cumsum — called
        exactly once per scored record, in interval order.  The
        ``residual`` row comes precomputed from the fused scoring call
        (``syscalls − phase_means[interval % hyperperiod]``, the same
        elementwise subtraction this method historically performed).
        """
        context = self.context_detectors[record.profile]
        state.context_scores.append(score)
        if state.context_cumulative is None:
            state.context_cumulative = np.zeros_like(residual)
        state.context_cumulative += residual
        statistic = float(np.abs(state.context_cumulative).max())
        state.context_drift_max = max(state.context_drift_max, statistic)
        drift_exceeded = statistic > context.drift_bound_
        if drift_exceeded:
            state.context_drift_exceeded = True
        flagged = score > self.context_thetas[record.profile] or drift_exceeded
        if flagged:
            state.context_flagged += 1
        return flagged

    def _fused_verdict(
        self,
        state: DeviceState,
        record: IntervalRecord,
        log_density: float,
        theta: float,
        context_score: Optional[float],
        context_residual: Optional[np.ndarray],
    ) -> bool:
        mhm_flag = log_density < theta
        if mhm_flag:
            self._metric_mhm_flags.inc()
        if self.modality == "mhm":
            return mhm_flag
        context_flag = self._context_flag(
            state, record, context_score, context_residual
        )
        if context_flag:
            self._metric_context_flags.inc()
        if self.modality == "contexts":
            return context_flag
        rule = self.ensemble.rule
        if rule == "or":
            return mhm_flag or context_flag
        if rule == "and":
            return mhm_flag and context_flag
        weight = self.ensemble.mhm_weight
        vote = weight * mhm_flag + (1.0 - weight) * context_flag
        return vote >= self.ensemble.vote_threshold

    def _record(
        self,
        state: DeviceState,
        record: IntervalRecord,
        log_density: float,
        theta: float,
        context_score: Optional[float] = None,
        context_residual: Optional[np.ndarray] = None,
    ) -> None:
        anomalous = self._fused_verdict(
            state, record, log_density, theta, context_score, context_residual
        )
        state.interval_indices.append(record.interval_index)
        state.log_densities.append(log_density)
        state.flags.append(ANOMALOUS if anomalous else OK)
        state.truths.append(record.truth)
        self._metric_scored.inc()
        self._metric_shard_scored.inc()
        if self._tracer.enabled:
            self._verdict_telemetry(
                record, ANOMALOUS if anomalous else OK
            )
        self.drift.observe(record.device_id, log_density)
        if anomalous:
            self._metric_flagged.inc()
            state.streak += 1
            if state.streak == self.consecutive_for_alarm:
                state.alarms.append(record.interval_index)
                self._metric_alarms.inc()
                self._metric_modality_alarms.inc()
                if self._log.enabled:
                    self._log.event(
                        "serve.alarm",
                        level="warn",
                        device_id=record.device_id,
                        shard=self.shard,
                        sim_time_ns=record.time_ns,
                        trace=record.trace,
                        interval=record.interval_index,
                        streak=state.streak,
                    )
                if self._tracer.enabled:
                    span = (
                        record.trace.child("alarm")
                        if record.trace is not None
                        else None
                    )
                    self._tracer.instant(
                        "device.alarm",
                        record.time_ns,
                        category="alarm",
                        args=trace_args(
                            span,
                            status="alarm",
                            device_id=record.device_id,
                            interval=record.interval_index,
                            streak=state.streak,
                        ),
                        track=record.device_index,
                    )
        else:
            state.streak = 0

    # ------------------------------------------------------------------
    def device_report(
        self,
        spec: DeviceSpec,
        shard: int,
        keep_densities: bool = False,
        cadence: int = 1,
    ) -> DeviceReport:
        """Roll one device's state up into its report entry."""
        state = self.states[spec.device_id]
        # The drift verdict is judged against the *deployed* threshold —
        # the committed override when recalibration swapped one in.
        theta = self._theta_overrides.get(
            spec.device_id, self.thetas[spec.profile]
        )
        recalibration = self._recalibrations.get(spec.device_id)
        status = self.drift.status(spec.device_id, theta, self.p_percent)
        scored = sum(1 for flag in state.flags if flag != SKIPPED)
        skipped = sum(1 for flag in state.flags if flag == SKIPPED)
        flagged = sum(1 for flag in state.flags if flag == ANOMALOUS)
        true_pos = sum(
            1
            for flag, truth in zip(state.flags, state.truths)
            if flag == ANOMALOUS and truth
        )
        false_pos = flagged - true_pos
        attack_intervals = sum(state.truths)
        benign_intervals = scored + skipped - attack_intervals
        first_alarm = state.alarms[0] if state.alarms else None
        latency = None
        if spec.inject_interval is not None:
            for alarm in state.alarms:
                if alarm >= spec.inject_interval:
                    latency = alarm - spec.inject_interval
                    break
        return DeviceReport(
            device_id=spec.device_id,
            device_index=spec.index,
            profile=spec.profile,
            shard=shard,
            scenario=spec.scenario,
            inject_interval=spec.inject_interval,
            emitted=state.emitted,
            scored=scored,
            skipped=skipped,
            dropped=state.dropped,
            flagged=flagged,
            alarms=len(state.alarms),
            first_alarm_interval=first_alarm,
            detection_latency=latency,
            true_positives=true_pos,
            false_positives=false_pos,
            attack_intervals=attack_intervals,
            benign_intervals=benign_intervals,
            drifted=status.drifted,
            drift_observed_rate=status.observed_rate,
            drift_expected_rate=status.expected_rate,
            suggested_threshold=status.suggested_threshold,
            digest=device_digest(
                state.interval_indices,
                state.log_densities,
                state.flags,
                context_scores=(
                    state.context_scores if self.modality != "mhm" else None
                ),
            ),
            log_densities=list(state.log_densities) if keep_densities else None,
            context_flagged=state.context_flagged,
            context_drift_max=(
                state.context_drift_max if self.modality != "mhm" else None
            ),
            context_drift_exceeded=state.context_drift_exceeded,
            cadence=cadence,
            recalibrated=recalibration is not None,
            recalibrated_threshold=(
                recalibration["threshold"] if recalibration else None
            ),
            recalibrated_at_interval=(
                recalibration["interval"] if recalibration else None
            ),
        )

"""Health / readiness summaries for fleet serving runs.

The CI soak job (and any operator pointing a probe at a long-running
serve) needs a single yes/no answer — *is this fleet healthy?* — plus
enough per-check detail to debug a "no".  :func:`health_summary`
derives that answer from a finished (or in-flight) fleet report:

* ``complete`` — every device emitted every configured interval;
* ``no_loss`` — nothing was dropped by backpressure **and** nothing
  was skipped by scoring faults (under the default ``block`` policy a
  healthy run loses nothing; the soak asserts exactly this);
* ``no_drift`` — no device's benign score distribution slid past the
  drift policy budget (advisory: drift degrades, it does not unready);
* ``detectors`` — a detector scored at least one interval per device.

``status`` is ``"ready"`` when every *readiness* check passes,
``"degraded"`` otherwise; advisory checks (drift) mark the status
degraded but are reported alongside so the probe output says why.
``repro serve --health-out health.json`` writes the summary next to
the fleet report, and the serve-soak CI job asserts ``ready`` is
true.
"""

from __future__ import annotations

import json
from math import ceil
from pathlib import Path
from typing import List

from .. import obs
from .report import FleetReport

__all__ = ["HEALTH_SCHEMA_VERSION", "health_summary", "write_health"]

HEALTH_SCHEMA_VERSION = 1


def _check(name: str, ok: bool, detail: str, critical: bool = True) -> dict:
    return {"name": name, "ok": ok, "critical": critical, "detail": detail}


def health_summary(report: FleetReport) -> dict:
    """A readiness summary derived from a fleet report."""
    # Cadence-aware expectation: a device ticking every c fleet steps
    # emits ⌈intervals / c⌉ records (always intervals when c == 1).
    expected = sum(
        ceil(report.intervals / max(1, entry.cadence))
        for entry in report.device_reports
    )
    checks: List[dict] = [
        _check(
            "complete",
            report.emitted == expected,
            f"emitted {report.emitted}/{expected} device-intervals",
        ),
        _check(
            "no_loss",
            report.dropped == 0 and report.skipped == 0,
            f"dropped={report.dropped} skipped={report.skipped}",
        ),
        _check(
            "detectors",
            report.scored > 0,
            f"scored {report.scored} intervals across "
            f"{report.devices} devices",
        ),
        _check(
            "no_drift",
            report.devices_drifted == 0,
            f"devices_drifted={report.devices_drifted}",
            critical=False,
        ),
    ]
    if report.bus is not None:
        poisoned = report.bus.get("subscribers_poisoned", 0)
        lost = report.bus.get("publish_lost", 0) + report.bus.get(
            "deliver_faults", 0
        )
        checks.append(
            _check(
                "bus",
                poisoned == 0 and lost == 0,
                f"subscribers_poisoned={poisoned} events_lost={lost}",
            )
        )
    ready = all(c["ok"] for c in checks if c["critical"])
    degraded = any(not c["ok"] for c in checks)
    status = "degraded" if degraded else "ready"
    summary = {
        "schema": HEALTH_SCHEMA_VERSION,
        "status": status,
        "ready": ready,
        "checks": checks,
        "devices": report.devices,
        "intervals": report.intervals,
        "alarms": report.alarms,
        "fleet_digest": report.fleet_digest,
    }
    log = obs.logger()
    if log.enabled:
        log.event(
            "serve.health",
            level="info" if ready else "warn",
            status=status,
            ready=ready,
            phase="report",
        )
    return summary


def write_health(path, report: FleetReport) -> dict:
    """Write :func:`health_summary` to ``path``; returns the summary."""
    summary = health_summary(report)
    Path(path).write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return summary

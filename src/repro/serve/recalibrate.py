"""Applied hot detector swap: drift proposals → canary trial → commit.

PR 5's :class:`~repro.serve.drift.DriftMonitor` *reports* a
recalibrated threshold when a device's benign score distribution
slides (the empirical p-quantile of the field window — the paper's
θ_p calibration re-run on fresh data) but never applies it.  This
module closes the loop, carefully: a bad threshold swap on a live
fleet is worse than a drifted one, so every proposal earns its commit
through a canary trial on the proposing device.

The state machine, per device::

    watching ──drift flagged──▶ proposed ──trial──▶ committed
        ▲                          │
        └────── cooldown ◀─────rejected

* **proposed** — every ``check_every`` scored records the controller
  asks the (shared) DriftMonitor for a verdict; a drifted device with
  a suggested threshold publishes ``recalibrate.proposed`` and enters
  a trial.
* **canary trial** — for the next ``canary_intervals`` records the
  candidate θ′ runs in *shadow*: the device keeps scoring under its
  deployed threshold while the controller counts how many intervals θ′
  *would* flag.
* **committed** — the shadow flag count stays within
  ``max_canary_flags``: the worker's per-device threshold override is
  installed (:meth:`~repro.serve.worker.ShardWorker.apply_threshold`),
  the drift window resets so the next verdict is earned on
  post-commit data, and ``recalibrate.committed`` is published.
* **rejected** — the candidate over-flags in shadow; the device backs
  off for ``cooldown`` records before re-proposing.

Determinism: the controller is a **direct** bus subscriber driven by
``interval.scored`` events, which arrive per device in interval order
regardless of shard count or scheduling.  Every decision is a pure
function of one device's score prefix, so recalibrated runs keep the
async×{1,2,4}-shard digest identity (the recalibration conformance
suite asserts exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import obs
from .bus import EventBus
from .worker import ScoredInterval, ShardWorker

__all__ = ["RecalibrationPolicy", "RecalibrationController"]


@dataclass(frozen=True)
class RecalibrationPolicy:
    """When may a drift-suggested threshold be trialled and committed?"""

    enabled: bool = False
    #: Scored records between drift checks on each device.
    check_every: int = 8
    #: Shadow-trial length, in that device's scored records.
    canary_intervals: int = 24
    #: Trial verdict: commit iff the candidate θ′ would have flagged at
    #: most this many of the canary records.  An integer count, not a
    #: rate — at serving-scale p (1 %) and trial lengths of a few dozen
    #: records, "at most one shadow flag" *is* the FPR budget.
    max_canary_flags: int = 1
    #: Records a device sits out after a rejected trial.
    cooldown: int = 32
    #: Commits allowed per device per run (hot swap, not oscillation).
    max_commits_per_device: int = 1

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ValueError("check_every must be >= 1")
        if self.canary_intervals < 1:
            raise ValueError("canary_intervals must be >= 1")
        if self.max_canary_flags < 0:
            raise ValueError("max_canary_flags must be >= 0")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if self.max_commits_per_device < 1:
            raise ValueError("max_commits_per_device must be >= 1")


@dataclass
class _Trial:
    """One in-flight canary trial (shadow threshold evaluation)."""

    threshold: float
    proposed_at: int  # interval index of the proposing record
    seen: int = 0
    shadow_flags: int = 0

    def observe(self, log_density: float) -> None:
        self.seen += 1
        if log_density < self.threshold:
            self.shadow_flags += 1


@dataclass
class _DeviceLane:
    """Per-device controller state."""

    samples: int = 0
    commits: int = 0
    cooldown_until: int = 0  # sample ordinal, exclusive
    trial: Optional[_Trial] = None


class RecalibrationController:
    """Drives proposal → canary → commit over scored-interval events."""

    def __init__(
        self,
        policy: RecalibrationPolicy,
        worker: ShardWorker,
        bus: Optional[EventBus] = None,
        shard: int = 0,
    ):
        self.policy = policy
        self.worker = worker
        self.bus = bus
        self.shard = shard
        self.proposed = 0
        self.committed = 0
        self.rejected = 0
        self._lanes: Dict[str, _DeviceLane] = {}
        registry = obs.metrics()
        self._metric_proposed = registry.counter("serve.recalibrate.proposed")
        self._metric_committed = registry.counter("serve.recalibrate.committed")
        self._metric_rejected = registry.counter("serve.recalibrate.rejected")
        self._log = obs.logger()

    # ------------------------------------------------------------------
    def on_scored(self, scored: ScoredInterval) -> None:
        """One scored record for one device, in interval order."""
        lane = self._lanes.get(scored.device_id)
        if lane is None:
            lane = _DeviceLane()
            self._lanes[scored.device_id] = lane
        lane.samples += 1
        if lane.trial is not None:
            lane.trial.observe(scored.log_density)
            if lane.trial.seen >= self.policy.canary_intervals:
                self._finish_trial(scored.device_id, lane, scored)
            return
        if lane.commits >= self.policy.max_commits_per_device:
            return
        if lane.samples < lane.cooldown_until:
            return
        if lane.samples % self.policy.check_every:
            return
        status = self.worker.drift.status(
            scored.device_id, scored.theta, self.worker.p_percent
        )
        if status.drifted and status.suggested_threshold is not None:
            self._propose(scored, lane, status.suggested_threshold)

    # ------------------------------------------------------------------
    def _publish(self, topic: str, payload: dict, key: str) -> None:
        if self.bus is not None:
            self.bus.publish_sync(
                topic, payload, publisher=f"recalibrate-{self.shard}", key=key
            )

    def _propose(
        self, scored: ScoredInterval, lane: _DeviceLane, threshold: float
    ) -> None:
        lane.trial = _Trial(
            threshold=float(threshold), proposed_at=scored.interval_index
        )
        self.proposed += 1
        self._metric_proposed.inc()
        if self._log.enabled:
            self._log.event(
                "serve.recalibrate.proposed",
                level="info",
                device_id=scored.device_id,
                shard=self.shard,
                threshold=float(threshold),
                interval=scored.interval_index,
            )
        self._publish(
            "recalibrate.proposed",
            {
                "device_id": scored.device_id,
                "threshold": float(threshold),
                "interval": scored.interval_index,
            },
            key=f"{scored.device_id}@{scored.interval_index}",
        )

    def _finish_trial(
        self, device_id: str, lane: _DeviceLane, scored: ScoredInterval
    ) -> None:
        trial = lane.trial
        lane.trial = None
        payload = {
            "device_id": device_id,
            "threshold": trial.threshold,
            "interval": scored.interval_index,
            "shadow_flags": trial.shadow_flags,
            "canary_intervals": trial.seen,
        }
        key = f"{device_id}@{scored.interval_index}"
        if trial.shadow_flags <= self.policy.max_canary_flags:
            lane.commits += 1
            self.committed += 1
            self._metric_committed.inc()
            # The hot swap itself: the very next record of this device
            # scores under θ′ (apply_threshold is read per record), and
            # the drift window restarts so the next verdict reflects
            # post-commit behaviour only.
            self.worker.apply_threshold(
                device_id, trial.threshold,
                interval_index=scored.interval_index,
            )
            self.worker.drift.reset(device_id)
            if self._log.enabled:
                self._log.event(
                    "serve.recalibrate.committed",
                    level="info",
                    device_id=device_id,
                    shard=self.shard,
                    threshold=trial.threshold,
                    interval=scored.interval_index,
                    shadow_flags=trial.shadow_flags,
                )
            self._publish("recalibrate.committed", payload, key)
        else:
            lane.cooldown_until = lane.samples + self.policy.cooldown
            self.rejected += 1
            self._metric_rejected.inc()
            if self._log.enabled:
                self._log.event(
                    "serve.recalibrate.rejected",
                    level="warn",
                    device_id=device_id,
                    shard=self.shard,
                    threshold=trial.threshold,
                    interval=scored.interval_index,
                    shadow_flags=trial.shadow_flags,
                )
            self._publish("recalibrate.rejected", payload, key)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "proposed": self.proposed,
            "committed": self.committed,
            "rejected": self.rejected,
        }

"""Fleet report schema: the serving layer's deterministic output.

A :class:`FleetReport` is the complete record of one fleet run —
per-device verdict accounting plus fleet-wide totals.  It is designed
around the serial ≡ sharded acceptance criterion:

* **no wall-clock fields** — every value is a pure function of the
  run's configuration and seed;
* per-device **digests** — a sha256 over the device's interval
  indices, log-densities and verdict flags, so "bit-identical verdict
  sequences" is checkable by comparing two short hex strings;
* a **fleet digest** chaining the per-device digests in device order.

``repro fleet-report`` renders a saved report; tests compare
``to_dict()`` output across shard counts directly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

__all__ = ["DeviceReport", "FleetReport", "device_digest"]

SCHEMA_VERSION = 1


def device_digest(
    interval_indices: Sequence[int],
    log_densities: Sequence[float],
    flags: Sequence[str],
    context_scores: Optional[Sequence[float]] = None,
) -> str:
    """sha256 over one device's scored stream.

    Log-densities are hashed via their IEEE-754 hex representation, so
    the digest is sensitive to the last ulp — a single bit of drift in
    any verdict anywhere in the stream changes it.  When the worker
    scores a second modality it passes ``context_scores``, which chain
    into the digest the same way; single-modality digests are unchanged
    from earlier schema builds.
    """
    h = hashlib.sha256()
    if context_scores is None:
        for index, density, flag in zip(interval_indices, log_densities, flags):
            h.update(f"{index}:{float(density).hex()}:{flag};".encode())
        return h.hexdigest()
    for index, density, score, flag in zip(
        interval_indices, log_densities, context_scores, flags
    ):
        h.update(
            f"{index}:{float(density).hex()}:"
            f"{float(score).hex()}:{flag};".encode()
        )
    return h.hexdigest()


@dataclass
class DeviceReport:
    """One device's accounting for a fleet run."""

    device_id: str
    device_index: int
    profile: str
    shard: int
    scenario: Optional[str]
    inject_interval: Optional[int]
    emitted: int
    scored: int
    skipped: int
    dropped: int
    flagged: int
    alarms: int
    first_alarm_interval: Optional[int]
    detection_latency: Optional[int]  # intervals from injection to alarm
    true_positives: int
    false_positives: int
    attack_intervals: int
    benign_intervals: int
    drifted: bool
    drift_observed_rate: Optional[float]
    drift_expected_rate: Optional[float]
    suggested_threshold: Optional[float]
    digest: str
    log_densities: Optional[List[float]] = None  # kept only on request
    # Second-modality accounting (defaults keep schema-1 payloads
    # loadable; all three stay at their defaults under modality "mhm").
    context_flagged: int = 0
    context_drift_max: Optional[float] = None
    context_drift_exceeded: bool = False
    # Event-bus executor accounting (defaults keep earlier payloads
    # loadable and make lockstep ≡ async canonical dicts comparable:
    # every field below is seed-determined, not scheduling-determined).
    #: Fleet steps between this device's intervals (async executor's
    #: heterogeneous cadences; always 1 under lockstep).
    cadence: int = 1
    #: A drift-proposed threshold passed its canary trial and was
    #: hot-swapped in during the run.
    recalibrated: bool = False
    recalibrated_threshold: Optional[float] = None
    recalibrated_at_interval: Optional[int] = None

    @property
    def false_positive_rate(self) -> Optional[float]:
        if self.benign_intervals == 0:
            return None
        return self.false_positives / self.benign_intervals

    @property
    def detection_rate(self) -> Optional[float]:
        if self.attack_intervals == 0:
            return None
        return self.true_positives / self.attack_intervals


@dataclass
class FleetReport:
    """Fleet-wide roll-up of a serving run."""

    schema: int
    devices: int
    shards: int
    intervals: int
    seed: int
    policy: str
    p_percent: float
    consecutive_for_alarm: int
    kernels_backend: str
    emitted: int
    scored: int
    skipped: int
    dropped: int
    flagged: int
    alarms: int
    block_stalls: int
    devices_alarmed: int
    devices_attacked: int
    attacked_devices_alarmed: int
    devices_drifted: int
    fleet_digest: str
    modality: str = "mhm"
    #: Fused-kernel compute dtype the run scored with.  The "float64"
    #: default keeps schema-1 payloads written before the fast path
    #: existed loadable (they could only have scored in float64).
    kernels_dtype: str = "float64"
    #: Which executor ran the shards: "lockstep" (the serial reference)
    #: or "async" (the event-bus data plane).  Scheduling metadata —
    #: the conformance contract is that it never changes the verdicts.
    executor: str = "lockstep"
    #: Devices whose threshold was hot-swapped by a recalibration
    #: commit (seed-determined, so it survives into the canonical view).
    devices_recalibrated: int = 0
    #: Event-bus accounting (publish/deliver/drop/shed counters, the
    #: poisoned-subscriber failure records, recalibration totals).
    #: ``None`` under the lockstep executor.
    bus: Optional[dict] = None
    device_reports: List[DeviceReport] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        *,
        config,
        device_reports: List[DeviceReport],
        block_stalls: int,
        kernels_backend: str,
        kernels_dtype: str = "float64",
        bus: Optional[dict] = None,
    ) -> "FleetReport":
        reports = sorted(device_reports, key=lambda r: r.device_index)
        fleet = hashlib.sha256()
        for report in reports:
            fleet.update(report.digest.encode())
        attacked = [r for r in reports if r.scenario is not None]
        return cls(
            schema=SCHEMA_VERSION,
            devices=len(reports),
            shards=config.shards,
            intervals=config.intervals,
            seed=config.seed,
            policy=config.policy,
            p_percent=config.p_percent,
            consecutive_for_alarm=config.consecutive_for_alarm,
            kernels_backend=kernels_backend,
            emitted=sum(r.emitted for r in reports),
            scored=sum(r.scored for r in reports),
            skipped=sum(r.skipped for r in reports),
            dropped=sum(r.dropped for r in reports),
            flagged=sum(r.flagged for r in reports),
            alarms=sum(r.alarms for r in reports),
            block_stalls=block_stalls,
            devices_alarmed=sum(1 for r in reports if r.alarms > 0),
            devices_attacked=len(attacked),
            attacked_devices_alarmed=sum(1 for r in attacked if r.alarms > 0),
            devices_drifted=sum(1 for r in reports if r.drifted),
            fleet_digest=fleet.hexdigest(),
            modality=getattr(config, "modality", "mhm"),
            kernels_dtype=kernels_dtype,
            executor=getattr(config, "executor", "lockstep"),
            devices_recalibrated=sum(1 for r in reports if r.recalibrated),
            bus=bus,
            device_reports=reports,
        )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FleetReport":
        if payload.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported fleet report schema {payload.get('schema')!r}"
            )
        devices = [DeviceReport(**entry) for entry in payload["device_reports"]]
        fields = {k: v for k, v in payload.items() if k != "device_reports"}
        return cls(device_reports=devices, **fields)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "FleetReport":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- convenience ---------------------------------------------------
    @property
    def verdict_sequences(self) -> Dict[str, str]:
        """device_id → digest, the bit-identity comparison surface."""
        return {r.device_id: r.digest for r in self.device_reports}

    def canonical_dict(self) -> dict:
        """The shard-count-invariant view of the report.

        Everything seed-determined is kept; the only fields removed are
        the scheduling metadata that *names* the run's execution — the
        shard count, each device's shard assignment, which executor ran
        it, the ``block_stalls`` counter (shard-local queue pressure)
        and the ``bus`` accounting block (per-run scheduling detail).
        ``repro serve --shards 1`` and ``--shards 4`` on the same seed
        produce equal canonical dicts, and so do ``--executor
        lockstep`` and ``--executor async`` — the bus-conformance suite
        asserts both, digests included.
        """
        payload = self.to_dict()
        payload.pop("shards")
        payload.pop("block_stalls")
        payload.pop("executor")
        payload.pop("bus")
        for entry in payload["device_reports"]:
            entry.pop("shard")
        return payload

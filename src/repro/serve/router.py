"""Bounded-queue stream routing with explicit backpressure.

Each shard worker sits behind a :class:`StreamRouter`: a bounded
pending queue that batches incoming interval records before handing
them to the worker's vectorized scorer.  When producers outrun the
drain budget the queue fills and the configured policy decides what
gives:

``block``
    The submitting producer stalls while the router synchronously
    drains one batch, then the record is enqueued.  Nothing is ever
    lost (the serve-soak CI job asserts exactly this); the cost is
    producer latency, surfaced as the ``serve.queue.block_stalls``
    counter.

``drop-oldest``
    The oldest pending record is evicted to make room — bounded
    staleness instead of bounded latency.  Evictions are counted
    (``serve.queue.dropped``) and reported per device, and the serve
    CLI exits non-zero when any interval was dropped.

Drain scheduling is deterministic in *simulated* work, not wall
clock: with the default ``drain_per_step=None`` the router drains a
full batch as soon as one is pending, so the queue never overflows
and results are shard-count invariant.  A finite ``drain_per_step``
models a scoring core that only keeps up with ``m`` records per fleet
step — the knob the backpressure tests turn to force both policies to
fire.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, List, Optional

from .. import obs
from ..obs.context import trace_args
from ..obs.registry import log_buckets
from ..sim.fleet import IntervalRecord

__all__ = ["POLICIES", "StreamRouter"]

#: Backpressure policies a router accepts.
POLICIES = ("block", "drop-oldest")


class StreamRouter:
    """Routes interval records into batched scoring with backpressure."""

    def __init__(
        self,
        worker,
        batch_size: int = 32,
        capacity: int = 128,
        policy: str = "block",
        drain_per_step: Optional[int] = None,
        shard: int = 0,
    ):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown backpressure policy {policy!r}; choose from {POLICIES}"
            )
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if capacity < batch_size:
            raise ValueError("capacity must be >= batch_size")
        if drain_per_step is not None and drain_per_step < 1:
            raise ValueError("drain_per_step must be >= 1 (or None)")
        self.worker = worker
        self.batch_size = batch_size
        self.capacity = capacity
        self.policy = policy
        self.drain_per_step = drain_per_step
        self.shard = shard
        self.pending: Deque[IntervalRecord] = deque()
        self.submitted = 0
        self.dropped = 0
        self.block_stalls = 0
        registry = obs.metrics()
        self._metric_submitted = registry.counter("serve.queue.submitted")
        self._metric_dropped = registry.counter("serve.queue.dropped")
        self._metric_stalls = registry.counter("serve.queue.block_stalls")
        self._metric_depth = registry.gauge("serve.queue.depth")
        self._metric_batches = registry.counter("serve.batches")
        self._metric_fill = registry.histogram(
            "serve.batch_fill", buckets=(1, 2, 4, 8, 16, 32, 64, 128)
        )
        # Per-shard labelled series: queue depth for the dashboard and
        # wall-clock batch scoring latency for p50/p95/p99 per shard.
        shard_label = str(shard)
        self._metric_shard_depth = registry.gauge_family(
            "serve.shard.queue_depth", ("shard",)
        ).labels(shard=shard_label)
        self._metric_latency = registry.histogram_family(
            "serve.shard.batch_latency_us",
            ("shard",),
            buckets=log_buckets(1.0, 1_000_000.0),
        ).labels(shard=shard_label)
        self._log = obs.logger()
        self._tracer = obs.tracer()

    # ------------------------------------------------------------------
    def submit(self, record: IntervalRecord) -> None:
        """Enqueue one record, applying backpressure when full."""
        if len(self.pending) >= self.capacity:
            if self.policy == "block":
                # Producer stalls until the scorer frees a batch of room.
                self.block_stalls += 1
                self._metric_stalls.inc()
                if self._log.enabled:
                    self._log.event(
                        "serve.queue.stall",
                        level="warn",
                        device_id=record.device_id,
                        shard=self.shard,
                        sim_time_ns=record.time_ns,
                        trace=record.trace,
                        depth=len(self.pending),
                    )
                self._drain(self.batch_size)
            else:  # drop-oldest
                oldest = self.pending.popleft()
                self.dropped += 1
                self._metric_dropped.inc()
                if self._log.enabled or self._tracer.enabled:
                    drop_span = (
                        oldest.trace.child("queue.drop")
                        if oldest.trace is not None
                        else None
                    )
                    self._log.event(
                        "serve.queue.drop",
                        level="warn",
                        device_id=oldest.device_id,
                        shard=self.shard,
                        sim_time_ns=oldest.time_ns,
                        trace=drop_span,
                        interval=oldest.interval_index,
                        depth=len(self.pending),
                    )
                    self._tracer.instant(
                        "queue.drop",
                        oldest.time_ns,
                        category="serve",
                        args=trace_args(
                            drop_span,
                            status="dropped",
                            device_id=oldest.device_id,
                            interval=oldest.interval_index,
                        ),
                        track=oldest.device_index,
                    )
                self.worker.record_dropped(oldest)
        self.pending.append(record)
        self.submitted += 1
        self._metric_submitted.inc()
        self._metric_depth.set(len(self.pending))
        self._metric_shard_depth.set(len(self.pending))
        if self.drain_per_step is None and len(self.pending) >= self.batch_size:
            self._drain(self.batch_size)

    def end_step(self) -> None:
        """Fleet-step boundary: spend the throttled drain budget."""
        if self.drain_per_step is not None:
            self._drain(self.drain_per_step)

    def flush(self) -> None:
        """Score everything still pending (end of run)."""
        while self.pending:
            self._drain(self.batch_size)

    # ------------------------------------------------------------------
    def _drain(self, budget: int) -> None:
        while budget > 0 and self.pending:
            take = min(budget, self.batch_size, len(self.pending))
            batch: List[IntervalRecord] = [
                self.pending.popleft() for _ in range(take)
            ]
            budget -= take
            self._metric_batches.inc()
            self._metric_fill.observe(len(batch))
            if self._metric_latency.enabled:
                start = time.perf_counter_ns()
                self.worker.score_batch(batch)
                self._metric_latency.observe(
                    (time.perf_counter_ns() - start) / 1_000.0
                )
            else:
                self.worker.score_batch(batch)
        self._metric_depth.set(len(self.pending))
        self._metric_shard_depth.set(len(self.pending))

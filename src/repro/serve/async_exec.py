"""The event-bus shard executor: `repro serve --executor async`.

One shard, one event loop, one :class:`~repro.serve.bus.EventBus`.
The lockstep executor's welded call chain (simulator → router →
worker) becomes four independent parties wired by topics:

* **ingestion** — pulls each device's :class:`DeviceStream` on its own
  cadence and publishes ``interval.observed``.  Yields to the loop
  once per fleet step, so scoring drains in the same step rhythm the
  lockstep path ticks in;
* **scoring** — a *queued* subscriber draining ``interval.observed``
  in batches of ``batch_size`` through the unchanged
  :meth:`ShardWorker.score_batch` (same fixed-shape padded kernels,
  same digests).  Its queue carries the configured backpressure policy
  (block / drop-oldest / shed);
* **drift + recalibration** — a *direct* subscriber on
  ``interval.scored``: the controller runs synchronously inside the
  scoring callback, so a canary commit swaps the threshold before the
  device's next record is judged — at the same per-record point on
  every shard count, which is what keeps recalibrated runs
  bit-identical across shards;
* **reporting** — a queued ``shed``-policy subscriber tallying a
  streaming summary from ``interval.scored`` / ``device.alarm``; under
  pressure it sacrifices its own freshness, never the data plane.

Accounting invariant: every record the simulator emits lands in
exactly one of *scored*, *skipped* or *dropped* — publish-loss and
deliver-loss faults route the casualty to
:meth:`ShardWorker.record_dropped` just like a router eviction, so
``emitted == scored + skipped + dropped`` holds under bus faults too.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from math import ceil
from typing import Optional, Sequence, Tuple

from .. import faults, obs
from ..sim.fleet import DeviceSpec, DeviceStream
from .bus import EventBus, SchedulingJitter, run_subscriber
from .recalibrate import RecalibrationController
from .worker import OK, ScoredInterval, ShardWorker

__all__ = [
    "cadence_for",
    "scale_spec_for_cadence",
    "emitted_for_cadence",
    "run_shard_async",
]


def cadence_for(spec_index: int, cadences) -> int:
    """The fleet-step cadence assigned to device ``spec_index``."""
    if not cadences:
        return 1
    return int(cadences[spec_index % len(cadences)])


def emitted_for_cadence(intervals: int, cadence: int) -> int:
    """Records a device emits over ``intervals`` fleet steps: it ticks
    on steps 1, 1+c, 1+2c, … → ⌈intervals / c⌉."""
    return ceil(intervals / cadence)


def scale_spec_for_cadence(spec: DeviceSpec, cadence: int, intervals: int) -> DeviceSpec:
    """Rescale a spec's attack schedule into its cadence's ordinal space.

    ``build_fleet_specs`` places injection/revert in *fleet-step*
    ordinals (cadence 1).  A device ticking every ``cadence`` steps
    emits ⌈intervals/c⌉ records, and its stream schedules the attack by
    emitted ordinal — so the schedule divides down, keeping the attack
    at the same fraction of the device's (shorter) stream.
    """
    if cadence == 1 or spec.inject_interval is None:
        return spec
    emitted = emitted_for_cadence(intervals, cadence)
    inject = min(max(1, spec.inject_interval // cadence), emitted - 1)
    revert = spec.revert_interval
    if revert is not None:
        revert = max(revert // cadence, inject + 1)
        if revert >= emitted - 1:
            revert = None  # too short a tail to revert inside: one-way
    return replace(spec, inject_interval=inject, revert_interval=revert)


async def run_shard_async(
    shard_index: int,
    specs: Sequence[DeviceSpec],
    worker: ShardWorker,
    config,
    writer=None,
    jitter: Optional[SchedulingJitter] = None,
) -> Tuple[dict, int]:
    """Run one shard's full stream on the event bus.

    Returns ``(stats, sim_time_ns)``; per-device results accumulate in
    ``worker`` exactly as under lockstep.  ``config`` is a
    :class:`~repro.serve.service.ServeConfig` (duck-typed to avoid the
    import cycle).
    """
    bus = EventBus(
        stall_timeout=config.stall_timeout, jitter=jitter, shard=shard_index
    )
    metric_emitted = obs.metrics().counter("serve.intervals_emitted")

    # -- data plane ----------------------------------------------------
    scoring_sub = bus.subscribe(
        "scoring",
        "interval.observed",
        capacity=config.queue_capacity,
        policy=config.policy,
        on_drop=lambda event: worker.record_dropped(event.payload),
    )
    summary = {"scored": 0, "flagged": 0, "alarms": 0}
    reporting_sub = bus.subscribe(
        "reporting",
        ("interval.scored", "device.alarm"),
        capacity=max(config.queue_capacity, 1024),
        policy="shed",
    )

    # -- control plane (direct: deterministic per-record dispatch) -----
    controller = None
    if config.recalibration.enabled:
        controller = RecalibrationController(
            config.recalibration, worker, bus=bus, shard=shard_index
        )
        bus.subscribe(
            "recalibrate",
            "interval.scored",
            mode="direct",
            handler=lambda event: controller.on_scored(event.payload),
        )

    # A record lost at publish never reached scoring; charge it to its
    # device so the emitted == scored + skipped + dropped ledger holds.
    def on_publish_lost(topic: str, payload, key: str) -> None:
        if topic == "interval.observed":
            worker.record_dropped(payload)

    bus.on_publish_lost = on_publish_lost

    # Scored records flow back onto the bus synchronously, from inside
    # score_batch — a direct recalibration commit therefore lands
    # before the device's next record, even mid-batch.
    def on_scored(scored: ScoredInterval) -> None:
        key = f"{scored.device_id}@{scored.interval_index}"
        publisher = f"worker-{shard_index}"
        bus.publish_sync("interval.scored", scored, publisher=publisher, key=key)
        if scored.alarm:
            bus.publish_sync("device.alarm", scored, publisher=publisher, key=key)

    worker.on_scored = on_scored

    # -- tasks ---------------------------------------------------------
    submitted = 0

    async def ingest() -> int:
        nonlocal submitted
        streams = [DeviceStream(spec) for spec in specs]
        sim_time_ns = 0
        publisher = f"ingest-{shard_index}"
        for step in range(1, config.intervals + 1):
            for stream in streams:
                cadence = cadence_for(stream.spec.index, config.cadences)
                if (step - 1) % cadence:
                    continue
                record = stream.next_interval()
                sim_time_ns = record.time_ns
                submitted += 1
                metric_emitted.inc()
                await bus.publish(
                    "interval.observed",
                    record,
                    publisher=publisher,
                    key=f"{record.device_id}@{record.interval_index}",
                )
            if writer is not None:
                writer.maybe_write(step, sim_time_ns)
            # Step barrier: hand the loop to the scoring task so queues
            # drain in the same step rhythm the lockstep executor ticks
            # in (and drop-oldest/shed measure real per-step pressure).
            await asyncio.sleep(0)
        return sim_time_ns

    async def score() -> None:
        while True:
            batch = await scoring_sub.get_batch(config.batch_size)
            if batch is None:
                return
            if jitter is not None:
                await jitter.point("score")
            records = [event.payload for event in batch]
            first = records[0]
            try:
                faults.check(
                    "subscriber.handle",
                    token=(
                        f"scoring:{first.device_id}@{first.interval_index}"
                    ),
                )
                worker.score_batch(records)
            except Exception as exc:
                bus.poison(scoring_sub, batch[0], exc)
                return

    def handle_report(event) -> None:
        if event.topic == "interval.scored":
            summary["scored"] += 1
            if event.payload.flag != OK:
                summary["flagged"] += 1
        else:
            summary["alarms"] += 1

    score_task = asyncio.ensure_future(score())
    report_task = asyncio.ensure_future(
        run_subscriber(bus, reporting_sub, handle_report, jitter=jitter)
    )
    try:
        sim_time_ns = await ingest()
        # Shutdown cascade: stop deliveries to scoring, let it drain its
        # backlog, then let reporting drain what scoring just published.
        scoring_sub.close()
        await score_task
        reporting_sub.close()
        await report_task
    finally:
        for task in (score_task, report_task):
            if not task.done():
                task.cancel()
        bus.close()
        worker.on_scored = None

    bus_stats = bus.stats()
    bus_stats["reporting"] = dict(summary)
    bus_stats["failures"] = list(bus.failures)
    if controller is not None:
        bus_stats["recalibration"] = controller.stats()
    stats = {
        "submitted": submitted,
        "dropped": sum(s.dropped for s in worker.states.values()),
        "block_stalls": scoring_sub.block_waits,
        "bus": bus_stats,
    }
    return stats, sim_time_ns

"""Detector registry: device → trained :class:`MhmDetector`.

A fleet mixes device *profiles* (named platform configurations from
:mod:`repro.sim.fleet`); every device of a profile shares one detector
trained on that profile's normal behaviour.  The registry trains
detectors lazily through the PR-2 artifact cache
(:func:`~repro.pipeline.stages.train_detector_cached`), so repeated
serves of the same fleet configuration load fitted parameters
bit-identically from disk instead of re-running EM.

Shard workers never train: the parent process resolves every needed
detector once, exports the fitted parameters with
:meth:`DetectorRegistry.arrays_payload`, and workers rebuild them via
:meth:`DetectorRegistry.detectors_from_payload` —
``MhmDetector.from_arrays(to_arrays(d))`` is bit-exact, so every shard
scores with numerically identical detectors.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from ..learn.contexts import ContextDetector
from ..learn.detector import MhmDetector
from ..pipeline.cache import ArtifactCache
from ..pipeline.stages import (
    collect_training_data_cached,
    context_material,
    detector_material,
    training_material,
)
from ..pipeline.stages import train_context_detector_cached, train_detector_cached
from ..sim.fleet import profile_config

__all__ = ["FleetTrainSpec", "DetectorRegistry"]


@dataclass(frozen=True)
class FleetTrainSpec:
    """Training budget for each profile's detector."""

    runs: int = 2
    intervals_per_run: int = 80
    validation_intervals: int = 80
    num_gaussians: int = 5
    em_restarts: int = 3

    def __post_init__(self) -> None:
        if self.runs < 1 or self.intervals_per_run < 1:
            raise ValueError("training needs at least one run and interval")
        if self.validation_intervals < 1:
            raise ValueError("validation_intervals must be >= 1")


def _profile_seeds(root_seed: int, profile: str) -> tuple:
    """Deterministic (base_seed, detector_seed) for a profile.

    Mixing a hash of the profile name into the ``SeedSequence`` entropy
    gives every profile independent training streams while staying a
    pure function of ``(root_seed, profile)`` — the same property the
    runner relies on for worker-count independence.
    """
    tag = int.from_bytes(
        hashlib.sha256(profile.encode()).digest()[:8], "big"
    )
    state = np.random.SeedSequence([root_seed, tag]).generate_state(2, np.uint32)
    return int(state[0]), int(state[1])


class DetectorRegistry:
    """Lazily trains and memoises one detector per device profile."""

    def __init__(
        self,
        root_seed: int = 0,
        train: FleetTrainSpec = FleetTrainSpec(),
        cache: Optional[ArtifactCache] = None,
    ):
        self.root_seed = root_seed
        self.train = train
        self.cache = cache
        self._detectors: Dict[str, MhmDetector] = {}
        self._contexts: Dict[str, ContextDetector] = {}
        self.cache_hits = 0

    def detector_for(self, profile: str) -> MhmDetector:
        detector = self._detectors.get(profile)
        if detector is None:
            detector = self._train(profile)
            self._detectors[profile] = detector
        return detector

    def context_detector_for(self, profile: str) -> ContextDetector:
        """The profile's second-modality model (trained lazily, cached)."""
        detector = self._contexts.get(profile)
        if detector is None:
            detector = self._train_context(profile)
            self._contexts[profile] = detector
        return detector

    def detectors(self, profiles: Iterable[str]) -> Dict[str, MhmDetector]:
        return {profile: self.detector_for(profile) for profile in profiles}

    # -- shard worker hand-off -----------------------------------------
    def arrays_payload(self, profiles: Iterable[str]) -> Dict[str, dict]:
        """Fitted parameters per profile, picklable for shard workers."""
        return {
            profile: self.detector_for(profile).to_arrays()
            for profile in sorted(set(profiles))
        }

    def context_arrays_payload(self, profiles: Iterable[str]) -> Dict[str, dict]:
        """Fitted context models per profile, picklable for workers."""
        return {
            profile: self.context_detector_for(profile).to_arrays()
            for profile in sorted(set(profiles))
        }

    def fleet_payload(
        self, profiles: Iterable[str], modality: str = "mhm"
    ) -> Dict[str, dict]:
        """Bundled per-profile hand-off for the fused scoring path.

        One picklable dict per profile: the MHM detector's fitted
        arrays plus (for the context-bearing modalities) the context
        model's — everything a shard needs to build its
        :class:`~repro.kernels.FleetScorer` bank, shipped in a single
        payload instead of two parallel dicts.
        """
        need_context = modality != "mhm"
        return {
            profile: {
                "detector": self.detector_for(profile).to_arrays(),
                "context": (
                    self.context_detector_for(profile).to_arrays()
                    if need_context
                    else None
                ),
            }
            for profile in sorted(set(profiles))
        }

    @staticmethod
    def from_fleet_payload(
        payload: Dict[str, dict]
    ) -> tuple:
        """Rebuild ``(detectors, context_detectors)`` inside a shard
        worker (bit-exact); ``context_detectors`` is ``None`` when the
        payload carries no context bundles."""
        detectors = {
            profile: MhmDetector.from_arrays(bundle["detector"])
            for profile, bundle in payload.items()
        }
        contexts = {
            profile: ContextDetector.from_arrays(bundle["context"])
            for profile, bundle in payload.items()
            if bundle.get("context") is not None
        }
        return detectors, (contexts or None)

    @staticmethod
    def detectors_from_payload(payload: Dict[str, dict]) -> Dict[str, MhmDetector]:
        """Rebuild the detectors inside a shard worker (bit-exact)."""
        return {
            profile: MhmDetector.from_arrays(arrays)
            for profile, arrays in payload.items()
        }

    @staticmethod
    def contexts_from_payload(
        payload: Dict[str, dict]
    ) -> Dict[str, ContextDetector]:
        """Rebuild the context models inside a shard worker (bit-exact)."""
        return {
            profile: ContextDetector.from_arrays(arrays)
            for profile, arrays in payload.items()
        }

    # -- training ------------------------------------------------------
    def _train(self, profile: str) -> MhmDetector:
        config = profile_config(profile)
        base_seed, detector_seed = _profile_seeds(self.root_seed, profile)
        spec = self.train
        detector_kwargs = {
            "num_gaussians": spec.num_gaussians,
            "em_restarts": spec.em_restarts,
            "seed": detector_seed,
        }
        train_mat = training_material(
            config,
            spec.runs,
            spec.intervals_per_run,
            spec.validation_intervals,
            base_seed,
        )

        def data_provider():
            data, hit = collect_training_data_cached(
                config,
                runs=spec.runs,
                intervals_per_run=spec.intervals_per_run,
                validation_intervals=spec.validation_intervals,
                base_seed=base_seed,
                cache=self.cache,
            )
            if hit:
                self.cache_hits += 1
            return data

        detector, hit = train_detector_cached(
            data_provider,
            detector_material(train_mat, detector_kwargs),
            detector_kwargs,
            cache=self.cache,
            fault_token=f"serve:{profile}",
        )
        if hit:
            self.cache_hits += 1
        return detector

    def _train_context(self, profile: str) -> ContextDetector:
        config = profile_config(profile)
        base_seed, detector_seed = _profile_seeds(self.root_seed, profile)
        spec = self.train
        context_kwargs = {"seed": detector_seed}
        train_mat = training_material(
            config,
            spec.runs,
            spec.intervals_per_run,
            spec.validation_intervals,
            base_seed,
        )

        def data_provider():
            data, hit = collect_training_data_cached(
                config,
                runs=spec.runs,
                intervals_per_run=spec.intervals_per_run,
                validation_intervals=spec.validation_intervals,
                base_seed=base_seed,
                cache=self.cache,
            )
            if hit:
                self.cache_hits += 1
            return data

        detector, hit = train_context_detector_cached(
            data_provider,
            context_material(train_mat, context_kwargs),
            context_kwargs,
            cache=self.cache,
            fault_token=f"serve:{profile}",
        )
        if hit:
            self.cache_hits += 1
        return detector

"""The fleet service: wiring simulator → router → workers → report.

:class:`FleetService` is the long-running entry point behind
``repro serve``.  One run:

1. expands ``(devices, seed)`` into deterministic
   :class:`~repro.sim.fleet.DeviceSpec`\\ s;
2. resolves every needed profile detector once, in the parent, through
   the :class:`~repro.serve.registry.DetectorRegistry` (artifact-cache
   backed) and exports the fitted parameters;
3. partitions devices across ``shards`` (``index % shards``) and runs
   each shard — in-process for ``shards == 1``, in a
   ``ProcessPoolExecutor`` otherwise.  A shard replays its devices'
   streams, routes records through a bounded backpressure queue, and
   scores them in fixed-shape cross-device batches;
4. merges the per-device reports into one :class:`FleetReport`.

Because a device's stream is a pure function of its spec, detectors
are shipped bit-exactly, and fixed-shape batching makes each record's
score independent of its batch-mates, the merged report is
**bit-identical across shard counts** — ``--shards 1`` and
``--shards 4`` on the same seed produce the same per-device digests
and the same fleet digest.  (Under a throttled/drop-oldest queue the
*set of dropped records* is shard-local load shedding and may differ;
the scores of whatever was scored still match.)
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .. import faults, kernels, obs
from ..faults.plan import FaultPlan
from ..learn.ensemble import EnsembleConfig
from ..obs.manifest import to_jsonable
from ..obs.snapshots import SnapshotWriter
from ..pipeline.cache import ArtifactCache
from ..pipeline.stages import SCENARIOS
from ..sim.fleet import FleetSimulator, build_fleet_specs
from .async_exec import cadence_for, run_shard_async, scale_spec_for_cadence
from .bus import BUS_POLICIES
from .drift import DriftMonitor, DriftPolicy
from .recalibrate import RecalibrationPolicy
from .registry import DetectorRegistry, FleetTrainSpec
from .report import DeviceReport, FleetReport
from .router import POLICIES, StreamRouter
from .worker import MODALITIES, ShardWorker

__all__ = ["EXECUTORS", "ServeConfig", "TelemetryConfig", "FleetService"]

#: Shard executors: the serial reference loop and the event-bus data
#: plane.  The bus-conformance suite pins them bit-identical.
EXECUTORS = ("lockstep", "async")

#: Trace categories the fleet service keeps by default: fleet-layer
#: events only.  The platform simulator's per-tick events would put a
#: 60-second soak trace in the hundreds of megabytes.
SERVE_TRACE_CATEGORIES = ("serve", "alarm")


@dataclass(frozen=True)
class TelemetryConfig:
    """Which telemetry the fleet run carries, and where it lands.

    Picklable and shipped to shard processes: a shard child enables a
    fresh ``repro.obs`` stack from this config, runs against it, and
    returns the collected payload (metrics snapshot, trace events,
    log records) for the parent to merge.  ``disabled()`` is the
    default — telemetry stays strictly opt-in, preserving the PR-1
    no-op-twin overhead contract.
    """

    metrics: bool = False
    tracing: bool = False
    logging: bool = False
    metrics_dir: Optional[str] = None
    metrics_interval: Optional[int] = None
    trace_categories: Optional[Tuple[str, ...]] = SERVE_TRACE_CATEGORIES

    @property
    def any_enabled(self) -> bool:
        return self.metrics or self.tracing or self.logging

    @classmethod
    def disabled(cls) -> "TelemetryConfig":
        return cls()

    @classmethod
    def from_current(cls, **overrides) -> "TelemetryConfig":
        """Mirror the parent process's live ``repro.obs`` state."""
        tracer = obs.tracer()
        categories = getattr(tracer, "categories", None)
        fields_ = dict(
            metrics=obs.metrics().enabled,
            tracing=tracer.enabled,
            logging=obs.logger().enabled,
            trace_categories=tuple(categories) if categories else None,
        )
        fields_.update(overrides)
        return cls(**fields_)


@dataclass(frozen=True)
class ServeConfig:
    """Everything that determines a fleet serving run."""

    devices: int = 8
    shards: int = 1
    intervals: int = 100
    policy: str = "block"
    queue_capacity: int = 128
    batch_size: int = 32
    drain_per_step: Optional[int] = None
    p_percent: float = 1.0
    consecutive_for_alarm: int = 3
    seed: int = 0
    profiles: Tuple[str, ...] = ("baseline", "rtos", "netload")
    attacked_devices: int = 0
    attack_scenarios: Tuple[str, ...] = tuple(sorted(SCENARIOS))
    inject_fraction: float = 0.5
    train: FleetTrainSpec = field(default_factory=FleetTrainSpec)
    cache_dir: Optional[str] = None
    use_cache: bool = True
    keep_densities: bool = False
    drift: DriftPolicy = field(default_factory=DriftPolicy)
    #: Scoring mode: "mhm" (default — reports and digests identical to
    #: earlier single-modality builds), "contexts", or "ensemble".
    modality: str = "mhm"
    ensemble: EnsembleConfig = field(default_factory=EnsembleConfig)
    #: Fused-kernel compute dtype for the shard scorers: "float64"
    #: (the digest-bearing default), "float32" (opt-in fast path), or
    #: ``None`` to inherit :func:`repro.kernels.active_dtype` at run
    #: time.  Resolved in the parent and shipped to every shard, since
    #: programmatic dtype overrides don't cross process-pool
    #: boundaries (only environment variables do).
    kernels_dtype: Optional[str] = None
    #: Shard executor: "lockstep" (the serial reference) or "async"
    #: (the event-bus data plane; same digests, by contract).
    executor: str = "lockstep"
    #: Heterogeneous device cadences (async executor only): device *i*
    #: emits every ``cadences[i % len(cadences)]`` fleet steps.  ``None``
    #: means every device ticks every step, matching lockstep.
    cadences: Optional[Tuple[int, ...]] = None
    #: Applied hot detector swap (async executor only): drift proposals
    #: flow through a canary trial and commit per-device thresholds.
    recalibration: RecalibrationPolicy = field(
        default_factory=RecalibrationPolicy
    )
    #: Wall-clock seconds a block-policy publish may wait on a stuck
    #: subscriber before the run aborts with a BusStallError (exit
    #: code 8 from the CLI).  ``None`` disables the watchdog.
    stall_timeout: Optional[float] = 30.0

    def __post_init__(self) -> None:
        if self.modality not in MODALITIES:
            raise ValueError(
                f"unknown modality {self.modality!r}; "
                f"choose from {MODALITIES}"
            )
        if (
            self.kernels_dtype is not None
            and self.kernels_dtype not in kernels.DTYPES
        ):
            raise ValueError(
                f"unknown kernels dtype {self.kernels_dtype!r}; "
                f"choose from {kernels.DTYPES} (or None to inherit)"
            )
        if self.devices < 1:
            raise ValueError("devices must be >= 1")
        if not 1 <= self.shards <= self.devices:
            raise ValueError("shards must be in [1, devices]")
        if self.intervals < 1:
            raise ValueError("intervals must be >= 1")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; "
                f"choose from {EXECUTORS}"
            )
        if self.executor == "lockstep":
            if self.policy not in POLICIES:
                raise ValueError(
                    f"unknown backpressure policy {self.policy!r}; "
                    f"choose from {POLICIES}"
                )
            if self.cadences is not None:
                raise ValueError(
                    "heterogeneous cadences need executor='async'"
                )
            if self.recalibration.enabled:
                raise ValueError(
                    "threshold recalibration needs executor='async'"
                )
        else:
            if self.policy not in BUS_POLICIES:
                raise ValueError(
                    f"unknown backpressure policy {self.policy!r}; "
                    f"choose from {BUS_POLICIES}"
                )
            if self.drain_per_step is not None:
                raise ValueError(
                    "drain_per_step is a lockstep router throttle; "
                    "not supported under executor='async'"
                )
        if self.cadences is not None:
            if not self.cadences:
                raise ValueError("cadences must be non-empty")
            if any(int(c) < 1 for c in self.cadences):
                raise ValueError("every cadence must be >= 1")
        if self.stall_timeout is not None and self.stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive (or None)")
        if self.consecutive_for_alarm < 1:
            raise ValueError("consecutive_for_alarm must be >= 1")
        if not 0 < self.p_percent < 100:
            raise ValueError("p_percent must be in (0, 100)")


def _run_shard(
    shard_index: int,
    specs: Sequence,
    fleet_payload: Dict[str, dict],
    config: ServeConfig,
    fault_plan: Optional[FaultPlan],
    telemetry: Optional[TelemetryConfig] = None,
    in_process: bool = True,
) -> Tuple[List[DeviceReport], Dict[str, int], Optional[dict]]:
    """One shard's full run (module-level: picklable for worker pools).

    With ``in_process=True`` (the ``shards == 1`` path) the shard runs
    against the parent's live instruments and returns no telemetry
    payload.  In a pool child (``in_process=False``) a fresh obs stack
    is enabled from ``telemetry``; the collected metrics snapshot,
    trace events and log records come back as the third return value
    for the parent to merge — instruments don't cross process
    boundaries, payloads do.
    """
    telemetry = telemetry if telemetry is not None else TelemetryConfig.disabled()
    if not in_process and telemetry.any_enabled:
        obs.enable(
            with_metrics=telemetry.metrics,
            with_tracing=telemetry.tracing,
            with_logging=telemetry.logging,
            trace_categories=telemetry.trace_categories,
        )
    writer = None
    if telemetry.metrics and telemetry.metrics_dir:
        writer = SnapshotWriter(
            telemetry.metrics_dir,
            shard=shard_index,
            interval=telemetry.metrics_interval,
            meta={"devices": len(specs), "seed": config.seed},
        )
    log = obs.logger()
    if log.enabled:
        log.event(
            "serve.shard.start",
            shard=shard_index,
            seed=config.seed,
            devices=len(specs),
        )
    # The parent resolved the fused-kernel dtype into the config (a
    # programmatic kernels.set_dtype override would not survive the
    # hop into a pool child); apply it for the whole shard run.
    dtype = config.kernels_dtype or kernels.active_dtype()
    try:
        with kernels.use_dtype(dtype), faults.injected(fault_plan):
            detectors, context_detectors = DetectorRegistry.from_fleet_payload(
                fleet_payload
            )
            worker = ShardWorker(
                detectors,
                specs,
                p_percent=config.p_percent,
                consecutive_for_alarm=config.consecutive_for_alarm,
                batch_pad=config.batch_size,
                drift=DriftMonitor(config.drift, shard=shard_index),
                shard=shard_index,
                modality=config.modality,
                context_detectors=context_detectors,
                ensemble=config.ensemble,
            )
            if config.executor == "async":
                stats, sim_time_ns = asyncio.run(
                    run_shard_async(
                        shard_index, specs, worker, config, writer=writer
                    )
                )
            else:
                router = StreamRouter(
                    worker,
                    batch_size=config.batch_size,
                    capacity=config.queue_capacity,
                    policy=config.policy,
                    drain_per_step=config.drain_per_step,
                    shard=shard_index,
                )
                simulator = FleetSimulator(specs)
                sim_time_ns = 0
                for step in range(1, config.intervals + 1):
                    for record in simulator.step():
                        sim_time_ns = record.time_ns
                        router.submit(record)
                    router.end_step()
                    if writer is not None:
                        writer.maybe_write(step, sim_time_ns)
                router.flush()
                stats = {
                    "submitted": router.submitted,
                    "dropped": router.dropped,
                    "block_stalls": router.block_stalls,
                }
            reports = [
                worker.device_report(
                    spec,
                    shard_index,
                    keep_densities=config.keep_densities,
                    cadence=cadence_for(spec.index, config.cadences),
                )
                for spec in specs
            ]
        if log.enabled:
            log.event(
                "serve.shard.done",
                shard=shard_index,
                sim_time_ns=sim_time_ns,
                submitted=stats["submitted"],
                dropped=stats["dropped"],
                block_stalls=stats["block_stalls"],
            )
        if writer is not None:
            writer.write_final(config.intervals, sim_time_ns)
        payload = None
        if not in_process and telemetry.any_enabled:
            payload = {
                "shard": shard_index,
                "metrics": (
                    to_jsonable(obs.metrics().snapshot())
                    if telemetry.metrics
                    else None
                ),
                "trace_events": (
                    list(obs.tracer().events) if telemetry.tracing else None
                ),
                "log_records": (
                    obs.logger().records() if telemetry.logging else None
                ),
            }
        return reports, stats, payload
    finally:
        if not in_process and telemetry.any_enabled:
            obs.disable()


class FleetService:
    """Runs a fleet serving session and produces its report."""

    def __init__(
        self,
        config: ServeConfig = ServeConfig(),
        fault_plan: Optional[FaultPlan] = None,
        telemetry: Optional[TelemetryConfig] = None,
    ):
        self.config = config
        self.fault_plan = fault_plan
        self.telemetry = telemetry

    def build_specs(self):
        config = self.config
        return build_fleet_specs(
            devices=config.devices,
            intervals=config.intervals,
            root_seed=config.seed,
            profiles=config.profiles,
            attacked_devices=config.attacked_devices,
            attack_scenarios=config.attack_scenarios,
            inject_fraction=config.inject_fraction,
        )

    def _cache(self) -> Optional[ArtifactCache]:
        if not self.config.use_cache:
            return None
        return ArtifactCache(self.config.cache_dir)

    def run(self) -> FleetReport:
        # Resolve the fused-kernel dtype once, in the parent, so every
        # shard child scores with the same dtype regardless of how it
        # was selected (config field, set_dtype override, or the
        # REPRO_KERNELS_DTYPE environment variable).
        config = replace(
            self.config,
            kernels_dtype=self.config.kernels_dtype or kernels.active_dtype(),
        )
        telemetry = (
            self.telemetry
            if self.telemetry is not None
            else TelemetryConfig.from_current()
        )
        log = obs.logger()
        if log.enabled:
            log.event(
                "serve.start",
                seed=config.seed,
                devices=config.devices,
                shards=config.shards,
                intervals=config.intervals,
                policy=config.policy,
                batch_size=config.batch_size,
            )
        specs = self.build_specs()
        if config.cadences:
            # A slower device emits fewer records; its attack schedule
            # divides down with it so injection stays at the same
            # fraction of the (shorter) stream.
            specs = [
                scale_spec_for_cadence(
                    spec,
                    cadence_for(spec.index, config.cadences),
                    config.intervals,
                )
                for spec in specs
            ]
        with faults.injected(self.fault_plan):
            registry = DetectorRegistry(
                root_seed=config.seed, train=config.train, cache=self._cache()
            )
            payload = registry.fleet_payload(
                (spec.profile for spec in specs), modality=config.modality
            )
        if log.enabled:
            log.event(
                "serve.detectors.ready",
                seed=config.seed,
                profiles=sorted({spec.profile for spec in specs}),
                cache_hits=registry.cache_hits,
            )
        shard_specs = [
            [spec for spec in specs if spec.index % config.shards == shard]
            for shard in range(config.shards)
        ]
        if config.shards == 1:
            results = [
                _run_shard(
                    0, specs, payload, config, self.fault_plan,
                    telemetry=telemetry, in_process=True,
                )
            ]
        else:
            with ProcessPoolExecutor(max_workers=config.shards) as pool:
                futures = [
                    pool.submit(
                        _run_shard, shard, shard_specs[shard], payload,
                        config, self.fault_plan, telemetry, False,
                    )
                    for shard in range(config.shards)
                ]
                results = [future.result() for future in futures]
        device_reports: List[DeviceReport] = []
        block_stalls = 0
        bus_totals: Optional[dict] = None
        # Merge in shard order — deterministic, so merged telemetry
        # (trace event order, log replay order) is reproducible too.
        for reports, stats, shard_telemetry in results:
            device_reports.extend(reports)
            block_stalls += stats["block_stalls"]
            if stats.get("bus") is not None:
                bus_totals = self._merge_bus(bus_totals, stats["bus"])
            self._merge_telemetry(shard_telemetry)
        report = FleetReport.build(
            config=config,
            device_reports=device_reports,
            block_stalls=block_stalls,
            kernels_backend=kernels.active_backend(),
            kernels_dtype=config.kernels_dtype,
            bus=bus_totals,
        )
        if log.enabled:
            log.event(
                "serve.report.ready",
                seed=config.seed,
                devices=report.devices,
                alarms=report.alarms,
                dropped=report.dropped,
                fleet_digest=report.fleet_digest,
            )
        return report

    @staticmethod
    def _merge_bus(totals: Optional[dict], shard_bus: dict) -> dict:
        """Fold one shard's bus accounting into the fleet totals.

        Counters sum, nested counter dicts (``reporting``,
        ``recalibration``) sum per key, the ``failures`` records
        concatenate — shard order, so the merged manifest is
        deterministic.
        """
        if totals is None:
            totals = {}
        for key, value in shard_bus.items():
            if isinstance(value, dict):
                nested = totals.setdefault(key, {})
                for inner, count in value.items():
                    nested[inner] = nested.get(inner, 0) + count
            elif isinstance(value, list):
                totals.setdefault(key, []).extend(value)
            else:
                totals[key] = totals.get(key, 0) + value
        return totals

    @staticmethod
    def _merge_telemetry(shard_payload: Optional[dict]) -> None:
        """Fold one shard child's telemetry into the parent instruments."""
        if not shard_payload:
            return
        if shard_payload.get("metrics"):
            obs.metrics().merge_snapshot(shard_payload["metrics"])
        if shard_payload.get("trace_events"):
            obs.tracer().extend(shard_payload["trace_events"])
        if shard_payload.get("log_records"):
            parent_log = obs.logger()
            for record in shard_payload["log_records"]:
                parent_log.emit_record(record)

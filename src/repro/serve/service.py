"""The fleet service: wiring simulator → router → workers → report.

:class:`FleetService` is the long-running entry point behind
``repro serve``.  One run:

1. expands ``(devices, seed)`` into deterministic
   :class:`~repro.sim.fleet.DeviceSpec`\\ s;
2. resolves every needed profile detector once, in the parent, through
   the :class:`~repro.serve.registry.DetectorRegistry` (artifact-cache
   backed) and exports the fitted parameters;
3. partitions devices across ``shards`` (``index % shards``) and runs
   each shard — in-process for ``shards == 1``, in a
   ``ProcessPoolExecutor`` otherwise.  A shard replays its devices'
   streams, routes records through a bounded backpressure queue, and
   scores them in fixed-shape cross-device batches;
4. merges the per-device reports into one :class:`FleetReport`.

Because a device's stream is a pure function of its spec, detectors
are shipped bit-exactly, and fixed-shape batching makes each record's
score independent of its batch-mates, the merged report is
**bit-identical across shard counts** — ``--shards 1`` and
``--shards 4`` on the same seed produce the same per-device digests
and the same fleet digest.  (Under a throttled/drop-oldest queue the
*set of dropped records* is shard-local load shedding and may differ;
the scores of whatever was scored still match.)
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import faults, kernels
from ..faults.plan import FaultPlan
from ..pipeline.cache import ArtifactCache
from ..pipeline.stages import SCENARIOS
from ..sim.fleet import FleetSimulator, build_fleet_specs
from .drift import DriftMonitor, DriftPolicy
from .registry import DetectorRegistry, FleetTrainSpec
from .report import DeviceReport, FleetReport
from .router import POLICIES, StreamRouter
from .worker import ShardWorker

__all__ = ["ServeConfig", "FleetService"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything that determines a fleet serving run."""

    devices: int = 8
    shards: int = 1
    intervals: int = 100
    policy: str = "block"
    queue_capacity: int = 128
    batch_size: int = 32
    drain_per_step: Optional[int] = None
    p_percent: float = 1.0
    consecutive_for_alarm: int = 3
    seed: int = 0
    profiles: Tuple[str, ...] = ("baseline", "rtos", "netload")
    attacked_devices: int = 0
    attack_scenarios: Tuple[str, ...] = tuple(sorted(SCENARIOS))
    inject_fraction: float = 0.5
    train: FleetTrainSpec = field(default_factory=FleetTrainSpec)
    cache_dir: Optional[str] = None
    use_cache: bool = True
    keep_densities: bool = False
    drift: DriftPolicy = field(default_factory=DriftPolicy)

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError("devices must be >= 1")
        if not 1 <= self.shards <= self.devices:
            raise ValueError("shards must be in [1, devices]")
        if self.intervals < 1:
            raise ValueError("intervals must be >= 1")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown backpressure policy {self.policy!r}; "
                f"choose from {POLICIES}"
            )
        if self.consecutive_for_alarm < 1:
            raise ValueError("consecutive_for_alarm must be >= 1")
        if not 0 < self.p_percent < 100:
            raise ValueError("p_percent must be in (0, 100)")


def _run_shard(
    shard_index: int,
    specs: Sequence,
    detector_payload: Dict[str, dict],
    config: ServeConfig,
    fault_plan: Optional[FaultPlan],
) -> Tuple[List[DeviceReport], Dict[str, int]]:
    """One shard's full run (module-level: picklable for worker pools)."""
    with faults.injected(fault_plan):
        detectors = DetectorRegistry.detectors_from_payload(detector_payload)
        worker = ShardWorker(
            detectors,
            specs,
            p_percent=config.p_percent,
            consecutive_for_alarm=config.consecutive_for_alarm,
            batch_pad=config.batch_size,
            drift=DriftMonitor(config.drift),
        )
        router = StreamRouter(
            worker,
            batch_size=config.batch_size,
            capacity=config.queue_capacity,
            policy=config.policy,
            drain_per_step=config.drain_per_step,
        )
        simulator = FleetSimulator(specs)
        for _ in range(config.intervals):
            for record in simulator.step():
                router.submit(record)
            router.end_step()
        router.flush()
        reports = [
            worker.device_report(
                spec, shard_index, keep_densities=config.keep_densities
            )
            for spec in specs
        ]
        stats = {
            "submitted": router.submitted,
            "dropped": router.dropped,
            "block_stalls": router.block_stalls,
        }
        return reports, stats


class FleetService:
    """Runs a fleet serving session and produces its report."""

    def __init__(
        self,
        config: ServeConfig = ServeConfig(),
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.config = config
        self.fault_plan = fault_plan

    def build_specs(self):
        config = self.config
        return build_fleet_specs(
            devices=config.devices,
            intervals=config.intervals,
            root_seed=config.seed,
            profiles=config.profiles,
            attacked_devices=config.attacked_devices,
            attack_scenarios=config.attack_scenarios,
            inject_fraction=config.inject_fraction,
        )

    def _cache(self) -> Optional[ArtifactCache]:
        if not self.config.use_cache:
            return None
        return ArtifactCache(self.config.cache_dir)

    def run(self) -> FleetReport:
        config = self.config
        specs = self.build_specs()
        with faults.injected(self.fault_plan):
            registry = DetectorRegistry(
                root_seed=config.seed, train=config.train, cache=self._cache()
            )
            payload = registry.arrays_payload(spec.profile for spec in specs)
        shard_specs = [
            [spec for spec in specs if spec.index % config.shards == shard]
            for shard in range(config.shards)
        ]
        if config.shards == 1:
            results = [
                _run_shard(0, specs, payload, config, self.fault_plan)
            ]
        else:
            with ProcessPoolExecutor(max_workers=config.shards) as pool:
                futures = [
                    pool.submit(
                        _run_shard, shard, shard_specs[shard], payload,
                        config, self.fault_plan,
                    )
                    for shard in range(config.shards)
                ]
                results = [future.result() for future in futures]
        device_reports: List[DeviceReport] = []
        block_stalls = 0
        for reports, stats in results:
            device_reports.extend(reports)
            block_stalls += stats["block_stalls"]
        return FleetReport.build(
            config=config,
            device_reports=device_reports,
            block_stalls=block_stalls,
            kernels_backend=kernels.active_backend(),
        )

"""repro.serve — fleet-scale streaming detection service.

The paper's monitor guards one core of one board; this package scales
it out: N simulated devices (:mod:`repro.sim.fleet`) stream MHM
intervals into sharded workers that score them in batches through the
vectorized kernels, behind bounded backpressure queues, with
per-device drift monitoring against the calibrated θ_p.

Layers (see ``docs/serving.md``):

* :class:`~repro.serve.registry.DetectorRegistry` — profile → trained
  detector, through the artifact cache;
* :class:`~repro.serve.router.StreamRouter` — bounded queues, block /
  drop-oldest backpressure, ``serve.*`` obs counters (the lockstep
  reference executor's data plane);
* :class:`~repro.serve.bus.EventBus` — the asyncio pub/sub control
  plane (``--executor async``): ingestion, scoring, drift/
  recalibration and reporting as independent subscribers with
  per-subscriber backpressure (block / drop-oldest / shed);
* :class:`~repro.serve.worker.ShardWorker` — fixed-shape cross-device
  batch scoring with per-record SKIPPED degradation;
* :class:`~repro.serve.drift.DriftMonitor` — per-device score
  quantiles, θ_p recalibration proposals;
* :class:`~repro.serve.recalibrate.RecalibrationController` — applied
  hot detector swap: proposal → canary trial → per-device threshold
  commit;
* :class:`~repro.serve.service.FleetService` — the orchestrator
  behind ``repro serve``; emits a deterministic
  :class:`~repro.serve.report.FleetReport` that is bit-identical
  across shard counts *and* executors.
"""

from .bus import (
    BUS_POLICIES,
    BusStallError,
    Event,
    EventBus,
    SchedulingJitter,
    Subscription,
)
from .drift import DriftMonitor, DriftPolicy, DriftStatus
from .health import health_summary, write_health
from .recalibrate import RecalibrationController, RecalibrationPolicy
from .registry import DetectorRegistry, FleetTrainSpec
from .report import DeviceReport, FleetReport, device_digest
from .router import POLICIES, StreamRouter
from .service import (
    EXECUTORS,
    SERVE_TRACE_CATEGORIES,
    FleetService,
    ServeConfig,
    TelemetryConfig,
)
from .worker import ScoredInterval, ShardWorker, batched_log_densities

__all__ = [
    "BUS_POLICIES",
    "BusStallError",
    "Event",
    "EventBus",
    "SchedulingJitter",
    "Subscription",
    "DriftMonitor",
    "DriftPolicy",
    "DriftStatus",
    "DetectorRegistry",
    "FleetTrainSpec",
    "DeviceReport",
    "FleetReport",
    "device_digest",
    "POLICIES",
    "EXECUTORS",
    "StreamRouter",
    "FleetService",
    "ServeConfig",
    "TelemetryConfig",
    "SERVE_TRACE_CATEGORIES",
    "RecalibrationController",
    "RecalibrationPolicy",
    "ScoredInterval",
    "ShardWorker",
    "batched_log_densities",
    "health_summary",
    "write_health",
]

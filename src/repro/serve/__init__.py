"""repro.serve — fleet-scale streaming detection service.

The paper's monitor guards one core of one board; this package scales
it out: N simulated devices (:mod:`repro.sim.fleet`) stream MHM
intervals into sharded workers that score them in batches through the
vectorized kernels, behind bounded backpressure queues, with
per-device drift monitoring against the calibrated θ_p.

Layers (see ``docs/serving.md``):

* :class:`~repro.serve.registry.DetectorRegistry` — profile → trained
  detector, through the artifact cache;
* :class:`~repro.serve.router.StreamRouter` — bounded queues, block /
  drop-oldest backpressure, ``serve.*`` obs counters;
* :class:`~repro.serve.worker.ShardWorker` — fixed-shape cross-device
  batch scoring with per-record SKIPPED degradation;
* :class:`~repro.serve.drift.DriftMonitor` — per-device score
  quantiles, θ_p recalibration proposals;
* :class:`~repro.serve.service.FleetService` — the orchestrator
  behind ``repro serve``; emits a deterministic
  :class:`~repro.serve.report.FleetReport` that is bit-identical
  across shard counts.
"""

from .drift import DriftMonitor, DriftPolicy, DriftStatus
from .health import health_summary, write_health
from .registry import DetectorRegistry, FleetTrainSpec
from .report import DeviceReport, FleetReport, device_digest
from .router import POLICIES, StreamRouter
from .service import (
    SERVE_TRACE_CATEGORIES,
    FleetService,
    ServeConfig,
    TelemetryConfig,
)
from .worker import ShardWorker, batched_log_densities

__all__ = [
    "DriftMonitor",
    "DriftPolicy",
    "DriftStatus",
    "DetectorRegistry",
    "FleetTrainSpec",
    "DeviceReport",
    "FleetReport",
    "device_digest",
    "POLICIES",
    "StreamRouter",
    "FleetService",
    "ServeConfig",
    "TelemetryConfig",
    "SERVE_TRACE_CATEGORIES",
    "ShardWorker",
    "batched_log_densities",
    "health_summary",
    "write_health",
]

"""Asyncio pub/sub event bus: the fleet control plane's spine.

The lockstep executor (PR 5) ticks every device each interval and
scores synchronously — correct, but it welds ingestion, scoring, drift
monitoring and reporting into one call chain.  :class:`EventBus`
decouples them: publishers emit :class:`Event`\\ s onto named topics
and each subscriber owns a **bounded queue with its own backpressure
policy**, so a slow consumer degrades *itself* instead of the fleet.

Two delivery modes, chosen per subscription:

``queued`` (the data plane)
    Events land in the subscription's bounded deque and a consumer
    task drains them with ``await sub.get()`` /
    ``await sub.get_batch(n)``.  When the queue is full the policy
    decides what gives:

    * ``block`` — the publisher awaits until the consumer frees room
      (nothing is ever lost; a wall-clock ``stall_timeout`` guards
      against a dead consumer and raises :class:`BusStallError`);
    * ``drop-oldest`` — the oldest pending event is evicted (bounded
      staleness; the eviction is surfaced through ``on_drop``);
    * ``shed`` — the *incoming* event is discarded and counted
      (bounded work; newest data is sacrificed, queued data survives).

``direct`` (the control plane)
    The handler runs synchronously inside ``publish``, before the
    publisher proceeds.  This trades asynchrony for determinism: the
    drift→recalibration feedback loop must apply a committed threshold
    *before the very next record is scored*, or the effective switch
    point would depend on queue depths and shard count.  Direct
    subscriptions are what keep recalibrated runs bit-identical across
    shard counts.

Determinism: the bus introduces no wall-clock or RNG dependence of its
own.  Under a fixed configuration, asyncio's ready-queue scheduling is
deterministic, so two runs produce identical event orders; the
property suite additionally stirs interleavings with a *seeded*
:class:`SchedulingJitter` (pure-hash ``sleep(0)`` yield bursts) to
prove the FIFO/loss/shed invariants hold under any schedule.

Fault sites (``repro.faults``): ``bus.publish`` (fires before fan-out;
one retry, then the event is lost and reported via
``on_publish_lost``), ``bus.deliver`` (per queued subscription; one
retry, then that subscription's ``on_drop`` runs), and
``subscriber.handle`` (fires in the consumer; an unhandled fault
**poisons** the subscriber — it is detached so publishers cannot block
on its dead queue, the failure is recorded for the failures manifest,
and the run degrades instead of deadlocking).
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .. import faults, obs
from ..faults.plan import uniform_hash

__all__ = [
    "BUS_POLICIES",
    "BusStallError",
    "Event",
    "Subscription",
    "EventBus",
    "SchedulingJitter",
    "run_subscriber",
]

#: Backpressure policies a queued subscription accepts.  ``block`` and
#: ``drop-oldest`` mirror the lockstep router; ``shed`` is bus-only
#: (discard the incoming event, keep the queued backlog).
BUS_POLICIES = ("block", "drop-oldest", "shed")


class BusStallError(RuntimeError):
    """A ``block``-policy publish waited longer than ``stall_timeout``.

    Raised only on wall-clock starvation — a consumer that stopped
    draining without dying (the deadlock the chaos suite manufactures).
    ``repro serve`` maps it to its own exit code.
    """

    def __init__(self, subscriber: str, topic: str, timeout_s: float):
        super().__init__(
            f"bus stall: subscriber {subscriber!r} stopped draining "
            f"topic {topic!r} (waited {timeout_s:g}s)"
        )
        self.subscriber = subscriber
        self.topic = topic
        self.timeout_s = timeout_s

    def __reduce__(self):
        # A stalled shard child re-raises in the parent through the
        # process pool; default exception pickling would replay
        # __init__ with the formatted message as the only argument.
        return (BusStallError, (self.subscriber, self.topic, self.timeout_s))


@dataclass(frozen=True)
class Event:
    """One published event.

    ``seq`` numbers events per ``(publisher, topic)`` pair — the unit
    the FIFO ordering guarantee (and its property test) is stated in.
    ``key`` is the event's shard-invariant fault token
    (``device@interval`` for interval topics), so fault decisions agree
    across shard counts.
    """

    topic: str
    payload: object
    publisher: str
    seq: int
    key: str = "-"


class Subscription:
    """One subscriber's end of the bus: a bounded deque + wakeups."""

    def __init__(
        self,
        bus: "EventBus",
        name: str,
        topics: Tuple[str, ...],
        capacity: int = 256,
        policy: str = "block",
        mode: str = "queued",
        handler: Optional[Callable[[Event], None]] = None,
        on_drop: Optional[Callable[[Event], None]] = None,
    ):
        if policy not in BUS_POLICIES:
            raise ValueError(
                f"unknown bus policy {policy!r}; choose from {BUS_POLICIES}"
            )
        if mode not in ("queued", "direct"):
            raise ValueError("mode must be 'queued' or 'direct'")
        if mode == "direct" and handler is None:
            raise ValueError("a direct subscription needs a handler")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.bus = bus
        self.name = name
        self.topics = topics
        self.capacity = capacity
        self.policy = policy
        self.mode = mode
        self.handler = handler
        self.on_drop = on_drop
        self.closed = False
        self.poisoned = False
        self.delivered = 0
        self.dropped = 0  # drop-oldest evictions
        self.shed = 0  # shed-policy discards (+ forced sheds, see bus)
        self.block_waits = 0
        self._items: Deque[Event] = deque()
        self._not_empty = asyncio.Event()
        self._space = asyncio.Event()
        self._space.set()

    # -- producer side -------------------------------------------------
    def _evict_or_shed(self, event: Event) -> bool:
        """Apply drop-oldest/shed when full; True = still enqueue."""
        if self.policy == "drop-oldest":
            oldest = self._items.popleft()
            self.dropped += 1
            self.bus._count_drop()
            if self.on_drop is not None:
                self.on_drop(oldest)
            return True
        # shed: the incoming event is the casualty.
        self.shed += 1
        self.bus._count_shed()
        if self.on_drop is not None:
            self.on_drop(event)
        return False

    async def _put(self, event: Event) -> None:
        if self.closed:
            return
        if len(self._items) >= self.capacity:
            if self.policy == "block":
                self.block_waits += 1
                while len(self._items) >= self.capacity and not self.closed:
                    self._space.clear()
                    await self.bus._wait_for_space(self)
            elif not self._evict_or_shed(event):
                return
        if self.closed:
            return
        self._items.append(event)
        self._not_empty.set()

    def _put_nowait(self, event: Event) -> None:
        """Synchronous enqueue (``publish_sync``); a full ``block``
        queue degrades to a counted *forced shed* — a sync publisher
        cannot wait."""
        if self.closed:
            return
        if len(self._items) >= self.capacity:
            if self.policy == "block":
                self.shed += 1
                self.bus._count_shed()
                if self.on_drop is not None:
                    self.on_drop(event)
                return
            if not self._evict_or_shed(event):
                return
        self._items.append(event)
        self._not_empty.set()

    # -- consumer side -------------------------------------------------
    async def get(self) -> Optional[Event]:
        """Next event, FIFO; ``None`` once closed and drained."""
        while not self._items:
            if self.closed:
                return None
            self._not_empty.clear()
            await self._not_empty.wait()
        event = self._items.popleft()
        self.delivered += 1
        self.bus._count_delivered()
        if len(self._items) < self.capacity:
            self._space.set()
        return event

    async def get_batch(self, limit: int) -> Optional[List[Event]]:
        """Up to ``limit`` immediately-available events (≥ 1), FIFO."""
        first = await self.get()
        if first is None:
            return None
        batch = [first]
        while len(batch) < limit and self._items:
            batch.append(self._items.popleft())
            self.delivered += 1
            self.bus._count_delivered()
        if len(self._items) < self.capacity:
            self._space.set()
        return batch

    def depth(self) -> int:
        return len(self._items)

    def close(self) -> None:
        """No further deliveries; consumers drain the backlog then get
        ``None``.  Wakes blocked producers and waiting consumers."""
        self.closed = True
        self._not_empty.set()
        self._space.set()


class SchedulingJitter:
    """Seeded cooperative-yield bursts for interleaving exploration.

    ``await point(site)`` yields the event loop 0..``amplitude`` times,
    the count a pure hash of ``(seed, site, call ordinal)`` — so a
    hypothesis-drawn seed deterministically reproduces one schedule,
    and different seeds explore different ones.
    """

    def __init__(self, seed: int, amplitude: int = 2):
        if amplitude < 0:
            raise ValueError("amplitude must be >= 0")
        self.seed = seed
        self.amplitude = amplitude
        self._calls = 0

    async def point(self, site: str) -> None:
        self._calls += 1
        burst = int(
            uniform_hash(self.seed, site, str(self._calls))
            * (self.amplitude + 1)
        )
        for _ in range(burst):
            await asyncio.sleep(0)


class EventBus:
    """Topic-keyed pub/sub with per-subscriber bounded queues."""

    def __init__(
        self,
        stall_timeout: Optional[float] = 30.0,
        jitter: Optional[SchedulingJitter] = None,
        shard: int = 0,
    ):
        if stall_timeout is not None and stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive (or None)")
        self.stall_timeout = stall_timeout
        self.jitter = jitter
        self.shard = shard
        self.published = 0
        self.delivered = 0
        self.dropped = 0
        self.shed = 0
        self.publish_lost = 0
        self.deliver_faults = 0
        #: Poisoned-subscriber records — the failures-manifest payload.
        self.failures: List[dict] = []
        self.on_publish_lost: Optional[Callable[[str, object, str], None]] = None
        self._subs: Dict[str, List[Subscription]] = {}
        self._seq: Dict[Tuple[str, str], int] = {}
        registry = obs.metrics()
        self._metric_published = registry.counter("bus.published")
        self._metric_delivered = registry.counter("bus.delivered")
        self._metric_dropped = registry.counter("bus.dropped")
        self._metric_shed = registry.counter("bus.shed")
        self._metric_poisoned = registry.counter("bus.subscribers_poisoned")
        self._metric_publish_lost = registry.counter("bus.publish_lost")
        self._log = obs.logger()

    # -- wiring --------------------------------------------------------
    def subscribe(
        self,
        name: str,
        topics,
        capacity: int = 256,
        policy: str = "block",
        mode: str = "queued",
        handler: Optional[Callable[[Event], None]] = None,
        on_drop: Optional[Callable[[Event], None]] = None,
    ) -> Subscription:
        topics = (topics,) if isinstance(topics, str) else tuple(topics)
        sub = Subscription(
            self, name, topics, capacity=capacity, policy=policy,
            mode=mode, handler=handler, on_drop=on_drop,
        )
        for topic in topics:
            self._subs.setdefault(topic, []).append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        for topic in sub.topics:
            listeners = self._subs.get(topic, [])
            if sub in listeners:
                listeners.remove(sub)
        sub.close()

    def subscribers(self, topic: str) -> List[Subscription]:
        return list(self._subs.get(topic, []))

    # -- counters (subscription callbacks) -----------------------------
    def _count_delivered(self) -> None:
        self.delivered += 1
        self._metric_delivered.inc()

    def _count_drop(self) -> None:
        self.dropped += 1
        self._metric_dropped.inc()

    def _count_shed(self) -> None:
        self.shed += 1
        self._metric_shed.inc()

    # -- publishing ----------------------------------------------------
    def _gate(self, site: str, token: str) -> bool:
        """Evaluate a bus fault site with one attempt-tagged retry.

        Returns True when the operation may proceed.  ``raise``-mode
        faults are absorbed here: the first firing is retried under an
        attempt-suffixed token; a second firing abandons the operation.
        """
        for attempt in (0, 1):
            try:
                faults.check(site, token=f"{token}#a{attempt}")
                return True
            except faults.FaultError:
                continue
        return False

    async def publish(
        self, topic: str, payload: object, publisher: str = "-", key: str = "-"
    ) -> bool:
        """Publish onto ``topic``; False when a fault lost the event."""
        if self.jitter is not None:
            await self.jitter.point(f"publish:{topic}")
        if not self._gate("bus.publish", f"{topic}:{key}"):
            self._publish_lost(topic, payload, key)
            return False
        event = self._make_event(topic, payload, publisher, key)
        for sub in self.subscribers(topic):
            if sub.mode == "direct":
                self._dispatch_direct(sub, event)
            elif self._gate("bus.deliver", f"{sub.name}:{topic}:{key}"):
                await self._put_blocking(sub, event)
            else:
                self._deliver_lost(sub, event)
        return True

    def publish_sync(
        self, topic: str, payload: object, publisher: str = "-", key: str = "-"
    ) -> bool:
        """Synchronous publish — usable from inside a direct handler or
        a scoring callback.  Queued ``block`` subscriptions cannot be
        waited on here; a full one forces a counted shed."""
        if not self._gate("bus.publish", f"{topic}:{key}"):
            self._publish_lost(topic, payload, key)
            return False
        event = self._make_event(topic, payload, publisher, key)
        for sub in self.subscribers(topic):
            if sub.mode == "direct":
                self._dispatch_direct(sub, event)
            elif self._gate("bus.deliver", f"{sub.name}:{topic}:{key}"):
                sub._put_nowait(event)
            else:
                self._deliver_lost(sub, event)
        return True

    def _make_event(
        self, topic: str, payload: object, publisher: str, key: str
    ) -> Event:
        seq = self._seq.get((publisher, topic), 0)
        self._seq[(publisher, topic)] = seq + 1
        self.published += 1
        self._metric_published.inc()
        return Event(
            topic=topic, payload=payload, publisher=publisher, seq=seq, key=key
        )

    def _publish_lost(self, topic: str, payload: object, key: str) -> None:
        self.publish_lost += 1
        self._metric_publish_lost.inc()
        if self._log.enabled:
            self._log.event(
                "bus.publish.lost", level="warn", shard=self.shard,
                topic=topic, key=key,
            )
        if self.on_publish_lost is not None:
            self.on_publish_lost(topic, payload, key)

    def _deliver_lost(self, sub: Subscription, event: Event) -> None:
        self.deliver_faults += 1
        self._count_drop()
        if self._log.enabled:
            self._log.event(
                "bus.deliver.lost", level="warn", shard=self.shard,
                topic=event.topic, key=event.key, subscriber=sub.name,
            )
        if sub.on_drop is not None:
            sub.on_drop(event)

    async def _put_blocking(self, sub: Subscription, event: Event) -> None:
        if (
            sub.policy == "block"
            and self.stall_timeout is not None
            and sub.depth() >= sub.capacity
        ):
            try:
                await asyncio.wait_for(
                    sub._put(event), timeout=self.stall_timeout
                )
            except asyncio.TimeoutError:
                if self._log.enabled:
                    self._log.event(
                        "bus.stall", level="error", shard=self.shard,
                        subscriber=sub.name, topic=event.topic,
                        depth=sub.depth(), timeout_s=self.stall_timeout,
                    )
                raise BusStallError(
                    sub.name, event.topic, self.stall_timeout
                ) from None
        else:
            await sub._put(event)

    async def _wait_for_space(self, sub: Subscription) -> None:
        await sub._space.wait()

    # -- consumption / failure handling --------------------------------
    def _dispatch_direct(self, sub: Subscription, event: Event) -> None:
        if sub.poisoned or sub.closed:
            return
        try:
            faults.check(
                "subscriber.handle",
                token=f"{sub.name}:{event.topic}:{event.key}",
            )
            sub.handler(event)
            sub.delivered += 1
            self._count_delivered()
        except Exception as exc:
            self.poison(sub, event, exc)

    def poison(
        self, sub: Subscription, event: Optional[Event], exc: Exception
    ) -> None:
        """Record a crashed subscriber and detach it from the bus.

        Detaching is what turns "subscriber died" into degraded health
        instead of a deadlock: publishers can no longer block on the
        dead queue, and the failure lands in the manifest.
        """
        sub.poisoned = True
        self.unsubscribe(sub)
        self._metric_poisoned.inc()
        self.failures.append(
            {
                "subscriber": sub.name,
                "topic": event.topic if event is not None else None,
                "key": event.key if event is not None else None,
                "error": f"{type(exc).__name__}: {exc}",
                "shard": self.shard,
                "pending": sub.depth(),
            }
        )
        if self._log.enabled:
            self._log.event(
                "bus.subscriber.poisoned", level="error", shard=self.shard,
                subscriber=sub.name,
                topic=event.topic if event is not None else "-",
                error=f"{type(exc).__name__}: {exc}",
            )

    def close(self) -> None:
        for subs in self._subs.values():
            for sub in subs:
                sub.close()

    def stats(self) -> dict:
        """The bus's accounting snapshot (rides in ``FleetReport.bus``)."""
        return {
            "published": self.published,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "shed": self.shed,
            "publish_lost": self.publish_lost,
            "deliver_faults": self.deliver_faults,
            "subscribers_poisoned": len(self.failures),
        }


async def run_subscriber(
    bus: EventBus,
    sub: Subscription,
    handler: Callable[[Event], None],
    jitter: Optional[SchedulingJitter] = None,
) -> None:
    """Drain a queued subscription one event at a time until closed.

    An exception from ``handler`` (including a fired
    ``subscriber.handle`` fault) poisons the subscription and returns —
    the bus keeps running degraded.
    """
    while True:
        event = await sub.get()
        if event is None:
            return
        if jitter is not None:
            await jitter.point(f"handle:{sub.name}")
        try:
            faults.check(
                "subscriber.handle",
                token=f"{sub.name}:{event.topic}:{event.key}",
            )
            handler(event)
        except Exception as exc:
            bus.poison(sub, event, exc)
            return

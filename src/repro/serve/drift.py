"""Per-device score-drift monitoring.

θ_p is calibrated once, on held-out validation data from training
time.  A deployed device whose workload shifts (firmware update, new
traffic mix — the paper's Section 5.5 network-load study is exactly
this failure mode) will see its benign log-densities slide, and a
fixed θ_p then flags benign intervals far above the calibrated
p-percent budget.

:class:`DriftMonitor` keeps a bounded window of recent log-densities
per device and compares the *observed* sub-θ rate against the
*expected* rate (``p_percent / 100``).  A device is flagged as
drifted when the observed rate exceeds the expected one by both a
multiplicative factor and an absolute margin — single spikes don't
trip it, a sustained shift does.  For flagged devices it also
proposes a recalibrated threshold: the empirical p-quantile of the
current window, i.e. exactly the paper's θ_p calibration re-run on
fresh field data.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Optional

import numpy as np

from .. import obs

__all__ = ["DriftPolicy", "DriftStatus", "DriftMonitor", "evaluate_drift"]


@dataclass(frozen=True)
class DriftPolicy:
    """When is a device's score distribution considered drifted?"""

    window: int = 256  # recent log-densities kept per device
    min_samples: int = 40  # no verdict before this many observations
    rate_factor: float = 3.0  # observed rate must exceed factor·expected
    min_excess: float = 0.02  # ...and expected + this absolute margin

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.rate_factor < 1.0:
            raise ValueError("rate_factor must be >= 1")
        if not 0 <= self.min_excess < 1:
            raise ValueError("min_excess must be in [0, 1)")


@dataclass(frozen=True)
class DriftStatus:
    """Drift verdict for one device at reporting time."""

    device_id: str
    samples: int
    observed_rate: Optional[float]
    expected_rate: float
    drifted: bool
    suggested_threshold: Optional[float]


class DriftMonitor:
    """Tracks per-device score quantiles over a sliding window."""

    def __init__(self, policy: DriftPolicy = DriftPolicy(), shard: int = 0):
        self.policy = policy
        self.shard = shard
        self._windows: Dict[str, Deque[float]] = {}
        self._metric_flagged = obs.metrics().counter("serve.drift.flagged")
        self._log = obs.logger()

    def observe(self, device_id: str, log_density: float) -> None:
        window = self._windows.get(device_id)
        if window is None:
            window = deque(maxlen=self.policy.window)
            self._windows[device_id] = window
        window.append(float(log_density))

    def observe_series(
        self, device_id: str, log_densities: Iterable[float]
    ) -> None:
        """Feed a whole score series (oldest first) for one device."""
        for value in log_densities:
            self.observe(device_id, value)

    def samples(self, device_id: str) -> int:
        window = self._windows.get(device_id)
        return 0 if window is None else len(window)

    def reset(self, device_id: str) -> None:
        """Forget a device's window (recalibration commit): the next
        drift verdict is earned entirely on post-commit scores."""
        self._windows.pop(device_id, None)

    def status(
        self, device_id: str, theta: float, p_percent: float
    ) -> DriftStatus:
        """Drift verdict for ``device_id`` against threshold ``theta``."""
        expected = p_percent / 100.0
        window = self._windows.get(device_id)
        samples = 0 if window is None else len(window)
        if samples < self.policy.min_samples:
            return DriftStatus(
                device_id=device_id,
                samples=samples,
                observed_rate=None,
                expected_rate=expected,
                drifted=False,
                suggested_threshold=None,
            )
        values = np.asarray(window, dtype=np.float64)
        observed = float(np.mean(values < theta))
        trip = max(
            self.policy.rate_factor * expected,
            expected + self.policy.min_excess,
        )
        drifted = observed >= trip
        suggested = None
        if drifted:
            # The paper's θ_p calibration, re-run on the field window.
            suggested = float(np.quantile(values, expected))
            self._metric_flagged.inc()
            if self._log.enabled:
                self._log.event(
                    "serve.drift.flag",
                    level="warn",
                    device_id=device_id,
                    shard=self.shard,
                    observed_rate=observed,
                    expected_rate=expected,
                    suggested_threshold=suggested,
                    samples=samples,
                )
        return DriftStatus(
            device_id=device_id,
            samples=samples,
            observed_rate=observed,
            expected_rate=expected,
            drifted=drifted,
            suggested_threshold=suggested,
        )


def evaluate_drift(
    log_densities: Iterable[float],
    theta: float,
    p_percent: float,
    policy: DriftPolicy = DriftPolicy(),
    device_id: str = "offline",
) -> DriftStatus:
    """One-shot drift verdict over a finished score series.

    Convenience wrapper for offline consumers (the conformance matrix
    above all): streams ``log_densities`` through a throwaway
    :class:`DriftMonitor` and returns the final verdict — exactly what
    a serving shard would report after seeing the same scores.  ``theta``
    and the scores must be in the same (log) units.
    """
    monitor = DriftMonitor(policy=policy)
    monitor.observe_series(device_id, log_densities)
    return monitor.status(device_id, theta, p_percent)

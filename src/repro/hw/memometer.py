"""The Memometer: on-chip memory-behaviour monitoring hardware.

Section 3 of the paper.  The Memometer snoops the address line between
the monitored core and its L1 cache, filters addresses against the
configured region, computes the target cell with a logical right shift,
and increments a 32-bit counter in one of two 8 KB on-chip MHM memories.
At each monitoring-interval boundary the two memories swap roles
(double buffering): the freshly completed MHM is handed to the secure
core for analysis while the other memory starts counting the next
interval.

This model is bit-exact at the level that matters:

* the filter/shift arithmetic is the hardware formula
  (via :class:`~repro.core.spec.HeatMapSpec`);
* counters saturate at 2**32 - 1;
* an MHM may have at most ``8 KB / 4 B = 2048`` cells — the paper's
  "at most about 2,000 cells";
* monitoring is uninterrupted across the swap: accesses observed while
  the secure core analyses buffer *i* land in buffer *1-i*.

A scalar :meth:`Memometer.observe` reproduces the per-address datapath;
:meth:`Memometer.observe_burst` is the fast path used by the simulator.
The burst path routes through :func:`repro.kernels.count_cells`, so the
``REPRO_KERNELS`` switch selects between the vectorised histogram
(``np.bincount`` over the shifted offsets) and the scalar reference
oracle; the differential suite holds the two bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .. import kernels, obs
from ..core.mhm import MemoryHeatMap
from ..core.spec import HeatMapSpec
from ..sim.trace import AccessBurst

__all__ = [
    "MHM_MEMORY_BYTES",
    "COUNTER_BYTES",
    "MAX_CELLS",
    "COUNTER_MAX",
    "MemometerConfigError",
    "ControlRegisters",
    "Memometer",
]

#: Each of the two on-chip MHM memories is 8 KB (Section 5.1).
MHM_MEMORY_BYTES = 8 * 1024
#: Each cell counts "up to 2**32" — a 32-bit counter.
COUNTER_BYTES = 4
#: Maximum number of cells an MHM can have (the paper's ~2,000).
MAX_CELLS = MHM_MEMORY_BYTES // COUNTER_BYTES
#: Saturation value of a cell counter.
COUNTER_MAX = 2**32 - 1


class MemometerConfigError(ValueError):
    """Raised when control-register values are unrepresentable."""


@dataclass(frozen=True)
class ControlRegisters:
    """The secure core's view of the Memometer configuration.

    Section 3.1: "(a) the base address of the target monitoring region;
    (b) the size of the region; (c) the granularity (a power of 2) and
    (d) the monitoring interval."
    """

    base_address: int
    region_size: int
    granularity: int
    interval_ns: int

    def __post_init__(self) -> None:
        if self.interval_ns <= 0:
            raise MemometerConfigError("monitoring interval must be positive")
        spec = self.spec  # validates base/size/granularity
        if spec.num_cells > MAX_CELLS:
            raise MemometerConfigError(
                f"{spec.num_cells} cells exceed the on-chip MHM memory "
                f"({MAX_CELLS} cells = {MHM_MEMORY_BYTES} bytes); "
                f"increase the granularity"
            )

    @property
    def spec(self) -> HeatMapSpec:
        return HeatMapSpec(
            base_address=self.base_address,
            region_size=self.region_size,
            granularity=self.granularity,
        )


class Memometer:
    """The snooping counter array with double-buffered MHM memories.

    Parameters
    ----------
    registers:
        Monitoring parameters (written by the secure core).
    on_heatmap:
        Callback invoked at each interval boundary with the completed
        :class:`MemoryHeatMap` — "the controller informs the secure
        core of the creation of an MHM".
    """

    def __init__(
        self,
        registers: ControlRegisters,
        on_heatmap: Optional[Callable[[MemoryHeatMap], None]] = None,
    ):
        self.registers = registers
        self.spec = registers.spec
        self.on_heatmap = on_heatmap
        # Two identical on-chip memories; uint64 backing, saturated at
        # COUNTER_MAX on every update, so overflow cannot wrap.
        self._buffers = [
            np.zeros(self.spec.num_cells, dtype=np.uint64),
            np.zeros(self.spec.num_cells, dtype=np.uint64),
        ]
        self._active = 0
        self._interval_index = 0
        self._interval_start_ns = 0
        # Snoop statistics (diagnostics only; not architectural).
        self.snooped_accesses = 0
        self.accepted_accesses = 0
        # Observability instruments (no-op singletons when disabled;
        # the hot path pays one bound-method call per burst and never
        # branches).  Cached here, so enable repro.obs *before*
        # constructing the Memometer.
        registry = obs.metrics()
        self._metric_snooped = registry.counter("memometer.snooped_accesses")
        self._metric_accepted = registry.counter("memometer.accepted_accesses")
        self._metric_filtered = registry.counter("memometer.filtered_accesses")
        self._metric_saturated = registry.counter("memometer.saturated")
        self._metric_bursts = registry.counter("memometer.bursts")
        self._metric_swaps = registry.counter("memometer.swaps")
        self._tracer = obs.tracer()

    # ------------------------------------------------------------------
    # Snoop datapath
    # ------------------------------------------------------------------
    def observe(self, address: int, weight: int = 1) -> bool:
        """Scalar datapath: one snooped address.

        Implements the exact Section 3.1 steps: offset, bounds check,
        logical right shift, saturating increment.  Returns whether the
        address passed the filter.
        """
        self.snooped_accesses += weight
        self._metric_snooped.inc(weight)
        offset = address - self.registers.base_address
        if not 0 <= offset < self.registers.region_size:
            self._metric_filtered.inc(weight)
            return False
        idx = offset >> self.spec.shift
        buf = self._buffers[self._active]
        summed = int(buf[idx]) + weight
        if summed > COUNTER_MAX:
            self._metric_saturated.inc()
            summed = COUNTER_MAX
        buf[idx] = summed
        self.accepted_accesses += weight
        self._metric_accepted.inc(weight)
        return True

    def observe_burst(self, burst: AccessBurst) -> None:
        """Batched datapath: a burst of snooped addresses per kernel call."""
        total = int(burst.weights.sum())
        self.snooped_accesses += total
        self._metric_snooped.inc(total)
        self._metric_bursts.inc()
        increments, accepted = kernels.count_cells(
            burst.addresses,
            burst.weights,
            base_address=self.registers.base_address,
            region_size=self.registers.region_size,
            shift=self.spec.shift,
            num_cells=self.spec.num_cells,
        )
        if accepted == 0:
            self._metric_filtered.inc(total)
            return
        buf = self._buffers[self._active]
        summed = buf + increments.astype(np.uint64)
        if self._metric_saturated.enabled:
            over = summed > COUNTER_MAX
            if over.any():
                self._metric_saturated.inc(int(over.sum()))
        np.minimum(summed, COUNTER_MAX, out=buf, casting="unsafe")
        self.accepted_accesses += accepted
        self._metric_accepted.inc(accepted)
        self._metric_filtered.inc(total - accepted)

    # ------------------------------------------------------------------
    # Double buffering
    # ------------------------------------------------------------------
    @property
    def active_buffer_index(self) -> int:
        return self._active

    def active_counts(self) -> np.ndarray:
        """A *copy* of the in-progress MHM (diagnostics)."""
        return self._buffers[self._active].astype(np.int64)

    def interval_boundary(self, time_ns: int) -> MemoryHeatMap:
        """Swap buffers at a monitoring-interval boundary.

        The completed MHM (from the previously active memory) is
        returned — and pushed to ``on_heatmap`` — while the other
        memory, already reset by the previous analysis phase, starts
        counting the new interval immediately.
        """
        completed_index = self._active
        self._active = 1 - self._active
        completed = self._buffers[completed_index]
        heat_map = MemoryHeatMap(
            self.spec,
            completed.astype(np.int64),
            interval_index=self._interval_index,
            start_time_ns=self._interval_start_ns,
        )
        # "Once the secure core is done with the analysis, the old MHM
        # is reset."  Analysis is instantaneous from the monitored
        # core's perspective (it runs on the other core), so the reset
        # happens before this buffer is active again.
        completed[:] = 0
        self._interval_index += 1
        self._interval_start_ns = time_ns
        self._metric_swaps.inc()
        self._tracer.instant(
            "memometer.buffer_swap",
            time_ns,
            category="hw",
            args={
                "interval_index": heat_map.interval_index,
                "completed_buffer": completed_index,
                "active_buffer": self._active,
                "total_accesses": int(heat_map.counts.sum()),
            },
        )
        if self.on_heatmap is not None:
            self.on_heatmap(heat_map)
        return heat_map

    @property
    def intervals_completed(self) -> int:
        return self._interval_index

    # ------------------------------------------------------------------
    # Runtime reconfiguration
    # ------------------------------------------------------------------
    def reconfigure(self, registers: ControlRegisters) -> None:
        """Rewrite the control registers (secure-core operation).

        Section 3.1: the monitoring parameters live in control
        registers the secure core writes — so the monitored region and
        granularity can be retargeted at run time (e.g. to sweep
        granularities, or to point a spare Memometer at module space
        after a load event).  Reconfiguration resets both MHM memories
        and the interval counter; monitoring restarts cleanly.
        """
        self.registers = registers
        self.spec = registers.spec
        self._buffers = [
            np.zeros(self.spec.num_cells, dtype=np.uint64),
            np.zeros(self.spec.num_cells, dtype=np.uint64),
        ]
        self._active = 0
        self._interval_index = 0
        self._interval_start_ns = 0
        self.snooped_accesses = 0
        self.accepted_accesses = 0

    @property
    def drop_rate(self) -> float:
        """Fraction of snooped accesses filtered out (user space etc.)."""
        if self.snooped_accesses == 0:
            return 0.0
        return 1.0 - self.accepted_accesses / self.snooped_accesses

"""Set-associative cache models for the placement ablation.

The paper snoops *between the core and the L1 cache* "because otherwise
we would lose memory access information due to cache hit" (Section 3.1)
— and its Limitation section (5.5) discusses moving the Memometer to
the shared cache or bus, predicting a modest accuracy drop.  These LRU
cache models let us quantify that: a :class:`CacheFilter` sits between
the kernel's burst stream and a downstream probe and forwards only the
accesses that *miss*, which is what a snoop point below the cache would
see.

The filter collapses weights: within a burst, repeated fetches of the
same line hit after the first touch, so a loop body that the pre-L1
snoop counts ``k`` times appears at most once per burst downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.trace import AccessBurst, TraceProbe

__all__ = ["CacheConfig", "SetAssociativeCache", "CacheFilter", "L1_CONFIG", "L2_CONFIG"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 32

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError("size must be a multiple of ways * line size")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def line_shift(self) -> int:
        return self.line_bytes.bit_length() - 1


#: The prototype's per-core L1 instruction cache: 32 KB (Section 5.1).
L1_CONFIG = CacheConfig(size_bytes=32 * 1024, ways=4)
#: The shared unified L2: 512 KB (Section 5.1).
L2_CONFIG = CacheConfig(size_bytes=512 * 1024, ways=8)


class SetAssociativeCache:
    """A plain LRU set-associative cache over line addresses."""

    def __init__(self, config: CacheConfig):
        self.config = config
        # One MRU-ordered list of line tags per set.
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch one address; returns True on hit."""
        line = address >> self.config.line_shift
        set_index = line % self.config.num_sets
        ways = self._sets[set_index]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self.hits += 1
            return True
        self.misses += 1
        ways.append(line)
        if len(ways) > self.config.ways:
            ways.pop(0)
        return False

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheFilter:
    """Forwards only cache *misses* to a downstream probe.

    Models a Memometer placed below one or more cache levels.  For a
    post-L2 placement, chain two filters::

        kernel -> CacheFilter(L1) -> CacheFilter(L2) -> memometer

    Within a burst, each line is looked up once (its first touch); the
    burst's weights — repeated executions of the same code — are
    collapsed to a single downstream access per missing line, which is
    precisely the information loss the paper warns about.
    """

    def __init__(self, cache: SetAssociativeCache, downstream: TraceProbe):
        self.cache = cache
        self.downstream = downstream

    def observe_burst(self, burst: AccessBurst) -> None:
        shift = self.cache.config.line_shift
        lines = np.asarray(burst.addresses) >> shift
        # First-touch order of unique lines within the burst.
        _, first_positions = np.unique(lines, return_index=True)
        missed_addresses = []
        for pos in np.sort(first_positions):
            address = int(burst.addresses[pos])
            if not self.cache.access(address):
                missed_addresses.append(address)
        if not missed_addresses:
            return
        addresses = np.asarray(missed_addresses, dtype=np.int64)
        self.downstream.observe_burst(
            AccessBurst(
                time_ns=burst.time_ns,
                addresses=addresses,
                weights=np.ones_like(addresses),
                kind=burst.kind,
                core=burst.core,
            )
        )

"""Hardware substrate: Memometer, caches and the secure core."""

from .cache import L1_CONFIG, L2_CONFIG, CacheConfig, CacheFilter, SetAssociativeCache
from .memometer import (
    COUNTER_MAX,
    MAX_CELLS,
    MHM_MEMORY_BYTES,
    ControlRegisters,
    Memometer,
    MemometerConfigError,
)
from .securecore import AnalysisTimingModel, OnlineResult, SecureCore

__all__ = [
    "Memometer",
    "ControlRegisters",
    "MemometerConfigError",
    "MHM_MEMORY_BYTES",
    "MAX_CELLS",
    "COUNTER_MAX",
    "CacheConfig",
    "SetAssociativeCache",
    "CacheFilter",
    "L1_CONFIG",
    "L2_CONFIG",
    "SecureCore",
    "AnalysisTimingModel",
    "OnlineResult",
]

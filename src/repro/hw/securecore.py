"""The secure core: trusted on-chip analysis engine.

In the SecureCore architecture [Yoon et al., RTAS 2013] one core of the
dual-core processor is reserved for monitoring.  Here the secure core

* receives each completed MHM from the Memometer at interval
  boundaries and archives it;
* optionally scores it online with a fitted detector (the run-time
  configuration of Figures 7, 8 and 10);
* accounts the *modelled* analysis time per MHM using a cost model
  calibrated against the paper's three measurements (Section 5.4).

Timing model
------------
Section 5.4 reports mean per-MHM analysis times on the secure core:

=====================  =========
configuration          time
=====================  =========
L=1472, L'=9, J=5      358 µs
L=368,  L'=9, J=5      100 µs
L=1472, L'=5, J=5      216 µs
=====================  =========

The analysis is mean-shift (O(L)) + eigenmemory projection (O(L·L')) +
GMM density evaluation (O(J·L'²)).  Solving

    t(L, L', J) = c1·L + c2·L·L' + c3·J·L'²

against the three measurements gives c1 = 31.45 ns, c2 = 22.47 ns,
c3 = 34.58 ns — i.e. ~22–35 1 GHz cycles per inner-loop operation,
plausible for scalar in-order code.  The model reproduces the paper's
table exactly and extrapolates to other (L, L', J) points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .. import obs
from ..core.mhm import MemoryHeatMap
from ..core.series import HeatMapSeries
from ..core.spec import HeatMapSpec

__all__ = ["AnalysisTimingModel", "OnlineResult", "SecureCore"]


@dataclass(frozen=True)
class AnalysisTimingModel:
    """Per-MHM analysis cost on the secure core (calibrated, Section 5.4)."""

    #: ns per mean-shift element (O(L) pass).
    c1_ns: float = 31.452
    #: ns per projection multiply-accumulate (O(L·L') pass).
    c2_ns: float = 22.472
    #: ns per GMM quadratic-form operation (O(J·L'²) pass).
    c3_ns: float = 34.580

    def analysis_time_us(self, num_cells: int, num_components: int, num_gaussians: int) -> float:
        """Modelled per-MHM analysis time in microseconds."""
        l, lp, j = num_cells, num_components, num_gaussians
        ns = self.c1_ns * l + self.c2_ns * l * lp + self.c3_ns * j * lp * lp
        return ns / 1_000.0


@dataclass
class OnlineResult:
    """One interval's online-analysis outcome.

    ``skipped`` marks an interval whose MHM could not be scored (a
    corrupted or missing buffer): the verdict is recorded as SKIPPED —
    ``log_density`` is NaN, ``is_anomalous`` is False — and the stream
    continues, mirroring the double-buffered Memometer semantics where
    a lost interval never stalls the monitor.
    """

    interval_index: int
    log_density: float
    is_anomalous: bool
    analysis_time_us: float
    skipped: bool = False


class SecureCore:
    """Receives, archives and (optionally) scores MHMs.

    Parameters
    ----------
    spec:
        Monitored-region spec (must match the Memometer's).
    scorer:
        Optional online scorer: a callable ``(MemoryHeatMap) ->
        (log_density, is_anomalous)``, or returning ``None`` to record
        a SKIPPED verdict (unscorable interval) without breaking the
        stream.  Attach one with :meth:`attach_detector` once a
        detector has been trained.
    timing:
        The analysis-time cost model.
    """

    def __init__(
        self,
        spec: HeatMapSpec,
        timing: Optional[AnalysisTimingModel] = None,
        clock: Optional[Callable[[], int]] = None,
    ):
        self.spec = spec
        self.timing = timing or AnalysisTimingModel()
        #: Simulated-time source for trace timestamps (the platform
        #: passes the simulator clock); falls back to interval starts.
        self.clock = clock
        self.heatmaps: list[MemoryHeatMap] = []
        self.online_results: list[OnlineResult] = []
        self._scorer: Optional[Callable[[MemoryHeatMap], tuple[float, bool]]] = None
        self._scorer_dims: tuple[int, int] = (0, 0)  # (L', J) for timing
        registry = obs.metrics()
        self._metric_received = registry.counter("securecore.mhms_received")
        self._metric_scored = registry.counter("securecore.mhms_scored")
        self._metric_skipped = registry.counter("securecore.verdicts_skipped")
        self._metric_anomalous = registry.counter("securecore.anomalous_verdicts")
        self._metric_model_us = registry.histogram("securecore.analysis_model_us")
        self._tracer = obs.tracer()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_detector(
        self,
        scorer: Callable[[MemoryHeatMap], tuple[float, bool]],
        num_components: int,
        num_gaussians: int,
    ) -> None:
        """Enable online scoring of every incoming MHM."""
        self._scorer = scorer
        self._scorer_dims = (num_components, num_gaussians)

    def detach_detector(self) -> None:
        self._scorer = None

    # ------------------------------------------------------------------
    # MHM reception (Memometer callback)
    # ------------------------------------------------------------------
    def receive(self, heat_map: MemoryHeatMap) -> None:
        """Interval-boundary delivery from the Memometer."""
        if heat_map.spec != self.spec:
            raise ValueError("received a heat map with a mismatched spec")
        self.heatmaps.append(heat_map)
        self._metric_received.inc()
        if self._scorer is not None:
            verdict = self._scorer(heat_map)
            num_components, num_gaussians = self._scorer_dims
            analysis_us = self.timing.analysis_time_us(
                self.spec.num_cells, num_components, num_gaussians
            )
            if verdict is None:
                self.online_results.append(
                    OnlineResult(
                        interval_index=heat_map.interval_index,
                        log_density=float("nan"),
                        is_anomalous=False,
                        analysis_time_us=analysis_us,
                        skipped=True,
                    )
                )
                self._metric_skipped.inc()
                return
            log_density, anomalous = verdict
            self.online_results.append(
                OnlineResult(
                    interval_index=heat_map.interval_index,
                    log_density=log_density,
                    is_anomalous=anomalous,
                    analysis_time_us=analysis_us,
                )
            )
            self._metric_scored.inc()
            self._metric_model_us.observe(analysis_us)
            if anomalous:
                self._metric_anomalous.inc()
            if self._tracer.enabled:
                now_ns = (
                    self.clock() if self.clock is not None else heat_map.start_time_ns
                )
                self._tracer.instant(
                    "detector.verdict",
                    now_ns,
                    category="detector",
                    args={
                        "interval_index": heat_map.interval_index,
                        "log_density": float(log_density),
                        "anomalous": bool(anomalous),
                        "analysis_model_us": analysis_us,
                    },
                )

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def series(self, start: int = 0, stop: Optional[int] = None) -> HeatMapSeries:
        """Archived MHMs as a series (optionally a slice)."""
        return HeatMapSeries(self.spec, self.heatmaps[start:stop])

    @property
    def intervals_received(self) -> int:
        return len(self.heatmaps)

    def anomalous_intervals(self) -> list[int]:
        return [r.interval_index for r in self.online_results if r.is_anomalous]

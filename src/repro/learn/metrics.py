"""Detection-quality metrics.

The paper reports false-positive rates against θ_p quantiles and shows
detection qualitatively (density drops in Figures 7–10).  For the
quantitative benches and ablations we add the standard machinery:
confusion counts, FPR/TPR, ROC/AUC over density scores, and detection
latency (intervals from attack start to first flag).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ConfusionCounts",
    "confusion_from_flags",
    "false_positive_rate",
    "true_positive_rate",
    "roc_curve",
    "auc",
    "roc_auc_from_scores",
    "detection_latency",
]


@dataclass(frozen=True)
class ConfusionCounts:
    """Binary confusion-matrix counts (positive = anomalous)."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def false_positive_rate(self) -> float:
        denominator = self.false_positives + self.true_negatives
        return self.false_positives / denominator if denominator else 0.0

    @property
    def true_positive_rate(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def accuracy(self) -> float:
        return (
            (self.true_positives + self.true_negatives) / self.total
            if self.total
            else 0.0
        )


def confusion_from_flags(
    flags: np.ndarray, ground_truth: np.ndarray
) -> ConfusionCounts:
    """Build confusion counts from predicted and true anomaly flags."""
    flags = np.asarray(flags, dtype=bool)
    truth = np.asarray(ground_truth, dtype=bool)
    if flags.shape != truth.shape:
        raise ValueError("flags and ground truth must have the same shape")
    return ConfusionCounts(
        true_positives=int((flags & truth).sum()),
        false_positives=int((flags & ~truth).sum()),
        true_negatives=int((~flags & ~truth).sum()),
        false_negatives=int((~flags & truth).sum()),
    )


def false_positive_rate(flags: np.ndarray, ground_truth: np.ndarray) -> float:
    return confusion_from_flags(flags, ground_truth).false_positive_rate


def true_positive_rate(flags: np.ndarray, ground_truth: np.ndarray) -> float:
    return confusion_from_flags(flags, ground_truth).true_positive_rate


def roc_curve(
    scores: np.ndarray, ground_truth: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """ROC over anomaly *scores* (higher score = more anomalous).

    Returns ``(fpr, tpr)`` arrays swept over all score thresholds.
    For log densities, pass ``-log_density`` as the score.
    """
    scores = np.asarray(scores, dtype=np.float64)
    truth = np.asarray(ground_truth, dtype=bool)
    if scores.shape != truth.shape:
        raise ValueError("scores and ground truth must have the same shape")
    if truth.all() or (~truth).all():
        raise ValueError("ROC needs both positive and negative samples")

    order = np.argsort(-scores, kind="stable")
    sorted_truth = truth[order]
    tps = np.cumsum(sorted_truth)
    fps = np.cumsum(~sorted_truth)
    tpr = np.concatenate([[0.0], tps / sorted_truth.sum()])
    fpr = np.concatenate([[0.0], fps / (~sorted_truth).sum()])
    return fpr, tpr


def auc(fpr: np.ndarray, tpr: np.ndarray) -> float:
    """Area under a (monotone) ROC curve by trapezoidal rule."""
    fpr = np.asarray(fpr, dtype=np.float64)
    tpr = np.asarray(tpr, dtype=np.float64)
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 2 / 1.x
    return float(trapezoid(tpr, fpr))


def roc_auc_from_scores(scores: np.ndarray, ground_truth: np.ndarray) -> float:
    """AUC over anomaly scores (higher = more anomalous)."""
    fpr, tpr = roc_curve(scores, ground_truth)
    return auc(fpr, tpr)


def detection_latency(flags: np.ndarray, attack_start_index: int) -> int:
    """Intervals from attack start to the first post-attack flag.

    Returns ``-1`` when the attack is never flagged.
    """
    flags = np.asarray(flags, dtype=bool)
    if not 0 <= attack_start_index <= len(flags):
        raise ValueError("attack_start_index out of range")
    post = flags[attack_start_index:]
    hits = np.flatnonzero(post)
    return int(hits[0]) if hits.size else -1

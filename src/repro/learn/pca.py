"""Eigenmemory: PCA-based dimensionality reduction of heat maps.

Section 4.2 of the paper.  Memory heat maps live in a high-dimensional
space (L = 1,472 cells in the prototype) but their cells are strongly
correlated, so a training set can be compressed onto a small number of
principal components — the *eigenmemories*, by analogy with eigenfaces
[Turk & Pentland 1991].  Each eigenmemory corresponds to a primary
activity of the monitored region, and a reduced MHM is the vector of
weights ``w_i`` with which those activities compose the original map:

    Φ_n = M_n − Ψ ≈ Σ_k w_{n,k} · u_k            (paper Eq. 1 context)

Implementation note: the paper forms the L×L covariance ``C = A·Aᵀ``
(A = [Φ_1 … Φ_N], L×N) and extracts eigenvectors by SVD.  We take the
SVD of ``A`` directly — mathematically identical (the left singular
vectors of A are the eigenvectors of A·Aᵀ, with eigenvalues σ²/N) and
numerically better, and it gets the eigenfaces N ≪ L economy for free.

Projection and reconstruction route through
:mod:`repro.kernels` (``project_batch`` / ``reconstruct_batch``): the
default vectorized backend does each batch in a single GEMM, while
``REPRO_KERNELS=reference`` selects the scalar per-(sample, component)
oracle the differential suite compares against.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .. import kernels
from ..core.mhm import MemoryHeatMap
from ..core.series import HeatMapSeries

__all__ = ["Eigenmemory"]

ArrayLike = Union[np.ndarray, HeatMapSeries]


def _as_matrix(data: ArrayLike) -> np.ndarray:
    if isinstance(data, HeatMapSeries):
        return data.matrix()
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix[np.newaxis, :]
    if matrix.ndim != 2:
        raise ValueError(f"expected an (N, L) matrix, got shape {matrix.shape}")
    return matrix


class Eigenmemory:
    """The eigenmemory transform (PCA via SVD).

    Parameters
    ----------
    num_components:
        The number of eigenmemories L′ to keep.  When ``None``, the
        smallest L′ whose retained variance reaches ``variance_target``
        is chosen — the paper keeps 9 components "since they could
        account for more than 99.99 % of the variances" (Section 5.2).
    variance_target:
        Retained-variance goal used when ``num_components`` is None.

    Attributes (after :meth:`fit`)
    ------------------------------
    mean_:
        The empirical mean MHM ``Ψ`` (length L).
    components_:
        Eigenmemories as rows, ``(L′, L)``, orthonormal, ordered by
        decreasing eigenvalue.
    eigenvalues_:
        Variances along each retained eigenmemory (length L′).
    explained_variance_ratio_:
        Per-component fraction of total variance (length L′).
    """

    def __init__(
        self,
        num_components: Optional[int] = None,
        variance_target: float = 0.9999,
    ):
        if num_components is not None and num_components < 1:
            raise ValueError("num_components must be >= 1")
        if not 0.0 < variance_target <= 1.0:
            raise ValueError("variance_target must be in (0, 1]")
        self.num_components = num_components
        self.variance_target = variance_target
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.eigenvalues_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None
        self._all_eigenvalues: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, data: ArrayLike) -> "Eigenmemory":
        """Learn Ψ and the eigenmemories from a normal training set."""
        matrix = _as_matrix(data)
        n_samples, n_cells = matrix.shape
        if n_samples < 2:
            raise ValueError("need at least two training heat maps")

        self.mean_ = matrix.mean(axis=0)
        shifted = matrix - self.mean_

        # SVD of the mean-shifted data: rows of vt are the eigenvectors
        # of the empirical covariance (1/N) Σ Φ_n Φ_nᵀ.
        _, singular_values, vt = np.linalg.svd(shifted, full_matrices=False)
        eigenvalues = (singular_values**2) / n_samples
        total = eigenvalues.sum()
        if total <= 0:
            raise ValueError("training set has zero variance")
        ratios = eigenvalues / total
        self._all_eigenvalues = eigenvalues

        if self.num_components is not None:
            rank = min(self.num_components, len(eigenvalues))
        else:
            cumulative = np.cumsum(ratios)
            rank = int(np.searchsorted(cumulative, self.variance_target) + 1)
            rank = min(rank, len(eigenvalues))

        self.components_ = vt[:rank]
        self.eigenvalues_ = eigenvalues[:rank]
        self.explained_variance_ratio_ = ratios[:rank]
        return self

    @property
    def is_fitted(self) -> bool:
        return self.components_ is not None

    @property
    def num_components_(self) -> int:
        """The retained L′ (after fitting)."""
        self._require_fitted()
        return len(self.components_)

    @property
    def retained_variance_(self) -> float:
        self._require_fitted()
        return float(self.explained_variance_ratio_.sum())

    def components_for_variance(self, target: float) -> int:
        """Smallest L′ retaining ``target`` variance (uses all spectra)."""
        self._require_fitted()
        if not 0.0 < target <= 1.0:
            raise ValueError("target must be in (0, 1]")
        ratios = self._all_eigenvalues / self._all_eigenvalues.sum()
        return int(np.searchsorted(np.cumsum(ratios), target) + 1)

    # ------------------------------------------------------------------
    # Transformation (paper Eq. 1)
    # ------------------------------------------------------------------
    def transform(self, data: ArrayLike) -> np.ndarray:
        """Project MHMs onto the eigenmemory space: ``M′ = uᵀ(M − Ψ)``."""
        self._require_fitted()
        matrix = _as_matrix(data)
        if matrix.shape[1] != len(self.mean_):
            raise ValueError(
                f"expected {len(self.mean_)} cells, got {matrix.shape[1]}"
            )
        return kernels.project_batch(matrix, self.mean_, self.components_)

    def transform_one(self, heat_map: MemoryHeatMap) -> np.ndarray:
        """Project a single heat map; returns the weight vector (L′,)."""
        return self.transform(heat_map.as_vector()[np.newaxis, :])[0]

    def inverse_transform(self, weights: np.ndarray) -> np.ndarray:
        """Reconstruct MHMs from weights: ``M ≈ Ψ + Σ w_k u_k``."""
        self._require_fitted()
        weights = np.asarray(weights, dtype=np.float64)
        single = weights.ndim == 1
        if single:
            weights = weights[np.newaxis, :]
        if weights.shape[1] != self.num_components_:
            raise ValueError(
                f"expected {self.num_components_} weights, got {weights.shape[1]}"
            )
        result = kernels.reconstruct_batch(weights, self.mean_, self.components_)
        return result[0] if single else result

    def reconstruction_error(self, data: ArrayLike) -> np.ndarray:
        """Per-sample RMS error of the rank-L′ approximation."""
        matrix = _as_matrix(data)
        reconstructed = self.inverse_transform(self.transform(matrix))
        return np.sqrt(np.mean((matrix - reconstructed) ** 2, axis=1))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict:
        self._require_fitted()
        return {
            "mean": self.mean_,
            "components": self.components_,
            "eigenvalues": self.eigenvalues_,
            "explained_variance_ratio": self.explained_variance_ratio_,
            "all_eigenvalues": self._all_eigenvalues,
        }

    @classmethod
    def from_arrays(cls, arrays: dict) -> "Eigenmemory":
        model = cls(num_components=len(arrays["components"]))
        model.mean_ = np.asarray(arrays["mean"], dtype=np.float64)
        model.components_ = np.asarray(arrays["components"], dtype=np.float64)
        model.eigenvalues_ = np.asarray(arrays["eigenvalues"], dtype=np.float64)
        model.explained_variance_ratio_ = np.asarray(
            arrays["explained_variance_ratio"], dtype=np.float64
        )
        model._all_eigenvalues = np.asarray(
            arrays["all_eigenvalues"], dtype=np.float64
        )
        return model

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("Eigenmemory has not been fitted")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.is_fitted:
            return "Eigenmemory(unfitted)"
        return (
            f"Eigenmemory(L'={self.num_components_}, "
            f"variance={self.retained_variance_:.6f})"
        )

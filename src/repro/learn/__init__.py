"""Learning pipeline: eigenmemory (PCA), GMM-EM, thresholds, detector."""

from .baselines import (
    HotCellSetDetector,
    NearestNeighborDetector,
    TrafficVolumeDetector,
)
from .contexts import ContextDetector, cluster_contexts, sort_rows
from .detector import MhmDetector
from .ensemble import (
    ENSEMBLE_RULES,
    EnsembleConfig,
    EnsembleDetector,
    allowed_false_positive_rate,
)
from .evaluation import (
    DetectionSummary,
    ThresholdInterval,
    bootstrap_threshold_interval,
    kfold_fpr,
    summarize_detections,
)
from .fj import FigueiredoJainGmm
from .gmm import GaussianMixtureModel, GmmParameters
from .kmeans import KMeansResult, kmeans, kmeans_plus_plus_init
from .localfeatures import LocalFeatureDetector, PatchCodebook, PatchExtractor
from .metrics import (
    ConfusionCounts,
    auc,
    confusion_from_flags,
    detection_latency,
    false_positive_rate,
    roc_auc_from_scores,
    roc_curve,
    true_positive_rate,
)
from .pca import Eigenmemory
from .temporal import ComponentTransitionModel, TemporalDetector
from .threshold import DEFAULT_QUANTILES, ThresholdBank, quantile_threshold

__all__ = [
    "Eigenmemory",
    "GaussianMixtureModel",
    "GmmParameters",
    "FigueiredoJainGmm",
    "kmeans",
    "kmeans_plus_plus_init",
    "KMeansResult",
    "MhmDetector",
    "ContextDetector",
    "cluster_contexts",
    "sort_rows",
    "EnsembleConfig",
    "EnsembleDetector",
    "ENSEMBLE_RULES",
    "allowed_false_positive_rate",
    "LocalFeatureDetector",
    "PatchExtractor",
    "PatchCodebook",
    "TemporalDetector",
    "ComponentTransitionModel",
    "bootstrap_threshold_interval",
    "kfold_fpr",
    "summarize_detections",
    "ThresholdInterval",
    "DetectionSummary",
    "ThresholdBank",
    "quantile_threshold",
    "DEFAULT_QUANTILES",
    "TrafficVolumeDetector",
    "HotCellSetDetector",
    "NearestNeighborDetector",
    "ConfusionCounts",
    "confusion_from_flags",
    "false_positive_rate",
    "true_positive_rate",
    "roc_curve",
    "auc",
    "roc_auc_from_scores",
    "detection_latency",
]

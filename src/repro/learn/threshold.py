"""Detection-threshold calibration.

Section 5.2 of the paper: after training, *another* set of normal MHMs
is collected, their densities ``P`` are computed under the fitted GMM,
and the threshold θ is set to the p-quantile of P — so the expected
false-positive rate is p.  The paper's figures draw θ_0.5 and θ_1
(p = 0.5 % and 1 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

__all__ = ["DEFAULT_QUANTILES", "quantile_threshold", "ThresholdBank"]

#: The p values (in percent) the paper's evaluation uses.
DEFAULT_QUANTILES = (0.5, 1.0)


def quantile_threshold(log_densities: np.ndarray, p_percent: float) -> float:
    """θ_p: the p-percent quantile of normal-set log densities.

    ``p_percent`` follows the paper's notation: θ_0.5 means p = 0.5 %.
    Thresholds live in the same (natural-log) space as the densities
    passed in.
    """
    log_densities = np.asarray(log_densities, dtype=np.float64)
    if log_densities.size == 0:
        raise ValueError("cannot calibrate a threshold on an empty set")
    if not 0.0 < p_percent < 100.0:
        raise ValueError("p_percent must be in (0, 100)")
    return float(np.quantile(log_densities, p_percent / 100.0))


@dataclass
class ThresholdBank:
    """A set of θ_p thresholds calibrated on one validation set.

    Keys are p values in percent (0.5 → θ_0.5).  All thresholds are in
    natural-log density space.
    """

    thresholds: dict[float, float] = field(default_factory=dict)

    @classmethod
    def calibrate(
        cls,
        log_densities: np.ndarray,
        quantiles: Iterable[float] = DEFAULT_QUANTILES,
    ) -> "ThresholdBank":
        return cls(
            thresholds={
                float(p): quantile_threshold(log_densities, p) for p in quantiles
            }
        )

    @classmethod
    def calibrate_from_gmm(
        cls,
        gmm,
        reduced_validation: np.ndarray,
        quantiles: Iterable[float] = DEFAULT_QUANTILES,
    ) -> "ThresholdBank":
        """Calibrate θ_p from a fitted mixture and reduced normal MHMs.

        Scores the whole validation set through the batched
        ``repro.kernels`` density kernel (one pass over all samples and
        components) before taking the quantiles — the same scoring path
        EM and the online monitor use, so a backend switch cannot move
        the thresholds relative to the densities they gate.
        """
        return cls.calibrate(gmm.score_samples(reduced_validation), quantiles)

    def threshold(self, p_percent: float) -> float:
        try:
            return self.thresholds[float(p_percent)]
        except KeyError:
            available = sorted(self.thresholds)
            raise KeyError(
                f"no θ_{p_percent} calibrated (available: {available})"
            ) from None

    def is_anomalous(self, log_density: float, p_percent: float) -> bool:
        """The paper's legitimacy test: density below θ_p ⇒ anomalous."""
        return log_density < self.threshold(p_percent)

    def flag_series(self, log_densities: np.ndarray, p_percent: float) -> np.ndarray:
        """Vectorised legitimacy test over a series of densities."""
        theta = self.threshold(p_percent)
        return np.asarray(log_densities, dtype=np.float64) < theta

    @property
    def quantiles(self) -> list[float]:
        return sorted(self.thresholds)

    def to_mapping(self) -> Mapping[float, float]:
        return dict(self.thresholds)

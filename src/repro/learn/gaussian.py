"""Multivariate Gaussian density utilities.

Shared by the GMM (Section 4.3) and its Figueiredo–Jain extension.
Densities are computed through Cholesky factors for numerical
stability; covariance matrices are regularised with a small ridge so EM
cannot collapse a component onto a single sample — a real hazard here,
because the reduced MHMs of a predictable real-time system form very
tight clusters.

Note on the paper's Eq. (2): as printed it omits the inverse on Σ and
the reciprocal on the normaliser; we implement the standard (correct)
multivariate normal density

    f(x | μ, Σ) = (2π)^{-L/2} |Σ|^{-1/2} exp(-½ (x-μ)ᵀ Σ⁻¹ (x-μ)).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "regularized_cholesky",
    "mvn_logpdf_from_cholesky",
    "mvn_logpdf",
    "LOG_2PI",
]

LOG_2PI = float(np.log(2.0 * np.pi))


def regularized_cholesky(covariance: np.ndarray, ridge: float = 1e-6) -> np.ndarray:
    """Lower Cholesky factor of ``covariance + ridge·I``.

    If the factorisation still fails (badly conditioned input), the
    ridge is escalated by powers of ten up to a relative cap before
    giving up.
    """
    covariance = np.asarray(covariance, dtype=np.float64)
    if covariance.ndim != 2 or covariance.shape[0] != covariance.shape[1]:
        raise ValueError("covariance must be a square matrix")
    dim = covariance.shape[0]
    scale = max(1.0, float(np.trace(covariance)) / dim)
    attempt = ridge * scale
    for _ in range(12):
        try:
            return np.linalg.cholesky(covariance + attempt * np.eye(dim))
        except np.linalg.LinAlgError:
            attempt *= 10.0
    raise np.linalg.LinAlgError(
        "covariance matrix is not positive definite even after regularisation"
    )


def mvn_logpdf_from_cholesky(
    x: np.ndarray, mean: np.ndarray, cholesky_factor: np.ndarray
) -> np.ndarray:
    """Log density of N(mean, L·Lᵀ) at rows of ``x``.

    Parameters
    ----------
    x:
        Points, shape ``(N, D)`` (or ``(D,)`` for a single point).
    mean:
        Component mean, shape ``(D,)``.
    cholesky_factor:
        Lower-triangular Cholesky factor of the covariance.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    dim = x.shape[1]
    centered = x - mean
    # Solve L z = (x - μ)ᵀ  →  zᵀz = (x-μ)ᵀ Σ⁻¹ (x-μ)
    solved = _solve_lower(cholesky_factor, centered.T).T
    mahalanobis_sq = np.einsum("nd,nd->n", solved, solved)
    log_det = 2.0 * np.log(np.diag(cholesky_factor)).sum()
    return -0.5 * (dim * LOG_2PI + log_det + mahalanobis_sq)


def _solve_lower(lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Forward substitution ``L z = rhs`` via scipy when available."""
    try:
        from scipy.linalg import solve_triangular

        return solve_triangular(lower, rhs, lower=True, check_finite=False)
    except ImportError:  # pragma: no cover - scipy is a dependency
        return np.linalg.solve(lower, rhs)


def mvn_logpdf(
    x: np.ndarray, mean: np.ndarray, covariance: np.ndarray, ridge: float = 1e-9
) -> np.ndarray:
    """Log density of N(mean, covariance) at rows of ``x``."""
    factor = regularized_cholesky(covariance, ridge=ridge)
    return mvn_logpdf_from_cholesky(x, np.asarray(mean, dtype=np.float64), factor)

"""k-means clustering (used to initialise GMM-EM).

A small, dependency-free Lloyd's algorithm with k-means++ seeding.  EM
for Gaussian mixtures is notoriously sensitive to initialisation; the
standard practice (which we follow, as the paper's 10-restart protocol
implies) is to seed each EM restart from a k-means solution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeansResult", "kmeans_plus_plus_init", "kmeans"]


@dataclass
class KMeansResult:
    """Outcome of one k-means run."""

    centers: np.ndarray  # (k, D)
    labels: np.ndarray  # (N,)
    inertia: float  # sum of squared distances to assigned centers
    iterations: int
    converged: bool


def _squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, (N, k)."""
    diff = points[:, np.newaxis, :] - centers[np.newaxis, :, :]
    return np.einsum("nkd,nkd->nk", diff, diff)


def kmeans_plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding [Arthur & Vassilvitskii 2007]."""
    n = len(points)
    if k > n:
        raise ValueError(f"cannot seed {k} centers from {n} points")
    centers = np.empty((k, points.shape[1]), dtype=np.float64)
    centers[0] = points[rng.integers(n)]
    closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with a center; pick randomly.
            centers[i] = points[rng.integers(n)]
            continue
        probabilities = closest_sq / total
        choice = rng.choice(n, p=probabilities)
        centers[i] = points[choice]
        closest_sq = np.minimum(
            closest_sq, np.sum((points - centers[i]) ** 2, axis=1)
        )
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding.

    Empty clusters are re-seeded with the point farthest from its
    assigned center, so the result always has exactly ``k`` centers.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be an (N, D) matrix")
    if k < 1:
        raise ValueError("k must be >= 1")

    centers = kmeans_plus_plus_init(points, k, rng)
    labels = np.zeros(len(points), dtype=np.int64)
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        distances = _squared_distances(points, centers)
        labels = distances.argmin(axis=1)
        new_centers = np.empty_like(centers)
        for j in range(k):
            members = points[labels == j]
            if len(members) == 0:
                farthest = distances.min(axis=1).argmax()
                new_centers[j] = points[farthest]
            else:
                new_centers[j] = members.mean(axis=0)
        shift = np.sqrt(((new_centers - centers) ** 2).sum(axis=1)).max()
        centers = new_centers
        if shift <= tolerance:
            converged = True
            break

    distances = _squared_distances(points, centers)
    labels = distances.argmin(axis=1)
    inertia = float(distances[np.arange(len(points)), labels].sum())
    return KMeansResult(
        centers=centers,
        labels=labels,
        inertia=inertia,
        iterations=iteration,
        converged=converged,
    )

"""Two-modality ensemble: MHM densities x syscall execution contexts.

Each modality is calibrated to its own false-positive budget and the
budgets must *sum to no more than the combined budget*: with the MHM
channel flagging at θ_{p_mhm} and the context channel at θ_{p_ctx},
the OR-rule's clean-stream false-positive rate is union-bounded by
``p_mhm + p_ctx``.  :class:`EnsembleConfig` therefore derives the two
per-modality budgets from one ``p_percent`` and a share — computing
``p_ctx = p - p_mhm`` so the sum is *exactly* the combined budget, not
a rounding hair above it.

Fusion rules:

``or``
    Flag when either modality flags — maximum coverage, the default
    (each attack family is caught by the modality that sees it).
``and``
    Flag only when both modalities agree — minimum false positives,
    for fleets where an alarm pages a human.
``weighted``
    ``w x mhm + (1 - w) x context >= vote_threshold`` — a soft vote
    between the two extremes.

The combiner never retrains anything: it reads per-interval MHM log
densities and context scores that the two fitted detectors produced,
so serial and sharded serving paths fuse bit-identically.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .contexts import ContextDetector
from .detector import MhmDetector

__all__ = [
    "ENSEMBLE_RULES",
    "EnsembleConfig",
    "EnsembleDetector",
    "allowed_false_positive_rate",
]

ENSEMBLE_RULES = ("or", "and", "weighted")


def allowed_false_positive_rate(p_percent: float, samples: int) -> float:
    """Binomial slack for an FPR-budget check over ``samples`` intervals.

    Expected rate plus two standard deviations plus one interval of
    granularity — the same allowance the conformance matrix's
    ``fpr-budget`` column grants, so short clean windows don't fail on
    a single flag.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    expected = p_percent / 100.0
    return (
        expected
        + 2.0 * math.sqrt(expected * (1.0 - expected) / samples)
        + 1.0 / samples
    )


@dataclass(frozen=True)
class EnsembleConfig:
    """How the combined false-positive budget splits across modalities.

    ``p_percent`` is the ensemble's total budget (percent).  The MHM
    modality gets ``p_percent * mhm_share``; the context modality gets
    the subtraction complement ``p_percent - p_mhm`` — not an
    independently rounded ``p_percent * (1 - mhm_share)`` — so the
    recombined budgets sit within one ulp of the declared total and
    the OR-rule union bound holds with no slack lost to rounding.
    """

    p_percent: float = 1.0
    mhm_share: float = 0.5
    rule: str = "or"
    mhm_weight: float = 0.5
    vote_threshold: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.p_percent < 100.0:
            raise ValueError("p_percent must be in (0, 100)")
        if not 0.0 < self.mhm_share < 1.0:
            raise ValueError("mhm_share must be in (0, 1)")
        if self.rule not in ENSEMBLE_RULES:
            raise ValueError(
                f"unknown ensemble rule {self.rule!r}; "
                f"choose from {ENSEMBLE_RULES}"
            )
        if not 0.0 <= self.mhm_weight <= 1.0:
            raise ValueError("mhm_weight must be in [0, 1]")
        if not 0.0 < self.vote_threshold <= 1.0:
            raise ValueError("vote_threshold must be in (0, 1]")

    @property
    def p_mhm(self) -> float:
        return self.p_percent * self.mhm_share

    @property
    def p_context(self) -> float:
        # Exact complement: the two budgets sum to exactly p_percent.
        return self.p_percent - self.p_mhm


class EnsembleDetector:
    """Fuses per-interval verdicts from the two fitted modalities.

    The per-modality thresholds are resolved at construction from each
    detector's calibrated bank (``MhmDetector`` flags *below* its θ,
    ``ContextDetector`` flags *above* its θ).  When a budget split
    lands between calibrated quantiles, use :meth:`calibrate` with the
    held-out validation scores to recalibrate the thresholds at exactly
    ``p_mhm`` / ``p_context``.
    """

    def __init__(
        self,
        mhm: MhmDetector,
        context: ContextDetector,
        config: Optional[EnsembleConfig] = None,
        *,
        theta_mhm: Optional[float] = None,
        theta_context: Optional[float] = None,
    ):
        self.config = config if config is not None else EnsembleConfig()
        self.mhm = mhm
        self.context = context
        self.theta_mhm = (
            float(theta_mhm)
            if theta_mhm is not None
            else mhm.threshold(self.config.p_mhm)
        )
        self.theta_context = (
            float(theta_context)
            if theta_context is not None
            else context.threshold(self.config.p_context)
        )

    @classmethod
    def calibrate(
        cls,
        mhm: MhmDetector,
        context: ContextDetector,
        mhm_validation_densities: np.ndarray,
        context_validation_scores: np.ndarray,
        config: Optional[EnsembleConfig] = None,
    ) -> "EnsembleDetector":
        """Recalibrate both thresholds to the split budgets.

        ``mhm_validation_densities`` / ``context_validation_scores``
        are each modality's scores of the *same* held-out clean stream;
        the thresholds become the ``p_mhm``-quantile (densities, flag
        below) and ``(100 - p_context)``-quantile (scores, flag above).
        """
        config = config if config is not None else EnsembleConfig()
        densities = np.asarray(mhm_validation_densities, dtype=np.float64)
        scores = np.asarray(context_validation_scores, dtype=np.float64)
        if densities.size == 0 or scores.size == 0:
            raise ValueError("cannot calibrate on empty validation scores")
        return cls(
            mhm,
            context,
            config,
            theta_mhm=float(np.quantile(densities, config.p_mhm / 100.0)),
            theta_context=float(
                np.quantile(scores, 1.0 - config.p_context / 100.0)
            ),
        )

    # ------------------------------------------------------------------
    # Fusion
    # ------------------------------------------------------------------
    def modality_flags(
        self, log_densities: np.ndarray, context_scores: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-modality boolean flags for aligned interval series."""
        densities = np.asarray(log_densities, dtype=np.float64)
        scores = np.asarray(context_scores, dtype=np.float64)
        if densities.shape != scores.shape:
            raise ValueError(
                "log_densities and context_scores must align per interval"
            )
        return densities < self.theta_mhm, scores > self.theta_context

    def classify(
        self, log_densities: np.ndarray, context_scores: np.ndarray
    ) -> np.ndarray:
        """Fused boolean anomaly flags under the configured rule."""
        mhm_flags, context_flags = self.modality_flags(
            log_densities, context_scores
        )
        if self.config.rule == "or":
            return mhm_flags | context_flags
        if self.config.rule == "and":
            return mhm_flags & context_flags
        weight = self.config.mhm_weight
        votes = weight * mhm_flags + (1.0 - weight) * context_flags
        return votes >= self.config.vote_threshold

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """sha256 over both fitted models, the thresholds and the rule."""
        digest = hashlib.sha256()
        for group, arrays in (
            ("mhm", self.mhm.to_arrays()),
            ("context", self.context.to_arrays()),
        ):
            for name in sorted(arrays):
                array = np.ascontiguousarray(arrays[name])
                digest.update(f"{group}.{name}".encode())
                digest.update(str(array.dtype).encode())
                digest.update(str(array.shape).encode())
                digest.update(array.tobytes())
        digest.update(
            (
                f"rule={self.config.rule};p={self.config.p_percent!r};"
                f"share={self.config.mhm_share!r};"
                f"weight={self.config.mhm_weight!r};"
                f"vote={self.config.vote_threshold!r};"
                f"theta_mhm={self.theta_mhm.hex()};"
                f"theta_context={self.theta_context.hex()}"
            ).encode()
        )
        return digest.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EnsembleDetector(rule={self.config.rule!r}, "
            f"p_mhm={self.config.p_mhm}, p_context={self.config.p_context})"
        )

"""Unsupervised local-feature representation of heat maps.

Section 5.5 of the paper: systems with "highly unpredictable, but yet
legitimate, memory usage" defeat the global eigenmemory+GMM model, and
the authors "plan to build a robust classification algorithm by
extracting local features from MHMs in an unsupervised manner as in
Deep Learning".  No deep-learning stack is available here, so this
module implements the closest classical equivalent — a bag-of-patches
pipeline, the standard pre-DL local-feature recipe from image
recognition:

1. slide a window over the MHM vector to extract overlapping
   **patches** (local activity snippets);
2. normalise each patch (so the *shape* of local activity matters, not
   its absolute height — this is what buys robustness to legitimate
   global volume variation);
3. learn a **codebook** of prototypical patches with k-means
   (unsupervised);
4. represent an MHM as the **histogram** of its patches' nearest
   codewords;
5. model normal histograms with the same GMM machinery and threshold
   rule as the global detector.

Because the histogram discards *where* activity moved but keeps *what
kinds* of local activity occurred, this detector tolerates benign
global shifts that trip the eigenmemory detector, at the cost of some
sensitivity to purely-compositional anomalies.  The trade-off is
benched in `benchmarks/test_ablation_localfeatures.py`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.mhm import MemoryHeatMap
from ..core.series import HeatMapSeries
from .gmm import GaussianMixtureModel
from .kmeans import kmeans
from .threshold import DEFAULT_QUANTILES, ThresholdBank

__all__ = ["PatchExtractor", "PatchCodebook", "LocalFeatureDetector"]

MapsLike = Union[HeatMapSeries, np.ndarray]


def _as_matrix(data: MapsLike) -> np.ndarray:
    if isinstance(data, HeatMapSeries):
        return data.matrix()
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix[np.newaxis, :]
    return matrix


class PatchExtractor:
    """Sliding-window patch extraction with per-patch normalisation.

    Parameters
    ----------
    patch_cells:
        Window length in cells.
    stride:
        Window step in cells.
    min_energy:
        Patches whose total count is below this are dropped (empty
        regions of the map carry no local structure).
    """

    def __init__(self, patch_cells: int = 16, stride: int = 8, min_energy: float = 1.0):
        if patch_cells < 2:
            raise ValueError("patch_cells must be >= 2")
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.patch_cells = patch_cells
        self.stride = stride
        self.min_energy = min_energy

    def patches(self, vector: np.ndarray) -> np.ndarray:
        """Normalised patches of one MHM vector, shape (P, patch_cells)."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1:
            raise ValueError("expected a 1-D MHM vector")
        if len(vector) < self.patch_cells:
            raise ValueError("MHM shorter than one patch")
        starts = np.arange(0, len(vector) - self.patch_cells + 1, self.stride)
        windows = np.stack([vector[s : s + self.patch_cells] for s in starts])
        energy = windows.sum(axis=1)
        windows = windows[energy >= self.min_energy]
        if not len(windows):
            return np.empty((0, self.patch_cells))
        # L2-normalise: local *shape*, not local volume.
        norms = np.linalg.norm(windows, axis=1, keepdims=True)
        return windows / norms


class PatchCodebook:
    """A k-means codebook of prototypical local activity patterns."""

    def __init__(self, num_codewords: int = 32, seed: int = 0):
        if num_codewords < 2:
            raise ValueError("num_codewords must be >= 2")
        self.num_codewords = num_codewords
        self.seed = seed
        self.codewords_: Optional[np.ndarray] = None

    def fit(self, patches: np.ndarray) -> "PatchCodebook":
        if len(patches) < self.num_codewords:
            raise ValueError(
                f"need at least {self.num_codewords} patches, got {len(patches)}"
            )
        rng = np.random.default_rng(self.seed)
        result = kmeans(patches, self.num_codewords, rng)
        self.codewords_ = result.centers
        return self

    def assign(self, patches: np.ndarray) -> np.ndarray:
        """Nearest-codeword index for each patch."""
        if self.codewords_ is None:
            raise RuntimeError("PatchCodebook has not been fitted")
        if len(patches) == 0:
            return np.empty(0, dtype=np.int64)
        distances = (
            np.einsum("pd,pd->p", patches, patches)[:, np.newaxis]
            - 2.0 * patches @ self.codewords_.T
            + np.einsum("kd,kd->k", self.codewords_, self.codewords_)[np.newaxis, :]
        )
        return distances.argmin(axis=1)

    def histogram(self, patches: np.ndarray) -> np.ndarray:
        """Normalised codeword histogram (the bag-of-patches vector)."""
        counts = np.bincount(
            self.assign(patches), minlength=self.num_codewords
        ).astype(np.float64)
        total = counts.sum()
        return counts / total if total else counts


class LocalFeatureDetector:
    """Bag-of-patches anomaly detector over heat maps.

    Drop-in alternative to :class:`~repro.learn.detector.MhmDetector`
    with the same ``fit`` / ``log_density`` / ``is_anomalous`` surface.
    """

    def __init__(
        self,
        patch_cells: int = 16,
        stride: int = 8,
        num_codewords: int = 32,
        num_gaussians: int = 5,
        em_restarts: int = 5,
        min_patch_energy: float = 1.0,
        quantiles=DEFAULT_QUANTILES,
        seed: int = 0,
    ):
        self.extractor = PatchExtractor(
            patch_cells=patch_cells, stride=stride, min_energy=min_patch_energy
        )
        self.codebook = PatchCodebook(num_codewords=num_codewords, seed=seed)
        self.num_gaussians = num_gaussians
        self.em_restarts = em_restarts
        self.quantiles = tuple(float(q) for q in quantiles)
        self.seed = seed
        self.gmm: Optional[GaussianMixtureModel] = None
        self.thresholds: Optional[ThresholdBank] = None

    # ------------------------------------------------------------------
    def _histograms(self, matrix: np.ndarray) -> np.ndarray:
        return np.stack(
            [self.codebook.histogram(self.extractor.patches(row)) for row in matrix]
        )

    def fit(
        self, training: MapsLike, validation: Optional[MapsLike] = None
    ) -> "LocalFeatureDetector":
        matrix = _as_matrix(training)
        all_patches = np.concatenate(
            [self.extractor.patches(row) for row in matrix]
        )
        self.codebook.fit(all_patches)
        histograms = self._histograms(matrix)
        self.gmm = GaussianMixtureModel(
            num_components=self.num_gaussians,
            num_restarts=self.em_restarts,
            seed=self.seed,
        ).fit(histograms)
        calibration = (
            self._histograms(_as_matrix(validation))
            if validation is not None
            else histograms
        )
        self.thresholds = ThresholdBank.calibrate(
            self.gmm.score_samples(calibration), self.quantiles
        )
        return self

    @property
    def is_fitted(self) -> bool:
        return self.gmm is not None

    # ------------------------------------------------------------------
    def log_density(self, heat_map: Union[MemoryHeatMap, np.ndarray]) -> float:
        self._require_fitted()
        vector = (
            heat_map.as_vector()
            if isinstance(heat_map, MemoryHeatMap)
            else np.asarray(heat_map, dtype=np.float64)
        )
        histogram = self.codebook.histogram(self.extractor.patches(vector))
        return float(self.gmm.score_samples(histogram[np.newaxis, :])[0])

    def score_series(self, series: MapsLike) -> np.ndarray:
        self._require_fitted()
        return self.gmm.score_samples(self._histograms(_as_matrix(series)))

    def threshold(self, p_percent: float) -> float:
        self._require_fitted()
        return self.thresholds.threshold(p_percent)

    def is_anomalous(
        self, heat_map: Union[MemoryHeatMap, np.ndarray], p_percent: float = 1.0
    ) -> bool:
        return self.log_density(heat_map) < self.threshold(p_percent)

    def classify_series(self, series: MapsLike, p_percent: float = 1.0) -> np.ndarray:
        return self.thresholds.flag_series(self.score_series(series), p_percent)

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("LocalFeatureDetector has not been fitted")

"""Baseline detectors the paper argues against.

Section 1 dismisses two alternatives to the MHM approach and Section
5.3 (Figure 9) demonstrates one of them failing:

* **traffic volume** — "we could monitor the amount of memory traffic.
  However, it could abstract away from the detection of small, abnormal
  variations."  Figure 9 shows exactly this: the rootkit's post-load
  behaviour is invisible in the per-interval access totals.
* **exact sequences / exhaustive similarity** — tracking the exact
  address sequence (or comparing a new MHM against *every* training
  MHM) "requires a prohibitive amount of storage not to mention
  excessive computation times".

These baselines make the comparison concrete and are exercised by the
ablation benchmark A6.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.mhm import MemoryHeatMap
from ..core.series import HeatMapSeries

__all__ = [
    "TrafficVolumeDetector",
    "HotCellSetDetector",
    "NearestNeighborDetector",
]

MapsLike = Union[HeatMapSeries, np.ndarray]


def _volumes(data: MapsLike) -> np.ndarray:
    if isinstance(data, HeatMapSeries):
        return data.traffic_volumes().astype(np.float64)
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix[np.newaxis, :]
    return matrix.sum(axis=1)


def _matrix(data: MapsLike) -> np.ndarray:
    if isinstance(data, HeatMapSeries):
        return data.matrix()
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix[np.newaxis, :]
    return matrix


def _one_vector(heat_map: Union[MemoryHeatMap, np.ndarray]) -> np.ndarray:
    if isinstance(heat_map, MemoryHeatMap):
        return heat_map.as_vector()
    return np.asarray(heat_map, dtype=np.float64)


class TrafficVolumeDetector:
    """Two-sided quantile test on per-interval total access counts.

    An interval is anomalous when its traffic volume falls outside the
    ``[p, 100 - p]`` percentile band of the normal set — the strongest
    reasonable version of "monitor the amount of memory traffic".
    """

    def __init__(self, p_percent: float = 0.5):
        if not 0.0 < p_percent < 50.0:
            raise ValueError("p_percent must be in (0, 50)")
        self.p_percent = p_percent
        self.low_: Optional[float] = None
        self.high_: Optional[float] = None

    def fit(self, training: MapsLike) -> "TrafficVolumeDetector":
        volumes = _volumes(training)
        self.low_ = float(np.quantile(volumes, self.p_percent / 100.0))
        self.high_ = float(np.quantile(volumes, 1.0 - self.p_percent / 100.0))
        return self

    def is_anomalous(self, heat_map: Union[MemoryHeatMap, np.ndarray]) -> bool:
        self._require_fitted()
        volume = float(_one_vector(heat_map).sum())
        return volume < self.low_ or volume > self.high_

    def classify_series(self, series: MapsLike) -> np.ndarray:
        self._require_fitted()
        volumes = _volumes(series)
        return (volumes < self.low_) | (volumes > self.high_)

    def _require_fitted(self) -> None:
        if self.low_ is None:
            raise RuntimeError("TrafficVolumeDetector has not been fitted")


class HotCellSetDetector:
    """Pattern matching on the set of top-K hottest cells.

    Training memorises every observed top-K hot-cell signature; a test
    MHM is anomalous when its signature differs from *every* stored one
    in more than ``tolerance`` cells.  Cheap, interpretable — and blind
    to anomalies that only redistribute heat *within* the usual hot set.
    """

    def __init__(self, top_k: int = 32, tolerance: int = 2):
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        self.top_k = top_k
        self.tolerance = tolerance
        self.signatures_: Optional[list[frozenset]] = None

    def _signature(self, vector: np.ndarray) -> frozenset:
        k = min(self.top_k, len(vector))
        return frozenset(int(i) for i in np.argsort(vector)[-k:])

    def fit(self, training: MapsLike) -> "HotCellSetDetector":
        matrix = _matrix(training)
        unique: dict[frozenset, None] = {}
        for row in matrix:
            unique.setdefault(self._signature(row))
        self.signatures_ = list(unique)
        return self

    def is_anomalous(self, heat_map: Union[MemoryHeatMap, np.ndarray]) -> bool:
        self._require_fitted()
        signature = self._signature(_one_vector(heat_map))
        allowed = self.tolerance
        for stored in self.signatures_:
            if len(signature ^ stored) <= 2 * allowed:
                return False
        return True

    def classify_series(self, series: MapsLike) -> np.ndarray:
        return np.array(
            [self.is_anomalous(row) for row in _matrix(series)], dtype=bool
        )

    @property
    def num_signatures(self) -> int:
        self._require_fitted()
        return len(self.signatures_)

    def _require_fitted(self) -> None:
        if self.signatures_ is None:
            raise RuntimeError("HotCellSetDetector has not been fitted")


class NearestNeighborDetector:
    """Distance to the nearest training MHM — the exhaustive strawman.

    Section 4.1: "it is computationally prohibitive to calculate the
    similarity against every known MHM".  This detector does exactly
    that: a test MHM is anomalous when its nearest-neighbour Euclidean
    distance exceeds the calibrated quantile of leave-one-out distances
    in the training set.  Accurate, but O(N·L) per decision — the
    benchmark A6 quantifies the cost gap against the paper's method.
    """

    def __init__(self, p_percent: float = 99.5):
        if not 50.0 < p_percent < 100.0:
            raise ValueError("p_percent must be in (50, 100)")
        self.p_percent = p_percent
        self.training_: Optional[np.ndarray] = None
        self.threshold_: Optional[float] = None

    def fit(self, training: MapsLike) -> "NearestNeighborDetector":
        matrix = _matrix(training)
        if len(matrix) < 2:
            raise ValueError("need at least two training heat maps")
        self.training_ = matrix
        # Leave-one-out nearest-neighbour distances for calibration.
        sq_norms = np.einsum("nd,nd->n", matrix, matrix)
        gram = matrix @ matrix.T
        distances_sq = sq_norms[:, np.newaxis] + sq_norms[np.newaxis, :] - 2 * gram
        np.fill_diagonal(distances_sq, np.inf)
        nn = np.sqrt(np.maximum(0.0, distances_sq.min(axis=1)))
        self.threshold_ = float(np.quantile(nn, self.p_percent / 100.0))
        return self

    def nearest_distance(self, heat_map: Union[MemoryHeatMap, np.ndarray]) -> float:
        self._require_fitted()
        vector = _one_vector(heat_map)
        diffs = self.training_ - vector
        return float(np.sqrt(np.einsum("nd,nd->n", diffs, diffs).min()))

    def is_anomalous(self, heat_map: Union[MemoryHeatMap, np.ndarray]) -> bool:
        return self.nearest_distance(heat_map) > self.threshold_

    def classify_series(self, series: MapsLike) -> np.ndarray:
        return np.array(
            [self.is_anomalous(row) for row in _matrix(series)], dtype=bool
        )

    def _require_fitted(self) -> None:
        if self.training_ is None:
            raise RuntimeError("NearestNeighborDetector has not been fitted")

"""Statistical evaluation utilities for the detection pipeline.

The paper reports point estimates (an FPR of 0.8 %, a handful of
detected intervals).  For a library release we add the statistical
machinery a user needs to *trust* those numbers:

* bootstrap confidence intervals for θ_p thresholds — how stable is the
  quantile estimate given the validation-set size? (the paper uses a
  fairly small "another set of normal MHMs");
* multi-seed detection summaries — FPR/TPR/latency distributions across
  independent scenario replications;
* an expected-FPR cross-check: k-fold estimation of the achieved
  false-positive rate at a nominal p.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .threshold import quantile_threshold

__all__ = [
    "ThresholdInterval",
    "bootstrap_threshold_interval",
    "kfold_fpr",
    "DetectionSummary",
    "summarize_detections",
]


@dataclass(frozen=True)
class ThresholdInterval:
    """A bootstrap confidence interval for θ_p."""

    p_percent: float
    point: float
    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_threshold_interval(
    log_densities: np.ndarray,
    p_percent: float,
    num_resamples: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
) -> ThresholdInterval:
    """Percentile-bootstrap CI for the θ_p quantile threshold."""
    log_densities = np.asarray(log_densities, dtype=np.float64)
    if log_densities.size < 10:
        raise ValueError("need at least 10 calibration densities")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    point = quantile_threshold(log_densities, p_percent)
    estimates = np.empty(num_resamples)
    n = len(log_densities)
    for i in range(num_resamples):
        resample = log_densities[rng.integers(0, n, size=n)]
        estimates[i] = quantile_threshold(resample, p_percent)
    alpha = (1.0 - confidence) / 2.0
    return ThresholdInterval(
        p_percent=p_percent,
        point=point,
        low=float(np.quantile(estimates, alpha)),
        high=float(np.quantile(estimates, 1.0 - alpha)),
        confidence=confidence,
    )


def kfold_fpr(
    log_densities: np.ndarray,
    p_percent: float,
    num_folds: int = 5,
    seed: int = 0,
) -> np.ndarray:
    """Cross-validated achieved FPR at nominal p.

    Calibrates θ_p on k-1 folds and measures the flag rate on the
    held-out fold; returns the per-fold rates.  Their mean should sit
    near ``p_percent / 100`` when the calibration set is representative.
    """
    log_densities = np.asarray(log_densities, dtype=np.float64)
    if num_folds < 2:
        raise ValueError("num_folds must be >= 2")
    if len(log_densities) < num_folds * 2:
        raise ValueError("not enough samples for the requested folds")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(log_densities))
    folds = np.array_split(order, num_folds)
    rates = []
    for i in range(num_folds):
        held_out = log_densities[folds[i]]
        train_idx = np.concatenate([folds[j] for j in range(num_folds) if j != i])
        theta = quantile_threshold(log_densities[train_idx], p_percent)
        rates.append(float((held_out < theta).mean()))
    return np.array(rates)


@dataclass(frozen=True)
class DetectionSummary:
    """Aggregate over independent scenario replications."""

    num_runs: int
    fpr_mean: float
    fpr_std: float
    tpr_mean: float
    tpr_std: float
    latency_mean: float
    latency_max: int
    missed_runs: int

    def as_rows(self) -> list[list]:
        return [
            ["runs", self.num_runs],
            ["FPR", f"{self.fpr_mean:.2%} ± {self.fpr_std:.2%}"],
            ["TPR", f"{self.tpr_mean:.2%} ± {self.tpr_std:.2%}"],
            ["detection latency (intervals)", f"{self.latency_mean:.1f} (max {self.latency_max})"],
            ["runs never detected", self.missed_runs],
        ]


def summarize_detections(
    run_scenario: Callable[[int], tuple[np.ndarray, np.ndarray, int]],
    seeds: Sequence[int],
) -> DetectionSummary:
    """Replicate a scenario across seeds and aggregate the outcomes.

    ``run_scenario(seed)`` must return ``(flags, ground_truth,
    attack_start_index)`` for one replication.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    fprs, tprs, latencies = [], [], []
    missed = 0
    for seed in seeds:
        flags, truth, start = run_scenario(seed)
        flags = np.asarray(flags, dtype=bool)
        truth = np.asarray(truth, dtype=bool)
        clean = ~truth
        fprs.append(float(flags[clean].mean()) if clean.any() else 0.0)
        tprs.append(float(flags[truth].mean()) if truth.any() else 0.0)
        post = flags[start:]
        hits = np.flatnonzero(post)
        if hits.size:
            latencies.append(int(hits[0]))
        else:
            missed += 1
    return DetectionSummary(
        num_runs=len(seeds),
        fpr_mean=float(np.mean(fprs)),
        fpr_std=float(np.std(fprs)),
        tpr_mean=float(np.mean(tprs)),
        tpr_std=float(np.std(tprs)),
        latency_mean=float(np.mean(latencies)) if latencies else float("nan"),
        latency_max=max(latencies, default=-1),
        missed_runs=missed,
    )

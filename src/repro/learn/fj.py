"""Figueiredo–Jain unsupervised mixture learning (paper footnote 1).

The paper fixes J = 5 "arbitrarily" and notes that Figueiredo & Jain
[PAMI 2002] provide a method to choose the number of components
automatically.  This module implements that extension: component-wise
EM with a minimum-message-length (MML) prior that drives superfluous
components' weights to zero, annihilates them, and keeps the model with
the best message length over the sweep from ``max_components`` down to
``min_components``.

Used by the ablation benchmark A4 to check how the automatic J compares
with the paper's hand-picked 5 on MHM training data.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .gaussian import mvn_logpdf_from_cholesky, regularized_cholesky
from .gmm import GaussianMixtureModel, GmmParameters, _logsumexp
from .kmeans import kmeans

__all__ = ["FigueiredoJainGmm"]


class FigueiredoJainGmm:
    """GMM with automatic component-count selection via MML.

    Parameters
    ----------
    max_components:
        Initial (over-provisioned) J.
    min_components:
        Smallest J to consider.
    max_iterations, tolerance:
        Stopping rule of the inner EM sweeps.
    covariance_ridge:
        Relative ridge on component covariances.
    seed:
        Initialisation seed.

    After :meth:`fit`, :attr:`model_` holds the winning
    :class:`~repro.learn.gmm.GaussianMixtureModel` and
    :attr:`num_components_` its J.
    """

    def __init__(
        self,
        max_components: int = 12,
        min_components: int = 1,
        max_iterations: int = 500,
        tolerance: float = 1e-6,
        covariance_ridge: float = 1e-6,
        seed: int = 0,
    ):
        if not 1 <= min_components <= max_components:
            raise ValueError("need 1 <= min_components <= max_components")
        self.max_components = max_components
        self.min_components = min_components
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.covariance_ridge = covariance_ridge
        self.seed = seed
        self.model_: Optional[GaussianMixtureModel] = None
        self.num_components_: Optional[int] = None
        self.message_length_: float = np.inf
        self.history_: list[tuple[int, float]] = []  # (J, message length)

    # ------------------------------------------------------------------
    def fit(self, data: np.ndarray) -> "FigueiredoJainGmm":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be an (N, D) matrix")
        n_samples, dim = data.shape
        start_j = min(self.max_components, n_samples)
        rng = np.random.default_rng(self.seed)

        # Over-provisioned k-means start.
        km = kmeans(data, start_j, rng)
        means = km.centers.copy()
        global_cov = np.cov(data, rowvar=False).reshape(dim, dim)
        scale = max(float(np.trace(global_cov)) / dim, 1e-12)
        ridge = self.covariance_ridge * scale
        covariances = np.array(
            [global_cov + ridge * np.eye(dim) for _ in range(start_j)]
        )
        weights = np.full(start_j, 1.0 / start_j)

        #: free parameters per component: mean + symmetric covariance
        params_per_component = dim + dim * (dim + 1) / 2.0

        best_params: Optional[GmmParameters] = None
        best_length = np.inf
        best_j = start_j

        while len(weights) >= self.min_components:
            weights, means, covariances, log_likelihood = self._cem_sweep(
                data, weights, means, covariances, ridge, params_per_component
            )
            j = len(weights)
            if j == 0:
                break
            length = self._message_length(
                log_likelihood, weights, n_samples, params_per_component
            )
            self.history_.append((j, length))
            if length < best_length:
                best_length = length
                best_j = j
                best_params = GmmParameters(
                    weights=weights.copy(),
                    means=means.copy(),
                    covariances=covariances.copy(),
                )
            if j <= self.min_components:
                break
            # Forced annihilation: kill the weakest component and resweep.
            drop = int(np.argmin(weights))
            weights = np.delete(weights, drop)
            means = np.delete(means, drop, axis=0)
            covariances = np.delete(covariances, drop, axis=0)
            weights = weights / weights.sum()

        if best_params is None:
            raise RuntimeError("Figueiredo-Jain failed to retain any component")

        model = GaussianMixtureModel(num_components=best_j, seed=self.seed)
        model.parameters = best_params
        model.converged_ = True
        model.training_log_likelihood_ = float(
            model.score_samples(data).sum()
        )
        self.model_ = model
        self.num_components_ = best_j
        self.message_length_ = best_length
        return self

    # ------------------------------------------------------------------
    def _cem_sweep(self, data, weights, means, covariances, ridge, nppc):
        """Component-wise EM with MML weight shrinkage and annihilation."""
        n_samples, dim = data.shape
        previous_ll = -np.inf
        log_likelihood = -np.inf
        for _ in range(self.max_iterations):
            j = len(weights)
            if j == 0:
                return weights, means, covariances, -np.inf
            factors = [regularized_cholesky(c) for c in covariances]
            log_dens = np.stack(
                [
                    mvn_logpdf_from_cholesky(data, means[k], factors[k])
                    for k in range(j)
                ],
                axis=1,
            )
            log_joint = log_dens + np.log(weights)
            log_norm = _logsumexp(log_joint, axis=1)
            responsibilities = np.exp(log_joint - log_norm[:, np.newaxis])
            log_likelihood = float(log_norm.sum())

            mass = responsibilities.sum(axis=0)
            # MML shrinkage (Figueiredo-Jain Eq. 17): subtract half the
            # per-component parameter count from each component's mass.
            shrunk = np.maximum(0.0, mass - nppc / 2.0)
            if shrunk.sum() <= 0:
                # Everything annihilated: keep the heaviest component.
                keep = int(np.argmax(mass))
                weights = np.ones(1)
                means = means[keep : keep + 1]
                covariances = covariances[keep : keep + 1]
                continue
            new_weights = shrunk / shrunk.sum()

            survivors = new_weights > 0
            if not survivors.all():
                weights = new_weights[survivors]
                weights = weights / weights.sum()
                means = means[survivors]
                covariances = covariances[survivors]
                previous_ll = -np.inf  # model changed; reset convergence
                continue

            weights = new_weights
            means = (responsibilities.T @ data) / mass[:, np.newaxis]
            for k in range(j):
                centered = data - means[k]
                weighted = centered * responsibilities[:, k : k + 1]
                covariances[k] = (weighted.T @ centered) / mass[k]
                covariances[k] += ridge * np.eye(dim)

            if abs(log_likelihood - previous_ll) < self.tolerance * n_samples:
                break
            previous_ll = log_likelihood
        return weights, means, covariances, log_likelihood

    @staticmethod
    def _message_length(log_likelihood, weights, n_samples, nppc):
        """The MML criterion (Figueiredo-Jain Eq. 15, constants dropped)."""
        j = len(weights)
        positive = weights[weights > 0]
        return float(
            nppc / 2.0 * np.sum(np.log(n_samples * positive / 12.0))
            + j / 2.0 * np.log(n_samples / 12.0)
            + j * (nppc + 1) / 2.0
            - log_likelihood
        )

    def score_samples(self, data: np.ndarray) -> np.ndarray:
        if self.model_ is None:
            raise RuntimeError("FigueiredoJainGmm has not been fitted")
        return self.model_.score_samples(data)

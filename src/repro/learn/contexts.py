"""Execution-context detector over per-interval syscall distributions.

The second detection modality (after the MHM density detector): Yoon et
al.'s SMC'15 observation that a real-time task set cycles through a
small number of *execution contexts*, each with a characteristic
system-call frequency vector.  The detector learns those contexts and
watches two complementary channels:

**Score channel** (the paper-faithful part).  k-means over the clean
training stream's per-interval syscall count vectors (reusing
:func:`repro.learn.kmeans.kmeans`) yields the context centers.  An
interval's anomaly score is its Euclidean distance to the nearest
center, normalised by a per-context scale (a high quantile of the
in-context clean training distances, floored so near-degenerate
contexts don't amplify noise).  The threshold θ_p is the
``(100 - p)``-quantile of a held-out clean validation stream's scores,
so the expected false-positive rate is p percent — the same calibration
contract as the MHM detector, with the comparison direction reversed
(score *above* θ ⇒ anomalous).

**Drift channel.**  Per-interval deviations are far too noisy to expose
a mimicry attack that pads its syscall mix back into the clean
envelope, but the *schedule* is periodic: interval ``i`` of any clean
boot draws from the phase ``i mod hyperperiod`` of the task set's
hyperperiod.  The detector keeps per-phase mean vectors (accumulated in
exact int64 sums, so run order cannot perturb them) and tracks the
cumulative sum of phase-conditional residuals.  On clean streams the
cumulative residual is a bounded random walk; any *systematic* per-
interval bias — one padded syscall per interval, say — grows linearly.
The drift statistic is the running L∞ norm of that cumulative sum; the
bound is calibrated as ``drift_multiplier x (max clean full-run drift)
+ drift_margin``.  The multiplier covers windows that start mid-run:
for any span, ``|D(t) - D(s)| <= 2 max_t |D(t)|`` by the triangle
inequality.

Both channels are pure functions of the fitted arrays; scoring runs
through the :func:`repro.kernels.nearest_context_batch` dispatching
kernel (vectorized backend with a scalar ``math.fsum`` oracle).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional, Sequence

import numpy as np

from .. import kernels
from ..obs import span
from .kmeans import KMeansResult, kmeans
from .threshold import DEFAULT_QUANTILES

__all__ = ["ContextDetector", "cluster_contexts", "sort_rows"]


def sort_rows(matrix: np.ndarray) -> np.ndarray:
    """Rows in lexicographic order — a canonical form of the multiset.

    Clustering the *sorted* rows makes the fitted contexts a pure
    function of the multiset of training vectors: permuting the
    training stream (within or across runs) cannot move a single bit of
    the k-means result.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("expected an (N, D) matrix")
    order = np.lexsort(matrix.T[::-1])
    return matrix[order]


def cluster_contexts(
    rows: np.ndarray, num_contexts: int, seed: int = 0
) -> KMeansResult:
    """k-means contexts over a canonicalised (row-sorted) matrix."""
    canonical = np.asarray(sort_rows(rows), dtype=np.float64)
    return kmeans(canonical, num_contexts, np.random.default_rng(seed))


def _as_counts(matrix: np.ndarray) -> np.ndarray:
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError("expected an (intervals, syscalls) matrix")
    counts = arr.astype(np.int64)
    if not np.array_equal(counts, arr):
        raise ValueError("syscall matrices must hold integer counts")
    return counts


class ContextDetector:
    """k-means execution contexts + phase-drift over syscall vectors.

    Parameters
    ----------
    num_contexts:
        k, the number of execution contexts.
    scale_quantile:
        Per-context scale = this percentile of the in-context clean
        training distances (so a "tight" context flags small
        excursions and a naturally noisy one doesn't).
    scale_floor:
        Lower bound on every per-context scale; guards contexts whose
        training distances are all (near) zero.
    quantiles:
        The p values (percent) to calibrate θ_p for, mirroring the MHM
        detector's bank.
    hyperperiod:
        Schedule period in monitoring intervals for the drift channel
        (the paper taskset's 100 ms hyperperiod over 10 ms intervals).
    drift_multiplier, drift_margin:
        Drift bound = ``multiplier x max clean full-run drift +
        margin``.
    seed:
        Seeds k-means++ initialisation.
    """

    def __init__(
        self,
        num_contexts: int = 12,
        scale_quantile: float = 99.0,
        scale_floor: float = 0.5,
        quantiles: Iterable[float] = DEFAULT_QUANTILES,
        hyperperiod: int = 10,
        drift_multiplier: float = 2.0,
        drift_margin: float = 1.0,
        seed: int = 0,
    ):
        if num_contexts < 1:
            raise ValueError("num_contexts must be >= 1")
        if not 0.0 < scale_quantile <= 100.0:
            raise ValueError("scale_quantile must be in (0, 100]")
        if scale_floor < 0:
            raise ValueError("scale_floor must be non-negative")
        if hyperperiod < 1:
            raise ValueError("hyperperiod must be >= 1")
        if drift_multiplier < 1.0:
            raise ValueError(
                "drift_multiplier must be >= 1 (mid-run spans need the "
                "triangle-inequality factor)"
            )
        self.num_contexts = num_contexts
        self.scale_quantile = float(scale_quantile)
        self.scale_floor = float(scale_floor)
        self.quantiles = tuple(float(q) for q in quantiles)
        for q in self.quantiles:
            if not 0.0 < q < 100.0:
                raise ValueError("quantiles must be in (0, 100)")
        self.hyperperiod = int(hyperperiod)
        self.drift_multiplier = float(drift_multiplier)
        self.drift_margin = float(drift_margin)
        self.seed = int(seed)

        self.centers_: Optional[np.ndarray] = None
        self.scales_: Optional[np.ndarray] = None
        self.thresholds_: dict[float, float] = {}
        self.phase_sums_: Optional[np.ndarray] = None
        self.phase_counts_: Optional[np.ndarray] = None
        self.clean_drift_max_: Optional[float] = None
        self.drift_bound_: Optional[float] = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        training_runs: Sequence[np.ndarray],
        validation: np.ndarray,
    ) -> "ContextDetector":
        """Learn contexts, scales, thresholds and the drift bound.

        Parameters
        ----------
        training_runs:
            One integer ``(intervals, syscalls)`` matrix per fresh clean
            boot; row *t* of each is interval *t* of that boot (the
            drift channel needs the phase alignment, which is why runs
            are passed separately rather than pre-concatenated).
        validation:
            A held-out clean boot's matrix, for θ calibration.
        """
        runs = [_as_counts(run) for run in training_runs]
        if not runs:
            raise ValueError("at least one training run is required")
        widths = {run.shape[1] for run in runs}
        validation = _as_counts(validation)
        widths.add(validation.shape[1])
        if len(widths) != 1:
            raise ValueError("all matrices must share one syscall vocabulary")

        with span("contexts.fit.kmeans"):
            pooled = np.vstack(runs)
            result = cluster_contexts(pooled, self.num_contexts, self.seed)
            self.centers_ = result.centers

        with span("contexts.fit.scales"):
            canonical = np.asarray(sort_rows(pooled), dtype=np.float64)
            labels, distances = kernels.nearest_context_batch(
                canonical, self.centers_
            )
            scales = np.full(self.num_contexts, self.scale_floor)
            for j in range(self.num_contexts):
                members = distances[labels == j]
                if members.size:
                    scales[j] = max(
                        float(np.percentile(members, self.scale_quantile)),
                        self.scale_floor,
                    )
            self.scales_ = scales

        with span("contexts.fit.phases"):
            dim = pooled.shape[1]
            sums = np.zeros((self.hyperperiod, dim), dtype=np.int64)
            counts = np.zeros(self.hyperperiod, dtype=np.int64)
            for run in runs:
                phases = np.arange(len(run)) % self.hyperperiod
                np.add.at(sums, phases, run)
                counts += np.bincount(phases, minlength=self.hyperperiod)
            if (counts == 0).any():
                raise ValueError(
                    "training runs must cover every schedule phase "
                    f"(hyperperiod={self.hyperperiod})"
                )
            self.phase_sums_ = sums
            self.phase_counts_ = counts

        with span("contexts.fit.thresholds"):
            scores = self.score_series(validation)
            self.thresholds_ = {
                p: float(np.quantile(scores, 1.0 - p / 100.0))
                for p in self.quantiles
            }

        with span("contexts.fit.drift"):
            clean_max = 0.0
            for run in runs:
                drift = self.drift_series(run, start_index=0)
                if drift.size:
                    clean_max = max(clean_max, float(drift.max()))
            validation_drift = self.drift_series(validation, start_index=0)
            if validation_drift.size:
                clean_max = max(clean_max, float(validation_drift.max()))
            self.clean_drift_max_ = clean_max
            self.drift_bound_ = (
                self.drift_multiplier * clean_max + self.drift_margin
            )
        return self

    @property
    def is_fitted(self) -> bool:
        # Centers are set first during fit(); the scoring helpers the
        # later fit stages call only need the earlier stages' state.
        return self.centers_ is not None

    @property
    def phase_means_(self) -> np.ndarray:
        self._require_fitted()
        return self.phase_sums_ / self.phase_counts_[:, np.newaxis]

    # ------------------------------------------------------------------
    # Score channel
    # ------------------------------------------------------------------
    def score_series(self, matrix: np.ndarray) -> np.ndarray:
        """Scaled distance-to-nearest-context score per interval."""
        self._require_fitted()
        data = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        if data.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        labels, distances = kernels.nearest_context_batch(data, self.centers_)
        scales = self.scales_[labels]
        scores = np.zeros(len(distances), dtype=np.float64)
        positive = scales > 0
        np.divide(distances, scales, out=scores, where=positive)
        scores[~positive & (distances > 0)] = np.inf
        return scores

    def threshold(self, p_percent: float) -> float:
        """θ_p in score space (score above θ_p ⇒ anomalous)."""
        self._require_fitted()
        try:
            return self.thresholds_[float(p_percent)]
        except KeyError:
            available = sorted(self.thresholds_)
            raise KeyError(
                f"no context θ_{p_percent} calibrated (available: {available})"
            ) from None

    def flag_scores(self, scores: np.ndarray, p_percent: float) -> np.ndarray:
        theta = self.threshold(p_percent)
        return np.asarray(scores, dtype=np.float64) > theta

    def classify_series(
        self, matrix: np.ndarray, p_percent: float = 1.0
    ) -> np.ndarray:
        """Boolean per-interval anomaly flags for a syscall matrix."""
        return self.flag_scores(self.score_series(matrix), p_percent)

    # ------------------------------------------------------------------
    # Drift channel
    # ------------------------------------------------------------------
    def drift_series(
        self, matrix: np.ndarray, start_index: int = 0
    ) -> np.ndarray:
        """Running L∞ norm of the phase-conditional residual cumsum.

        ``start_index`` is the absolute interval index of the matrix's
        first row on its device's own clock — the phase key, so a
        stream windowed mid-run stays phase-aligned.
        """
        self._require_fitted()
        data = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        if data.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        phases = (np.arange(len(data)) + int(start_index)) % self.hyperperiod
        residuals = data - self.phase_means_[phases]
        cumulative = np.cumsum(residuals, axis=0)
        return np.abs(cumulative).max(axis=1)

    def drift_exceeded(self, matrix: np.ndarray, start_index: int = 0) -> bool:
        """Whether the stream's drift statistic ever clears the bound."""
        drift = self.drift_series(matrix, start_index=start_index)
        return bool(drift.size) and float(drift.max()) > self.drift_bound_

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict:
        """Fitted state as a flat ``name -> ndarray`` dict (cacheable)."""
        self._require_fitted()
        quantile_keys = np.array(sorted(self.thresholds_), dtype=np.float64)
        quantile_values = np.array(
            [self.thresholds_[k] for k in quantile_keys], dtype=np.float64
        )
        return {
            "context_centers": np.asarray(self.centers_, dtype=np.float64),
            "context_scales": np.asarray(self.scales_, dtype=np.float64),
            "context_quantile_keys": quantile_keys,
            "context_quantile_values": quantile_values,
            "context_phase_sums": np.asarray(self.phase_sums_, dtype=np.int64),
            "context_phase_counts": np.asarray(
                self.phase_counts_, dtype=np.int64
            ),
            "context_drift": np.array(
                [self.clean_drift_max_, self.drift_bound_], dtype=np.float64
            ),
            "context_params": np.array(
                [
                    self.scale_quantile,
                    self.scale_floor,
                    self.drift_multiplier,
                    self.drift_margin,
                    float(self.seed),
                ],
                dtype=np.float64,
            ),
        }

    @classmethod
    def from_arrays(cls, arrays: dict) -> "ContextDetector":
        """Rebuild a fitted detector from :meth:`to_arrays` output."""
        params = np.asarray(arrays["context_params"], dtype=np.float64)
        detector = cls(
            num_contexts=len(arrays["context_centers"]),
            scale_quantile=float(params[0]),
            scale_floor=float(params[1]),
            quantiles=tuple(
                float(k) for k in arrays["context_quantile_keys"]
            ),
            hyperperiod=len(arrays["context_phase_sums"]),
            drift_multiplier=float(params[2]),
            drift_margin=float(params[3]),
            seed=int(params[4]),
        )
        detector.centers_ = np.asarray(
            arrays["context_centers"], dtype=np.float64
        )
        detector.scales_ = np.asarray(
            arrays["context_scales"], dtype=np.float64
        )
        detector.thresholds_ = {
            float(k): float(v)
            for k, v in zip(
                arrays["context_quantile_keys"],
                arrays["context_quantile_values"],
            )
        }
        detector.phase_sums_ = np.asarray(
            arrays["context_phase_sums"], dtype=np.int64
        )
        detector.phase_counts_ = np.asarray(
            arrays["context_phase_counts"], dtype=np.int64
        )
        drift = np.asarray(arrays["context_drift"], dtype=np.float64)
        detector.clean_drift_max_ = float(drift[0])
        detector.drift_bound_ = float(drift[1])
        return detector

    def save(self, path) -> None:
        np.savez_compressed(path, **self.to_arrays())

    @classmethod
    def load(cls, path) -> "ContextDetector":
        with np.load(path) as data:
            return cls.from_arrays({name: data[name] for name in data.files})

    def fingerprint(self) -> str:
        """sha256 over the complete fitted state, last-ulp sensitive."""
        arrays = self.to_arrays()
        digest = hashlib.sha256()
        for name in sorted(arrays):
            array = np.ascontiguousarray(arrays[name])
            digest.update(name.encode())
            digest.update(str(array.dtype).encode())
            digest.update(str(array.shape).encode())
            digest.update(array.tobytes())
        return digest.hexdigest()

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("ContextDetector has not been fitted")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.is_fitted:
            return "ContextDetector(unfitted)"
        return (
            f"ContextDetector(k={self.num_contexts}, "
            f"L={self.hyperperiod}, thresholds={sorted(self.thresholds_)}, "
            f"drift_bound={self.drift_bound_:.3f})"
        )

"""Gaussian Mixture Model fitted with Expectation-Maximisation.

Section 4.3 of the paper: normal (reduced) MHMs are modelled as draws
from a J-component Gaussian mixture — each component a basis pattern of
the system's deterministic behaviour — and a test MHM is anomalous when
its mixture density falls below a calibrated threshold.

Following the paper's training protocol (Section 5.2):

* the number of components J is given by the caller (the paper uses
  J = 5, "arbitrarily chosen"; see :mod:`repro.learn.fj` for the
  Figueiredo–Jain automatic alternative the paper cites);
* EM is restarted several times (the paper: 10) and the run with the
  highest training log-likelihood wins — EM only finds local optima;
* each restart is seeded from a k-means solution.

All density work is done in log space with the log-sum-exp trick, and
component covariances carry a ridge regulariser so the tight clusters
of a predictable real-time workload cannot collapse EM.

Density evaluation routes through :mod:`repro.kernels`
(``log_density_batch`` / ``responsibilities_batch``): the E-step,
threshold calibration and the online monitor all share one batched
scoring kernel, and ``REPRO_KERNELS=reference`` swaps in the scalar
oracle the differential suite compares against.  Collapsed mixture
components (zero weight) score as exactly ``-inf`` without tripping
the divide-by-zero warning that ``make test-fast`` escalates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .. import kernels, obs
from .gaussian import regularized_cholesky
from .kmeans import kmeans

__all__ = ["GmmParameters", "GaussianMixtureModel"]


@dataclass
class GmmParameters:
    """The fitted mixture: λ_j, μ_j, Σ_j for j = 1..J (paper Eq. 2)."""

    weights: np.ndarray  # (J,)  mixing parameters λ_j
    means: np.ndarray  # (J, D) component means μ_j
    covariances: np.ndarray  # (J, D, D) component covariances Σ_j
    cholesky_factors: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64)
        self.means = np.asarray(self.means, dtype=np.float64)
        self.covariances = np.asarray(self.covariances, dtype=np.float64)
        j = len(self.weights)
        if self.means.shape[0] != j or self.covariances.shape[0] != j:
            raise ValueError("component counts disagree across parameters")
        if not np.isclose(self.weights.sum(), 1.0, atol=1e-6):
            raise ValueError("mixing weights must sum to 1")
        if (self.weights < 0).any():
            raise ValueError("mixing weights must be non-negative")
        if self.cholesky_factors is None:
            self.cholesky_factors = np.stack(
                [regularized_cholesky(c) for c in self.covariances]
            )

    @property
    def num_components(self) -> int:
        return len(self.weights)

    @property
    def dimension(self) -> int:
        return self.means.shape[1]


class GaussianMixtureModel:
    """A J-component GMM with full covariances, trained by EM.

    Parameters
    ----------
    num_components:
        J, the number of Gaussian densities (paper: 5).
    num_restarts:
        Independent EM runs; the best training log-likelihood wins
        (paper: 10).
    max_iterations, tolerance:
        EM stopping rule: stop when the mean log-likelihood improves by
        less than ``tolerance`` between iterations.
    covariance_ridge:
        Relative ridge added to each component covariance at every
        M-step (scaled by the data variance).  The default 1e-4 keeps
        the density scale sane on the near-deterministic clusters that
        predictable real-time workloads produce; EM with an unridged
        covariance drives component determinants toward zero and the
        log densities toward ±thousands.
    seed:
        Seed for k-means initialisation and restart variation.
    """

    def __init__(
        self,
        num_components: int = 5,
        num_restarts: int = 10,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
        covariance_ridge: float = 1e-4,
        seed: int = 0,
    ):
        if num_components < 1:
            raise ValueError("num_components must be >= 1")
        if num_restarts < 1:
            raise ValueError("num_restarts must be >= 1")
        self.num_components = num_components
        self.num_restarts = num_restarts
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.covariance_ridge = covariance_ridge
        self.seed = seed
        self.parameters: Optional[GmmParameters] = None
        self.converged_: bool = False
        self.training_log_likelihood_: float = -np.inf
        self.iterations_: int = 0
        #: Per-iteration mean log-likelihood of the winning restart.
        self.log_likelihood_trajectory_: list[float] = []

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, data: np.ndarray) -> "GaussianMixtureModel":
        """Fit by multi-restart EM; keeps the best restart."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be an (N, D) matrix")
        n_samples = len(data)
        if n_samples < self.num_components:
            raise ValueError(
                f"need at least {self.num_components} samples, got {n_samples}"
            )

        rng = np.random.default_rng(self.seed)
        registry = obs.metrics()
        iterations_histogram = registry.histogram(
            "gmm.em.iterations_per_restart",
            buckets=(1, 2, 5, 10, 20, 50, 100, 200, 500),
        )
        best: Optional[tuple[float, GmmParameters, bool, int, list]] = None
        for _ in range(self.num_restarts):
            params, log_likelihood, converged, iterations, trajectory = self._run_em(
                data, rng
            )
            registry.counter("gmm.em.restarts").inc()
            registry.counter("gmm.em.iterations").inc(iterations)
            iterations_histogram.observe(iterations)
            if best is None or log_likelihood > best[0]:
                best = (log_likelihood, params, converged, iterations, trajectory)

        assert best is not None
        (
            self.training_log_likelihood_,
            self.parameters,
            self.converged_,
            self.iterations_,
            self.log_likelihood_trajectory_,
        ) = best
        registry.gauge("gmm.em.best_log_likelihood").set(
            self.training_log_likelihood_
        )
        return self

    def _initial_parameters(
        self, data: np.ndarray, rng: np.random.Generator
    ) -> GmmParameters:
        """Seed from k-means: cluster means, within-cluster covariances."""
        result = kmeans(data, self.num_components, rng)
        dim = data.shape[1]
        global_cov = np.cov(data, rowvar=False).reshape(dim, dim)
        scale = max(float(np.trace(global_cov)) / dim, 1e-12)
        weights = np.empty(self.num_components)
        covariances = np.empty((self.num_components, dim, dim))
        for j in range(self.num_components):
            members = data[result.labels == j]
            weights[j] = max(len(members), 1)
            if len(members) > dim:
                covariances[j] = np.cov(members, rowvar=False).reshape(dim, dim)
            else:
                covariances[j] = global_cov.copy()
            covariances[j] += self.covariance_ridge * scale * np.eye(dim)
        weights /= weights.sum()
        return GmmParameters(
            weights=weights, means=result.centers, covariances=covariances
        )

    def _run_em(
        self, data: np.ndarray, rng: np.random.Generator
    ) -> tuple[GmmParameters, float, bool, int, list]:
        params = self._initial_parameters(data, rng)
        n_samples, dim = data.shape
        scale = max(float(np.var(data)), 1e-12)
        ridge = self.covariance_ridge * scale

        previous_mean_ll = -np.inf
        converged = False
        iteration = 0
        trajectory: list[float] = []
        for iteration in range(1, self.max_iterations + 1):
            # E-step: responsibilities in log space (batched kernel).
            log_norm, responsibilities = kernels.responsibilities_batch(
                data, params.weights, params.means, params.cholesky_factors
            )

            mean_ll = float(log_norm.mean())
            trajectory.append(mean_ll)
            if mean_ll - previous_mean_ll < self.tolerance and iteration > 1:
                converged = True
                break
            previous_mean_ll = mean_ll

            # M-step.
            component_mass = responsibilities.sum(axis=0) + 1e-12
            weights = component_mass / n_samples
            means = (responsibilities.T @ data) / component_mass[:, np.newaxis]
            covariances = np.empty((self.num_components, dim, dim))
            for j in range(self.num_components):
                centered = data - means[j]
                weighted = centered * responsibilities[:, j : j + 1]
                covariances[j] = (weighted.T @ centered) / component_mass[j]
                covariances[j] += ridge * np.eye(dim)
            weights = weights / weights.sum()
            params = GmmParameters(
                weights=weights, means=means, covariances=covariances
            )

        final_ll = float(
            kernels.log_density_batch(
                data, params.weights, params.means, params.cholesky_factors
            ).sum()
        )
        return params, final_ll, converged, iteration, trajectory

    @staticmethod
    def _component_log_densities(
        data: np.ndarray, params: GmmParameters
    ) -> np.ndarray:
        """(N, J) matrix of per-component log densities."""
        return kernels.component_log_densities(
            data, params.means, params.cholesky_factors
        )

    # ------------------------------------------------------------------
    # Scoring (paper Eq. 2)
    # ------------------------------------------------------------------
    def score_samples(self, data: np.ndarray) -> np.ndarray:
        """Natural-log mixture density ``ln Pr(M)`` per sample."""
        self._require_fitted()
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        params = self.parameters
        return kernels.log_density_batch(
            data, params.weights, params.means, params.cholesky_factors
        )

    def score_one(self, point: np.ndarray) -> float:
        return float(self.score_samples(point[np.newaxis, :])[0])

    def log_likelihood(self, data: np.ndarray) -> float:
        """Total training-style log-likelihood Σ log Pr(M_i)."""
        return float(self.score_samples(data).sum())

    def responsibilities(self, data: np.ndarray) -> np.ndarray:
        """(N, J) posterior component memberships."""
        self._require_fitted()
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        params = self.parameters
        return kernels.responsibilities_batch(
            data, params.weights, params.means, params.cholesky_factors
        )[1]

    def predict_component(self, data: np.ndarray) -> np.ndarray:
        """Hard assignment to the most responsible component."""
        return self.responsibilities(data).argmax(axis=1)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` points from the fitted mixture."""
        self._require_fitted()
        params = self.parameters
        counts = rng.multinomial(n, params.weights)
        chunks = []
        for j, count in enumerate(counts):
            if count == 0:
                continue
            standard = rng.standard_normal((count, params.dimension))
            chunks.append(params.means[j] + standard @ params.cholesky_factors[j].T)
        points = np.concatenate(chunks, axis=0)
        rng.shuffle(points)
        return points

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict:
        self._require_fitted()
        return {
            "weights": self.parameters.weights,
            "means": self.parameters.means,
            "covariances": self.parameters.covariances,
        }

    @classmethod
    def from_arrays(cls, arrays: dict, **kwargs) -> "GaussianMixtureModel":
        model = cls(num_components=len(arrays["weights"]), **kwargs)
        model.parameters = GmmParameters(
            weights=np.asarray(arrays["weights"], dtype=np.float64),
            means=np.asarray(arrays["means"], dtype=np.float64),
            covariances=np.asarray(arrays["covariances"], dtype=np.float64),
        )
        model.converged_ = True
        return model

    def _require_fitted(self) -> None:
        if self.parameters is None:
            raise RuntimeError("GaussianMixtureModel has not been fitted")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.parameters is None:
            return f"GaussianMixtureModel(J={self.num_components}, unfitted)"
        return (
            f"GaussianMixtureModel(J={self.num_components}, "
            f"D={self.parameters.dimension}, "
            f"ll={self.training_log_likelihood_:.1f})"
        )


def _logsumexp(values: np.ndarray, axis: int) -> np.ndarray:
    """Numerically stable log Σ exp along ``axis`` (kernels-routed)."""
    return kernels.logsumexp(values, axis=axis)

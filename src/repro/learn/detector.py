"""The end-to-end MHM anomaly detector.

This is the paper's full pipeline (Sections 4 and 5.2) in one object:

1. **Eigenmemory** — PCA keeps the L′ components explaining ≥ 99.99 %
   of training variance (9 in the paper's setup);
2. **GMM** — a J = 5 mixture fitted by 10-restart EM over the reduced
   training set;
3. **θ calibration** — thresholds set to p-quantiles of the densities
   of a *held-out* normal set, so the expected FPR is p.

At run time the secure core mean-shifts the incoming MHM, projects it
with the stored eigenmemories (Eq. 1), evaluates the mixture density
(Eq. 2) and compares against θ_p.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.mhm import MemoryHeatMap
from ..core.series import HeatMapSeries
from ..obs import span
from .gmm import GaussianMixtureModel
from .pca import Eigenmemory
from .threshold import DEFAULT_QUANTILES, ThresholdBank

__all__ = ["MhmDetector"]

LN10 = float(np.log(10.0))

MapsLike = Union[HeatMapSeries, np.ndarray]


def _as_matrix(data: MapsLike) -> np.ndarray:
    if isinstance(data, HeatMapSeries):
        return data.matrix()
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix[np.newaxis, :]
    return matrix


class MhmDetector:
    """Eigenmemory + GMM anomaly detector over memory heat maps.

    Parameters
    ----------
    num_eigenmemories:
        L′.  ``None`` (default) selects the smallest L′ reaching
        ``variance_target``, reproducing the paper's selection rule.
    variance_target:
        Retained-variance goal for automatic L′ selection (paper:
        "more than 99.99 % of the variances").
    num_gaussians:
        J, the number of GMM components (paper: 5).
    em_restarts:
        EM restarts, best log-likelihood wins (paper: 10).
    quantiles:
        The θ_p values (percent) to calibrate (paper: 0.5 and 1).
    covariance_ridge:
        GMM covariance regulariser (see
        :class:`~repro.learn.gmm.GaussianMixtureModel`).
    seed:
        Seeds k-means/EM initialisation.

    Examples
    --------
    >>> detector = MhmDetector(seed=1).fit(training, validation)
    >>> log10_density = detector.log10_density(test_map)
    >>> detector.is_anomalous(test_map, p_percent=1.0)
    """

    def __init__(
        self,
        num_eigenmemories: Optional[int] = None,
        variance_target: float = 0.9999,
        num_gaussians: int = 5,
        em_restarts: int = 10,
        quantiles=DEFAULT_QUANTILES,
        covariance_ridge: float = 1e-4,
        seed: int = 0,
    ):
        self.eigenmemory = Eigenmemory(
            num_components=num_eigenmemories, variance_target=variance_target
        )
        self.num_gaussians = num_gaussians
        self.em_restarts = em_restarts
        self.quantiles = tuple(float(q) for q in quantiles)
        self.covariance_ridge = covariance_ridge
        self.seed = seed
        self.gmm: Optional[GaussianMixtureModel] = None
        self.thresholds: Optional[ThresholdBank] = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self, training: MapsLike, validation: Optional[MapsLike] = None
    ) -> "MhmDetector":
        """Learn eigenmemories, mixture and thresholds.

        Parameters
        ----------
        training:
            Normal MHMs for the eigenmemory transform and the GMM.
        validation:
            A *separate* set of normal MHMs for θ calibration (the
            paper collects one).  When omitted, thresholds are
            calibrated on the training densities — cheaper, slightly
            optimistic.
        """
        train_matrix = _as_matrix(training)
        with span("fit.pca"):
            self.eigenmemory.fit(train_matrix)
            reduced = self.eigenmemory.transform(train_matrix)

        with span("fit.gmm"):
            self.gmm = GaussianMixtureModel(
                num_components=self.num_gaussians,
                num_restarts=self.em_restarts,
                covariance_ridge=self.covariance_ridge,
                seed=self.seed,
            ).fit(reduced)

        with span("fit.thresholds"):
            if validation is not None:
                calibration = self.eigenmemory.transform(_as_matrix(validation))
            else:
                calibration = reduced
            self.thresholds = ThresholdBank.calibrate_from_gmm(
                self.gmm, calibration, self.quantiles
            )
        return self

    @property
    def is_fitted(self) -> bool:
        return self.gmm is not None and self.thresholds is not None

    @property
    def num_eigenmemories_(self) -> int:
        return self.eigenmemory.num_components_

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _reduce(self, heat_map: Union[MemoryHeatMap, np.ndarray]) -> np.ndarray:
        if isinstance(heat_map, MemoryHeatMap):
            vector = heat_map.as_vector()
        else:
            vector = np.asarray(heat_map, dtype=np.float64)
        return self.eigenmemory.transform(vector[np.newaxis, :])

    def log_density(self, heat_map: Union[MemoryHeatMap, np.ndarray]) -> float:
        """Natural-log mixture density ``ln Pr(M)`` of one MHM."""
        self._require_fitted()
        return float(self.gmm.score_samples(self._reduce(heat_map))[0])

    def log10_density(self, heat_map: Union[MemoryHeatMap, np.ndarray]) -> float:
        """``log10 Pr(M)`` — the y-axis of Figures 7, 8 and 10."""
        return self.log_density(heat_map) / LN10

    def score_series(self, series: MapsLike) -> np.ndarray:
        """Natural-log densities for every MHM of a series."""
        self._require_fitted()
        reduced = self.eigenmemory.transform(_as_matrix(series))
        return self.gmm.score_samples(reduced)

    def log10_series(self, series: MapsLike) -> np.ndarray:
        return self.score_series(series) / LN10

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def threshold(self, p_percent: float) -> float:
        """θ_p in natural-log space."""
        self._require_fitted()
        return self.thresholds.threshold(p_percent)

    def log10_threshold(self, p_percent: float) -> float:
        return self.threshold(p_percent) / LN10

    def is_anomalous(
        self, heat_map: Union[MemoryHeatMap, np.ndarray], p_percent: float = 1.0
    ) -> bool:
        """The legitimacy test: density below θ_p ⇒ anomalous."""
        return self.log_density(heat_map) < self.threshold(p_percent)

    def classify_series(self, series: MapsLike, p_percent: float = 1.0) -> np.ndarray:
        """Boolean anomaly flags for every MHM of a series."""
        return self.thresholds.flag_series(self.score_series(series), p_percent)

    def as_scorer(self, p_percent: float = 1.0):
        """A secure-core hook: ``mhm -> (log_density, is_anomalous)``."""
        self._require_fitted()
        theta = self.threshold(p_percent)

        def scorer(heat_map: MemoryHeatMap) -> tuple[float, bool]:
            log_density = self.log_density(heat_map)
            return log_density, log_density < theta

        return scorer

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict:
        """The complete fitted state as a flat ``name -> ndarray`` dict.

        This is the canonical fit-result serialisation: :meth:`save`
        writes exactly these arrays to an ``.npz`` archive, and the
        pipeline's artifact cache stores them as a cache entry.
        """
        self._require_fitted()
        pca = self.eigenmemory.to_arrays()
        gmm = self.gmm.to_arrays()
        quantile_keys = np.array(self.thresholds.quantiles, dtype=np.float64)
        quantile_values = np.array(
            [self.thresholds.threshold(q) for q in quantile_keys], dtype=np.float64
        )
        return {
            "pca_mean": pca["mean"],
            "pca_components": pca["components"],
            "pca_eigenvalues": pca["eigenvalues"],
            "pca_ratio": pca["explained_variance_ratio"],
            "pca_all_eigenvalues": pca["all_eigenvalues"],
            "gmm_weights": gmm["weights"],
            "gmm_means": gmm["means"],
            "gmm_covariances": gmm["covariances"],
            "quantile_keys": quantile_keys,
            "quantile_values": quantile_values,
        }

    @classmethod
    def from_arrays(cls, arrays: dict) -> "MhmDetector":
        """Rebuild a fitted detector from :meth:`to_arrays` output."""
        detector = cls(
            num_eigenmemories=len(arrays["pca_components"]),
            num_gaussians=len(arrays["gmm_weights"]),
        )
        detector.eigenmemory = Eigenmemory.from_arrays(
            {
                "mean": arrays["pca_mean"],
                "components": arrays["pca_components"],
                "eigenvalues": arrays["pca_eigenvalues"],
                "explained_variance_ratio": arrays["pca_ratio"],
                "all_eigenvalues": arrays["pca_all_eigenvalues"],
            }
        )
        detector.gmm = GaussianMixtureModel.from_arrays(
            {
                "weights": arrays["gmm_weights"],
                "means": arrays["gmm_means"],
                "covariances": arrays["gmm_covariances"],
            }
        )
        detector.thresholds = ThresholdBank(
            thresholds={
                float(k): float(v)
                for k, v in zip(arrays["quantile_keys"], arrays["quantile_values"])
            }
        )
        detector.quantiles = tuple(detector.thresholds.quantiles)
        return detector

    def save(self, path) -> None:
        """Serialise the fitted detector to an ``.npz`` archive."""
        np.savez_compressed(path, **self.to_arrays())

    @classmethod
    def load(cls, path) -> "MhmDetector":
        with np.load(path) as data:
            return cls.from_arrays({name: data[name] for name in data.files})

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("MhmDetector has not been fitted")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.is_fitted:
            return "MhmDetector(unfitted)"
        return (
            f"MhmDetector(L'={self.num_eigenmemories_}, "
            f"J={self.num_gaussians}, thresholds={self.thresholds.quantiles})"
        )

"""Online (run-time) monitoring.

Figure 2 of the paper: "our anomaly detection framework periodically
checks the MHM ... The anomaly detector analyzes the MHM at the end of
the interval."  This module wires a trained detector into the secure
core so every interval is scored *as the simulation runs*, and adds
the operational layer a deployment needs on top of raw per-interval
verdicts:

* an **alarm policy** — raise an alarm after K consecutive abnormal
  intervals (K = 1 reproduces the paper's raw behaviour; K > 1 trades
  detection latency for false-alarm robustness);
* a **real-time budget check** — the modelled secure-core analysis
  time must fit inside the monitoring interval (Section 5.4's point:
  358 µs ≪ 10 ms);
* **graceful degradation** — an interval whose MHM cannot be scored
  (corrupted buffer, non-finite density, an injected
  ``monitor.verdict`` fault) is logged as a SKIPPED verdict and the
  stream continues, mirroring the paper's double-buffered Memometer:
  losing one interval's buffer must never kill the monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .. import faults, kernels, obs
from ..learn.detector import MhmDetector
from ..sim.platform import Platform

__all__ = ["Alarm", "MonitoringReport", "OnlineMonitor"]


@dataclass(frozen=True)
class Alarm:
    """A raised alarm: K consecutive intervals below theta_p."""

    interval_index: int  # interval whose verdict completed the run
    time_ns: int
    consecutive: int
    log_density: float


@dataclass
class MonitoringReport:
    """Outcome of one online-monitoring window.

    ``skipped`` counts intervals degraded to SKIPPED verdicts; their
    entries in ``log_densities`` are NaN.  ``kernels_backend`` records
    which ``repro.kernels`` backend scored the window (provenance for
    perf comparisons: reference-backend densities are oracle-grade but
    orders of magnitude slower).
    """

    intervals: int
    flagged: int
    alarms: list[Alarm] = field(default_factory=list)
    log_densities: np.ndarray = field(default_factory=lambda: np.empty(0))
    analysis_time_us: float = 0.0
    interval_us: float = 0.0
    skipped: int = 0
    skipped_intervals: list[int] = field(default_factory=list)
    kernels_backend: str = ""

    @property
    def scored(self) -> int:
        """Intervals that produced a real verdict (not SKIPPED)."""
        return self.intervals - self.skipped

    @property
    def flag_rate(self) -> float:
        return self.flagged / self.scored if self.scored else 0.0

    @property
    def analysis_budget_fraction(self) -> float:
        """Modelled secure-core analysis time / monitoring interval."""
        return self.analysis_time_us / self.interval_us if self.interval_us else 0.0

    def first_alarm_interval(self) -> Optional[int]:
        return self.alarms[0].interval_index if self.alarms else None


class OnlineMonitor:
    """Scores every new MHM on the secure core as the platform runs."""

    def __init__(
        self,
        platform: Platform,
        detector: MhmDetector,
        p_percent: float = 1.0,
        consecutive_for_alarm: int = 1,
    ):
        if consecutive_for_alarm < 1:
            raise ValueError("consecutive_for_alarm must be >= 1")
        if not detector.is_fitted:
            raise RuntimeError("detector must be fitted before monitoring")
        self.platform = platform
        self.detector = detector
        self.p_percent = p_percent
        self.consecutive_for_alarm = consecutive_for_alarm
        self._streak = 0
        self.alarms: list[Alarm] = []
        self.skipped_intervals: list[int] = []
        self._attached = False
        registry = obs.metrics()
        interval_us = platform.config.interval_ns / 1_000.0
        # Wall-clock scoring time per interval, bucketed against the
        # real-time budget: the paper's point is analysis ≪ interval.
        self._metric_analysis_us = registry.histogram(
            "monitor.analysis_wall_us",
            buckets=tuple(
                interval_us * f
                for f in (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0)
            ),
        )
        registry.gauge("monitor.interval_budget_us").set(interval_us)
        self._metric_scored = registry.counter("monitor.intervals_scored")
        self._metric_flagged = registry.counter("monitor.intervals_flagged")
        self._metric_skipped = registry.counter("monitor.intervals_skipped")
        self._metric_alarms = registry.counter("monitor.alarms")
        self._metric_overruns = registry.counter("monitor.budget_overruns")
        self._interval_us = interval_us
        self._tracer = obs.tracer()

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Hook the detector into the platform's secure core."""
        if self._attached:
            raise RuntimeError("monitor is already attached")
        theta = self.detector.threshold(self.p_percent)

        def scorer(heat_map):
            # Degradation contract: whatever happens to one interval's
            # MHM — an injected ``monitor.verdict`` fault, a scoring
            # crash, a non-finite density from corrupted counts — the
            # verdict degrades to SKIPPED and the stream continues.
            try:
                fault = faults.check(
                    "monitor.verdict", token=heat_map.interval_index
                )
                if fault is not None and fault.mode in ("corrupt", "truncate"):
                    raise faults.FaultError(
                        "monitor.verdict", "corrupted MHM interval buffer"
                    )
                with obs.Timer() as timer:
                    log_density = self.detector.log_density(heat_map)
                if not np.isfinite(log_density):
                    raise faults.FaultError(
                        "monitor.verdict", "non-finite interval density"
                    )
            except Exception as exc:
                self.skipped_intervals.append(heat_map.interval_index)
                self._metric_skipped.inc()
                self._tracer.instant(
                    "monitor.skipped",
                    self.platform.now,
                    category="monitor",
                    args={
                        "interval_index": heat_map.interval_index,
                        "reason": str(exc),
                    },
                )
                return None
            elapsed_us = timer.elapsed_us
            self._metric_analysis_us.observe(elapsed_us)
            self._metric_scored.inc()
            if elapsed_us > self._interval_us:
                self._metric_overruns.inc()
            anomalous = log_density < theta
            if anomalous:
                self._metric_flagged.inc()
                self._streak += 1
                if self._streak == self.consecutive_for_alarm:
                    self.alarms.append(
                        Alarm(
                            interval_index=heat_map.interval_index,
                            time_ns=self.platform.now,
                            consecutive=self._streak,
                            log_density=log_density,
                        )
                    )
                    self._metric_alarms.inc()
                    self._tracer.instant(
                        "monitor.alarm",
                        self.platform.now,
                        category="alarm",
                        args={
                            "interval_index": heat_map.interval_index,
                            "consecutive": self._streak,
                            "log_density": float(log_density),
                        },
                    )
            else:
                self._streak = 0
            return log_density, anomalous

        self.platform.secure_core.attach_detector(
            scorer,
            num_components=self.detector.num_eigenmemories_,
            num_gaussians=self.detector.num_gaussians,
        )
        self._attached = True

    def detach(self) -> None:
        self.platform.secure_core.detach_detector()
        self._attached = False

    # ------------------------------------------------------------------
    def monitor(self, intervals: int) -> MonitoringReport:
        """Run the platform for ``intervals`` with online scoring."""
        if not self._attached:
            self.attach()
        secure_core = self.platform.secure_core
        start = len(secure_core.online_results)
        alarm_start = len(self.alarms)
        with obs.span("monitor.run"):
            self.platform.run_intervals(intervals)
        results = secure_core.online_results[start:]

        analysis_us = results[0].analysis_time_us if results else 0.0
        return MonitoringReport(
            intervals=len(results),
            flagged=sum(1 for r in results if r.is_anomalous),
            alarms=self.alarms[alarm_start:],
            log_densities=np.array([r.log_density for r in results]),
            analysis_time_us=analysis_us,
            interval_us=self.platform.config.interval_ns / 1_000.0,
            skipped=sum(1 for r in results if r.skipped),
            skipped_intervals=[r.interval_index for r in results if r.skipped],
            kernels_backend=kernels.active_backend(),
        )

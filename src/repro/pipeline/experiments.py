"""Canonical experiment harness for the paper's evaluation section.

Each figure/table of Section 5 has a function here that builds the
workload, trains (or reuses) the reference detector and returns a
structured outcome that the benchmarks print and the examples plot.
Two scales are provided:

* ``PAPER_SCALE`` — the full Section 5.2 protocol (10 × 300 training
  MHMs, 500 validation MHMs, full-length scenarios);
* ``QUICK_SCALE`` — a reduced version for unit/integration tests.

Training is expensive, so reference artifacts are memoised per
(scale, config) within the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .. import kernels
from ..attacks.base import Attack
from ..core.series import HeatMapSeries
from ..learn.contexts import ContextDetector
from ..learn.detector import MhmDetector
from ..learn.metrics import detection_latency
from ..sim.platform import Platform, PlatformConfig
from .scenario import ScenarioResult, ScenarioRunner
from .training import (
    TrainingData,
    collect_training_data,
    train_context_detector,
    train_detector,
)

__all__ = [
    "ExperimentScale",
    "PAPER_SCALE",
    "QUICK_SCALE",
    "ReferenceArtifacts",
    "get_reference_artifacts",
    "clear_artifact_cache",
    "ScenarioOutcome",
    "run_scenario_experiment",
    "run_app_launch_experiment",
    "run_shellcode_experiment",
    "run_rootkit_experiment",
]

LN10 = float(np.log(10.0))


@dataclass(frozen=True)
class ExperimentScale:
    """Sizing of the training protocol and the scenario runs."""

    name: str
    training_runs: int
    intervals_per_run: int
    validation_intervals: int
    pre_attack_intervals: int
    attack_intervals: int
    post_attack_intervals: int
    em_restarts: int

    @property
    def total_training(self) -> int:
        return self.training_runs * self.intervals_per_run


#: Section 5.2/5.3 protocol: 3,000 training MHMs; Figure 7's 500-interval
#: trace (250 normal, launch, ~170 active, exit, rest normal); Figures 8
#: and 10 use 400-interval traces with injection after the 250th.
PAPER_SCALE = ExperimentScale(
    name="paper",
    training_runs=10,
    intervals_per_run=300,
    validation_intervals=500,
    pre_attack_intervals=250,
    attack_intervals=150,
    post_attack_intervals=100,
    em_restarts=10,
)

#: Reduced sizing for tests (same shapes, ~10x faster).
QUICK_SCALE = ExperimentScale(
    name="quick",
    training_runs=3,
    intervals_per_run=120,
    validation_intervals=120,
    pre_attack_intervals=40,
    attack_intervals=40,
    post_attack_intervals=20,
    em_restarts=3,
)


@dataclass
class ReferenceArtifacts:
    """Both trained modalities plus the data they were trained on."""

    scale: ExperimentScale
    config: PlatformConfig
    data: TrainingData
    detector: MhmDetector
    context_detector: ContextDetector


_ARTIFACT_CACHE: dict = {}


def get_reference_artifacts(
    scale: ExperimentScale = PAPER_SCALE,
    config: Optional[PlatformConfig] = None,
    seed: int = 0,
    use_cache: bool = True,
    cache=None,
) -> ReferenceArtifacts:
    """Train (or fetch the memoised) reference detector for a scale.

    ``use_cache`` controls the in-process memo.  ``cache`` optionally
    names an :class:`~repro.pipeline.cache.ArtifactCache` so the
    collected traces and the fitted detector persist (and are shared)
    across processes — a cache-warm call skips both the simulation and
    the training, with bit-identical results.
    """
    config = config or PlatformConfig()
    key = (scale.name, config, seed)
    if use_cache and key in _ARTIFACT_CACHE:
        return _ARTIFACT_CACHE[key]
    if cache is None:
        data = collect_training_data(
            config,
            runs=scale.training_runs,
            intervals_per_run=scale.intervals_per_run,
            validation_intervals=scale.validation_intervals,
            base_seed=100 + seed,
        )
        detector = train_detector(data, em_restarts=scale.em_restarts, seed=seed)
        context_detector = train_context_detector(data, seed=seed)
    else:
        from .stages import (
            collect_training_data_cached,
            context_material,
            detector_material,
            train_context_detector_cached,
            train_detector_cached,
            training_material,
        )

        data, _ = collect_training_data_cached(
            config,
            runs=scale.training_runs,
            intervals_per_run=scale.intervals_per_run,
            validation_intervals=scale.validation_intervals,
            base_seed=100 + seed,
            cache=cache,
        )
        material = training_material(
            config,
            scale.training_runs,
            scale.intervals_per_run,
            scale.validation_intervals,
            100 + seed,
        )
        detector_kwargs = {"em_restarts": scale.em_restarts, "seed": seed}
        detector, _ = train_detector_cached(
            lambda: data,
            detector_material(material, detector_kwargs),
            detector_kwargs,
            cache=cache,
        )
        context_kwargs = {"seed": seed}
        context_detector, _ = train_context_detector_cached(
            lambda: data,
            context_material(material, context_kwargs),
            context_kwargs,
            cache=cache,
        )
    artifacts = ReferenceArtifacts(
        scale=scale,
        config=config,
        data=data,
        detector=detector,
        context_detector=context_detector,
    )
    if use_cache:
        _ARTIFACT_CACHE[key] = artifacts
    return artifacts


def clear_artifact_cache() -> None:
    _ARTIFACT_CACHE.clear()


@dataclass
class ScenarioOutcome:
    """A scored scenario run: everything a figure needs.

    When the scoring path carries the second modality, ``context_scores``
    holds per-interval context anomaly scores (flag *above* threshold,
    unlike the MHM densities which flag below), ``context_thresholds``
    the calibrated θ bank, and ``context_drift_max`` /
    ``context_drift_bound`` the phase-drift channel's statistic and its
    clean-stream bound.
    """

    scenario: ScenarioResult
    log10_densities: np.ndarray
    log10_thresholds: dict[float, float]
    ground_truth: np.ndarray = field(default=None)  # type: ignore[assignment]
    context_scores: Optional[np.ndarray] = None
    context_thresholds: dict[float, float] = field(default_factory=dict)
    context_drift_max: float = 0.0
    context_drift_bound: float = float("inf")

    def __post_init__(self) -> None:
        if self.ground_truth is None:
            self.ground_truth = self.scenario.ground_truth()

    # ------------------------------------------------------------------
    # Derived quantities used by the figures' captions
    # ------------------------------------------------------------------
    def flags(self, p_percent: float) -> np.ndarray:
        theta = self.log10_thresholds[p_percent]
        return self.log10_densities < theta

    def pre_attack_false_positives(self, p_percent: float) -> int:
        """Abnormal verdicts before injection (paper: 0 at θ_0.5, 2 at θ_1)."""
        start = self.scenario.attack_interval
        return int(self.flags(p_percent)[:start].sum())

    def pre_attack_fpr(self, p_percent: float) -> float:
        start = self.scenario.attack_interval
        if start == 0:
            return 0.0
        return self.pre_attack_false_positives(p_percent) / start

    def attack_detection_rate(self, p_percent: float) -> float:
        """Fraction of attack-active intervals flagged."""
        mask = self.ground_truth
        if not mask.any():
            return 0.0
        return float(self.flags(p_percent)[mask].mean())

    def post_revert_fpr(self, p_percent: float) -> float:
        """FPR after the attack is reverted (Figure 7's recovery)."""
        stop = self.scenario.revert_interval
        if stop is None:
            return 0.0
        tail = self.flags(p_percent)[stop + 1 :]
        return float(tail.mean()) if tail.size else 0.0

    def detection_latency_intervals(self, p_percent: float) -> int:
        return detection_latency(
            self.flags(p_percent), self.scenario.attack_interval
        )

    def traffic_volumes(self) -> np.ndarray:
        return self.scenario.series.traffic_volumes()

    # ------------------------------------------------------------------
    # Context modality (syscall-distribution execution contexts)
    # ------------------------------------------------------------------
    @property
    def has_context(self) -> bool:
        return self.context_scores is not None and bool(self.context_thresholds)

    def context_flags(self, p_percent: float) -> np.ndarray:
        """Score-channel flags: context score *above* its θ is anomalous."""
        if not self.has_context:
            raise RuntimeError("outcome carries no context-modality scores")
        theta = self.context_thresholds[p_percent]
        return np.asarray(self.context_scores) > theta

    def context_pre_attack_fpr(self, p_percent: float) -> float:
        start = self.scenario.attack_interval
        if start == 0:
            return 0.0
        return float(self.context_flags(p_percent)[:start].mean())

    def context_detection_rate(self, p_percent: float) -> float:
        """Fraction of attack-active intervals the score channel flags."""
        mask = self.ground_truth
        if not mask.any():
            return 0.0
        return float(self.context_flags(p_percent)[mask].mean())

    @property
    def context_drift_exceeded(self) -> bool:
        """Phase-drift channel verdict: statistic above the clean bound."""
        return self.context_drift_max > self.context_drift_bound

    def summary(self) -> dict:
        return {
            "scenario": self.scenario.name,
            "intervals": len(self.scenario.series),
            "attack_interval": self.scenario.attack_interval,
            "revert_interval": self.scenario.revert_interval,
            "pre_fp_theta_0.5": self.pre_attack_false_positives(0.5),
            "pre_fp_theta_1": self.pre_attack_false_positives(1.0),
            "detection_rate_theta_0.5": self.attack_detection_rate(0.5),
            "detection_rate_theta_1": self.attack_detection_rate(1.0),
            "latency_theta_1": self.detection_latency_intervals(1.0),
        }


def run_scenario_experiment(
    attack: Attack,
    artifacts: ReferenceArtifacts,
    pre_intervals: Optional[int] = None,
    attack_intervals: Optional[int] = None,
    post_intervals: int = 0,
    scenario_seed: int = 999,
) -> ScenarioOutcome:
    """Run an attack on a *fresh* platform and score it with the
    reference detector (the platform seed differs from every training
    seed — the detector has never seen this boot)."""
    scale = artifacts.scale
    pre = scale.pre_attack_intervals if pre_intervals is None else pre_intervals
    during = scale.attack_intervals if attack_intervals is None else attack_intervals

    platform = Platform(artifacts.config.with_seed(scenario_seed))
    runner = ScenarioRunner(platform)
    result = runner.run(
        attack,
        pre_intervals=pre,
        attack_intervals=during,
        post_intervals=post_intervals,
    )
    detector = artifacts.detector
    context = artifacts.context_detector
    has_context = context is not None and result.syscalls is not None
    # Both modalities score through one fused kernel call.  At
    # pad_to=None the float64 path is bit-identical to the historical
    # detector.log10_series / context.score_series / drift_series
    # chain, so the conformance-matrix goldens are untouched.
    scorer = kernels.FleetScorer.from_detectors(
        detector, context if has_context else None
    )
    context_scores = None
    context_thresholds: dict[float, float] = {}
    context_drift_max = 0.0
    context_drift_bound = float("inf")
    if has_context:
        interval_indices = (
            np.arange(len(result.syscalls)) + result.start_interval_index
        )
        scores = scorer.score(
            result.series.matrix(),
            syscalls=result.syscalls,
            interval_indices=interval_indices,
        )
        context_scores = scores.context_scores
        context_thresholds = {
            q: context.threshold(q) for q in context.thresholds_
        }
        cumulative = np.cumsum(scores.context_residuals, axis=0)
        context_drift_max = (
            float(np.abs(cumulative).max()) if cumulative.size else 0.0
        )
        context_drift_bound = context.drift_bound_
    else:
        scores = scorer.score(result.series.matrix())
    return ScenarioOutcome(
        scenario=result,
        log10_densities=scores.log_densities / LN10,
        log10_thresholds={
            q: detector.log10_threshold(q) for q in detector.thresholds.quantiles
        },
        context_scores=context_scores,
        context_thresholds=context_thresholds,
        context_drift_max=context_drift_max,
        context_drift_bound=context_drift_bound,
    )


def run_app_launch_experiment(
    artifacts: ReferenceArtifacts, scenario_seed: int = 999
) -> ScenarioOutcome:
    """Figure 7: qsort launched, later exited (500-interval trace)."""
    from ..attacks.app_launch import AppLaunchAttack

    scale = artifacts.scale
    return run_scenario_experiment(
        AppLaunchAttack(),
        artifacts,
        post_intervals=scale.post_attack_intervals,
        scenario_seed=scenario_seed,
    )


def run_shellcode_experiment(
    artifacts: ReferenceArtifacts, scenario_seed: int = 999
) -> ScenarioOutcome:
    """Figure 8: ASLR-disabling shellcode kills bitcount (no recovery)."""
    from ..attacks.shellcode import ShellcodeAttack

    return run_scenario_experiment(
        ShellcodeAttack(), artifacts, scenario_seed=scenario_seed
    )


def run_rootkit_experiment(
    artifacts: ReferenceArtifacts,
    scenario_seed: int = 999,
    extra_latency_ns: int = 25_000,
) -> ScenarioOutcome:
    """Figures 9 + 10: LKM hijacks ``read``; volume stays normal, MHM
    densities show the load spike and intermittent post-hijack drift."""
    from ..attacks.rootkit import SyscallHijackRootkit

    return run_scenario_experiment(
        SyscallHijackRootkit(extra_latency_ns=extra_latency_ns),
        artifacts,
        scenario_seed=scenario_seed,
    )

"""Cache-aware pipeline stages: simulate, train, replay.

The expensive stages of the evaluation pipeline — collecting normal
MHM traces, fitting the eigenmemory/GMM detector, and simulating an
attack scenario — are pure functions of ``(configuration, seeds)``.
This module wraps each of them with optional memoisation in an
:class:`~repro.pipeline.cache.ArtifactCache`:

* :func:`collect_training_data_cached` — normal MHM traces;
* :func:`train_detector_cached` — fitted PCA basis + GMM parameters
  + calibrated thresholds (via ``MhmDetector.to_arrays``);
* :func:`run_scenario_cached` — a full attack-scenario MHM series
  with its event timeline.

Every function returns ``(value, hit)`` so callers can report cache
effectiveness.  When ``cache`` is ``None`` the plain uncached path
runs.  On a miss the output is round-tripped through the exact arrays
that were stored, so cached and freshly-computed results are
bit-identical by construction — the determinism test suite holds the
pipeline to that.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from .. import faults, kernels
from ..attacks import (
    AppLaunchAttack,
    InterruptStormAttack,
    MimicryShellcodeAttack,
    ShellcodeAttack,
    SlowDriftExfiltration,
    SmmShadowAttack,
    SyscallHijackRootkit,
)
from ..core.mhm import MemoryHeatMap
from ..core.series import HeatMapSeries
from ..core.spec import HeatMapSpec
from ..learn.contexts import ContextDetector
from ..learn.detector import MhmDetector
from ..sim.platform import Platform, PlatformConfig
from .cache import ArtifactCache
from .scenario import ScenarioEvent, ScenarioResult, ScenarioRunner
from .training import TrainingData, collect_training_data, train_detector

__all__ = [
    "SCENARIOS",
    "scenario_reversible",
    "TRAINING_STAGE",
    "DETECTOR_STAGE",
    "CONTEXT_STAGE",
    "SCENARIO_STAGE",
    "make_attack",
    "series_to_arrays",
    "series_from_arrays",
    "training_material",
    "detector_material",
    "context_material",
    "scenario_material",
    "collect_training_data_cached",
    "train_detector_cached",
    "train_context_detector_cached",
    "run_scenario_cached",
]

#: Attack constructors by scenario name (the CLI, runner job model,
#: fleet simulator and conformance matrix all share this registry).
#: Registering a scenario here is what makes the conformance matrix
#: score it — and the matrix refuses to build unless the attack class
#: declares an expected outcome per detector column, so additions
#: cannot land undeclared (see docs/attacks.md).
SCENARIOS = {
    # The paper's Section 5.3 scenarios.
    "app-launch": AppLaunchAttack,
    "shellcode": ShellcodeAttack,
    "rootkit": SyscallHijackRootkit,
    # Adversarial corpus: designed blind-spot probes.
    "mimicry": MimicryShellcodeAttack,
    "slow-drift": SlowDriftExfiltration,
    "interrupt-storm": InterruptStormAttack,
    "smm-shadow": SmmShadowAttack,
}


def scenario_reversible(scenario: str) -> bool:
    """Whether a registered scenario's default attack can be reverted.

    Probes the class without touching a platform (construction is
    side-effect free by contract) — callers like the fleet-spec builder
    use this instead of constructing throwaway attacks.
    """
    return make_attack(scenario).reversible


TRAINING_STAGE = "training"
DETECTOR_STAGE = "detector"
CONTEXT_STAGE = "context"
SCENARIO_STAGE = "scenario"


def make_attack(scenario: str, params: Optional[Mapping] = None):
    """Instantiate a registered attack with constructor overrides."""
    try:
        factory = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return factory(**dict(params or {}))


# ----------------------------------------------------------------------
# Series <-> arrays
# ----------------------------------------------------------------------
def series_to_arrays(series: HeatMapSeries, prefix: str) -> Dict[str, np.ndarray]:
    """Flatten a series into cache-storable arrays (exact int64 counts)."""
    return {
        f"{prefix}_counts": series.matrix(dtype=np.int64),
        f"{prefix}_interval_index": np.array(
            [m.interval_index for m in series], dtype=np.int64
        ),
        f"{prefix}_start_time_ns": np.array(
            [m.start_time_ns for m in series], dtype=np.int64
        ),
    }


def series_from_arrays(
    arrays: Mapping[str, np.ndarray], prefix: str, spec: HeatMapSpec
) -> HeatMapSeries:
    series = HeatMapSeries(spec)
    for row, index, start in zip(
        arrays[f"{prefix}_counts"],
        arrays[f"{prefix}_interval_index"],
        arrays[f"{prefix}_start_time_ns"],
    ):
        series.append(
            MemoryHeatMap(
                spec, row, interval_index=int(index), start_time_ns=int(start)
            )
        )
    return series


# ----------------------------------------------------------------------
# Cache-key material
# ----------------------------------------------------------------------
def training_material(
    config: PlatformConfig,
    runs: int,
    intervals_per_run: int,
    validation_intervals: int,
    base_seed: int,
) -> dict:
    return {
        "config": config,
        "runs": runs,
        "intervals_per_run": intervals_per_run,
        "validation_intervals": validation_intervals,
        "base_seed": base_seed,
        # Stored-array-set version: entries now carry the per-interval
        # syscall matrices alongside the MHM series, so pre-capture
        # cache entries (which lack those arrays) must not be reused.
        "capture": "syscalls-v1",
    }


def detector_material(train_material: dict, detector_kwargs: Mapping) -> dict:
    # The kernels backend is a genuine input of the detector-fitting
    # stage: reference and vectorized scoring agree only to rounding,
    # and EM amplifies last-ulp differences across iterations — so the
    # two backends must not share fitted-detector cache entries.  The
    # simulation stages stay backend-agnostic: MHM counts are integer
    # and bit-identical under both backends by construction.
    return {
        "train": train_material,
        "detector": dict(detector_kwargs),
        "kernels_backend": kernels.active_backend(),
    }


def scenario_material(
    config: PlatformConfig,
    scenario: str,
    attack_params: Mapping,
    pre_intervals: int,
    attack_intervals: int,
    post_intervals: int,
    scenario_seed: int,
    inject_offset_fraction: float,
) -> dict:
    return {
        "config": config,
        "scenario": scenario,
        "attack": dict(attack_params),
        "pre_intervals": pre_intervals,
        "attack_intervals": attack_intervals,
        "post_intervals": post_intervals,
        "scenario_seed": scenario_seed,
        "inject_offset_fraction": inject_offset_fraction,
        "capture": "syscalls-v1",
    }


def context_material(train_material: dict, context_kwargs: Mapping) -> dict:
    """Cache-key material for a fitted context detector.

    Mirrors :func:`detector_material`: the kernels backend is an input
    (the nearest-context distance kernel's vectorized and scalar
    backends agree only to rounding, and quantile thresholds sit
    directly on those distances).
    """
    return {
        "train": train_material,
        "context": dict(context_kwargs),
        "kernels_backend": kernels.active_backend(),
    }


# ----------------------------------------------------------------------
# Stages
# ----------------------------------------------------------------------
def collect_training_data_cached(
    config: PlatformConfig,
    runs: int,
    intervals_per_run: int,
    validation_intervals: int,
    base_seed: int,
    cache: Optional[ArtifactCache] = None,
) -> Tuple[TrainingData, bool]:
    """Collect (or load) the normal training/validation MHM traces."""
    if cache is None:
        data = collect_training_data(
            config,
            runs=runs,
            intervals_per_run=intervals_per_run,
            validation_intervals=validation_intervals,
            base_seed=base_seed,
        )
        return data, False

    def compute() -> Dict[str, np.ndarray]:
        data = collect_training_data(
            config,
            runs=runs,
            intervals_per_run=intervals_per_run,
            validation_intervals=validation_intervals,
            base_seed=base_seed,
        )
        return {
            **series_to_arrays(data.training, "training"),
            **series_to_arrays(data.validation, "validation"),
            # Per-run matrices share one shape by construction, so they
            # stack into a single exact int64 (runs, T, V) array.
            "training_syscalls": np.stack(data.training_syscalls),
            "validation_syscalls": data.validation_syscalls,
        }

    material = training_material(
        config, runs, intervals_per_run, validation_intervals, base_seed
    )
    arrays, hit = cache.fetch(TRAINING_STAGE, material, compute)
    spec = config.spec
    data = TrainingData(
        training=series_from_arrays(arrays, "training", spec),
        validation=series_from_arrays(arrays, "validation", spec),
        training_syscalls=[
            np.asarray(run, dtype=np.int64)
            for run in arrays["training_syscalls"]
        ],
        validation_syscalls=np.asarray(
            arrays["validation_syscalls"], dtype=np.int64
        ),
    )
    return data, hit


def train_detector_cached(
    data_provider: Callable[[], TrainingData],
    material: dict,
    detector_kwargs: Mapping,
    cache: Optional[ArtifactCache] = None,
    fault_token: str = "-",
) -> Tuple[MhmDetector, bool]:
    """Train (or load) a detector.

    ``data_provider`` is only invoked on a cache miss, so a detector
    hit skips the training-data stage entirely.  ``material`` must
    identify the training data (use :func:`detector_material` over the
    output of :func:`training_material`).

    Injection site ``stages.fit`` guards the training compute;
    ``fault_token`` should identify the invocation (the runner passes
    ``job-name@attempt`` so retried attempts roll fresh fault
    decisions).
    """
    kwargs = dict(detector_kwargs)
    if cache is None:
        faults.check("stages.fit", token=fault_token)
        return train_detector(data_provider(), **kwargs), False

    def compute() -> Dict[str, np.ndarray]:
        faults.check("stages.fit", token=fault_token)
        return train_detector(data_provider(), **kwargs).to_arrays()

    arrays, hit = cache.fetch(DETECTOR_STAGE, material, compute)
    return MhmDetector.from_arrays(arrays), hit


def train_context_detector_cached(
    data_provider: Callable[[], TrainingData],
    material: dict,
    context_kwargs: Mapping,
    cache: Optional[ArtifactCache] = None,
    fault_token: str = "-",
) -> Tuple[ContextDetector, bool]:
    """Train (or load) the syscall-context detector (second modality).

    Same contract as :func:`train_detector_cached`: ``data_provider``
    runs only on a miss, ``material`` must come from
    :func:`context_material`, and the ``stages.fit`` injection site
    guards the training compute.
    """
    from .training import train_context_detector

    kwargs = dict(context_kwargs)
    if cache is None:
        faults.check("stages.fit", token=fault_token)
        return train_context_detector(data_provider(), **kwargs), False

    def compute() -> Dict[str, np.ndarray]:
        faults.check("stages.fit", token=fault_token)
        return train_context_detector(data_provider(), **kwargs).to_arrays()

    arrays, hit = cache.fetch(CONTEXT_STAGE, material, compute)
    return ContextDetector.from_arrays(arrays), hit


def run_scenario_cached(
    config: PlatformConfig,
    scenario: str,
    attack_params: Optional[Mapping] = None,
    pre_intervals: int = 40,
    attack_intervals: int = 40,
    post_intervals: int = 0,
    scenario_seed: int = 999,
    inject_offset_fraction: float = 0.3,
    cache: Optional[ArtifactCache] = None,
    fault_token: str = "-",
) -> Tuple[ScenarioResult, bool]:
    """Simulate (or load) one attack scenario on a fresh platform.

    Injection site ``stages.replay`` guards the simulation compute
    (see :func:`train_detector_cached` for the ``fault_token``
    convention).
    """
    attack_params = dict(attack_params or {})

    def simulate() -> ScenarioResult:
        faults.check("stages.replay", token=fault_token)
        platform = Platform(config.with_seed(scenario_seed))
        return ScenarioRunner(platform).run(
            make_attack(scenario, attack_params),
            pre_intervals=pre_intervals,
            attack_intervals=attack_intervals,
            post_intervals=post_intervals,
            inject_offset_fraction=inject_offset_fraction,
        )

    if cache is None:
        return simulate(), False

    def compute() -> Dict[str, np.ndarray]:
        result = simulate()
        return {
            **series_to_arrays(result.series, "series"),
            "series_syscalls": result.syscalls,
            "start_interval_index": np.array(
                result.start_interval_index, dtype=np.int64
            ),
            "name": np.array(result.name),
            "event_labels": np.array(
                [e.label for e in result.events], dtype=np.str_
            ),
            "event_times": np.array(
                [e.time_ns for e in result.events], dtype=np.int64
            ),
            "event_intervals": np.array(
                [e.interval_index for e in result.events], dtype=np.int64
            ),
        }

    material = scenario_material(
        config,
        scenario,
        attack_params,
        pre_intervals,
        attack_intervals,
        post_intervals,
        scenario_seed,
        inject_offset_fraction,
    )
    arrays, hit = cache.fetch(SCENARIO_STAGE, material, compute)
    result = ScenarioResult(
        name=str(arrays["name"]),
        series=series_from_arrays(arrays, "series", config.spec),
        syscalls=np.asarray(arrays["series_syscalls"], dtype=np.int64),
        start_interval_index=int(arrays["start_interval_index"]),
        events=[
            ScenarioEvent(label=str(label), time_ns=int(t), interval_index=int(i))
            for label, t, i in zip(
                arrays["event_labels"],
                arrays["event_times"],
                arrays["event_intervals"],
            )
        ],
    )
    return result, hit

"""Training-data collection and detector training (Section 5.2).

The paper's protocol: "we ran the system and collected 10 sets of
normal MHMs each of which spans 3 seconds", giving 3,000 MHMs at the
10 ms monitoring interval; a further normal set is collected for
threshold calibration.  :func:`collect_training_data` reproduces this
with independently seeded platform boots (each run is a fresh boot, as
in the paper), and :func:`train_detector` applies the learning recipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.series import HeatMapSeries
from ..learn.detector import MhmDetector
from ..obs import span
from ..sim.platform import Platform, PlatformConfig

__all__ = ["TrainingData", "collect_training_data", "train_detector"]


@dataclass
class TrainingData:
    """Normal MHMs for learning plus a held-out set for θ calibration."""

    training: HeatMapSeries
    validation: HeatMapSeries

    @property
    def num_training(self) -> int:
        return len(self.training)

    @property
    def num_validation(self) -> int:
        return len(self.validation)


def collect_training_data(
    config: Optional[PlatformConfig] = None,
    runs: int = 10,
    intervals_per_run: int = 300,
    validation_intervals: int = 500,
    base_seed: int = 100,
) -> TrainingData:
    """Collect normal MHMs from repeated fresh boots.

    Parameters
    ----------
    config:
        Platform configuration (defaults to the paper's prototype).
    runs, intervals_per_run:
        Number of independent runs and MHMs per run.  The paper's
        defaults: 10 runs × 3 s / 10 ms = 300 MHMs each → 3,000 total.
    validation_intervals:
        Size of the separate normal set used for threshold calibration
        ("we collected another set of normal MHMs").
    base_seed:
        Seeds run ``i`` with ``base_seed + i``; the validation run uses
        ``base_seed + runs``.
    """
    if runs < 1 or intervals_per_run < 1:
        raise ValueError("runs and intervals_per_run must be positive")
    config = config or PlatformConfig()

    training = HeatMapSeries(config.spec)
    with span("collect.training"):
        for run in range(runs):
            with span("collect.training_run"):
                platform = Platform(config.with_seed(base_seed + run))
                training.extend(platform.collect_intervals(intervals_per_run))

    with span("collect.validation"):
        validation_platform = Platform(config.with_seed(base_seed + runs))
        validation = validation_platform.collect_intervals(validation_intervals)
    return TrainingData(training=training, validation=validation)


def train_detector(
    data: TrainingData,
    num_eigenmemories: Optional[int] = None,
    variance_target: float = 0.9999,
    num_gaussians: int = 5,
    em_restarts: int = 10,
    seed: int = 0,
    **detector_kwargs,
) -> MhmDetector:
    """Train the paper's detector on collected normal data.

    Defaults follow Section 5.2 exactly: automatic L′ at 99.99 %
    retained variance, J = 5, 10 EM restarts, θ calibrated on the
    held-out validation set.
    """
    detector = MhmDetector(
        num_eigenmemories=num_eigenmemories,
        variance_target=variance_target,
        num_gaussians=num_gaussians,
        em_restarts=em_restarts,
        seed=seed,
        **detector_kwargs,
    )
    with span("train.fit"):
        return detector.fit(data.training, data.validation)

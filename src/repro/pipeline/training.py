"""Training-data collection and detector training (Section 5.2).

The paper's protocol: "we ran the system and collected 10 sets of
normal MHMs each of which spans 3 seconds", giving 3,000 MHMs at the
10 ms monitoring interval; a further normal set is collected for
threshold calibration.  :func:`collect_training_data` reproduces this
with independently seeded platform boots (each run is a fresh boot, as
in the paper), and :func:`train_detector` applies the learning recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.series import HeatMapSeries
from ..learn.contexts import ContextDetector
from ..learn.detector import MhmDetector
from ..obs import span
from ..sim.platform import Platform, PlatformConfig

__all__ = [
    "TrainingData",
    "collect_training_data",
    "train_detector",
    "train_context_detector",
]


@dataclass
class TrainingData:
    """Normal MHMs for learning plus a held-out set for θ calibration.

    ``training_syscalls`` holds one per-run syscall-frequency matrix per
    fresh boot (the context modality's drift channel needs per-run
    phase alignment, so runs stay separate); ``validation_syscalls`` is
    the held-out boot's matrix, aligned row-for-row with
    ``validation``.
    """

    training: HeatMapSeries
    validation: HeatMapSeries
    training_syscalls: List[np.ndarray] = field(default_factory=list)
    validation_syscalls: Optional[np.ndarray] = None

    @property
    def num_training(self) -> int:
        return len(self.training)

    @property
    def num_validation(self) -> int:
        return len(self.validation)

    @property
    def has_syscalls(self) -> bool:
        return bool(self.training_syscalls) and self.validation_syscalls is not None


def collect_training_data(
    config: Optional[PlatformConfig] = None,
    runs: int = 10,
    intervals_per_run: int = 300,
    validation_intervals: int = 500,
    base_seed: int = 100,
) -> TrainingData:
    """Collect normal MHMs from repeated fresh boots.

    Parameters
    ----------
    config:
        Platform configuration (defaults to the paper's prototype).
    runs, intervals_per_run:
        Number of independent runs and MHMs per run.  The paper's
        defaults: 10 runs × 3 s / 10 ms = 300 MHMs each → 3,000 total.
    validation_intervals:
        Size of the separate normal set used for threshold calibration
        ("we collected another set of normal MHMs").
    base_seed:
        Seeds run ``i`` with ``base_seed + i``; the validation run uses
        ``base_seed + runs``.
    """
    if runs < 1 or intervals_per_run < 1:
        raise ValueError("runs and intervals_per_run must be positive")
    config = config or PlatformConfig()

    training = HeatMapSeries(config.spec)
    training_syscalls: List[np.ndarray] = []
    with span("collect.training"):
        for run in range(runs):
            with span("collect.training_run"):
                platform = Platform(config.with_seed(base_seed + run))
                training.extend(platform.collect_intervals(intervals_per_run))
                training_syscalls.append(platform.syscall_matrix())

    with span("collect.validation"):
        validation_platform = Platform(config.with_seed(base_seed + runs))
        validation = validation_platform.collect_intervals(validation_intervals)
        validation_syscalls = validation_platform.syscall_matrix()
    return TrainingData(
        training=training,
        validation=validation,
        training_syscalls=training_syscalls,
        validation_syscalls=validation_syscalls,
    )


def train_detector(
    data: TrainingData,
    num_eigenmemories: Optional[int] = None,
    variance_target: float = 0.9999,
    num_gaussians: int = 5,
    em_restarts: int = 10,
    seed: int = 0,
    **detector_kwargs,
) -> MhmDetector:
    """Train the paper's detector on collected normal data.

    Defaults follow Section 5.2 exactly: automatic L′ at 99.99 %
    retained variance, J = 5, 10 EM restarts, θ calibrated on the
    held-out validation set.
    """
    detector = MhmDetector(
        num_eigenmemories=num_eigenmemories,
        variance_target=variance_target,
        num_gaussians=num_gaussians,
        em_restarts=em_restarts,
        seed=seed,
        **detector_kwargs,
    )
    with span("train.fit"):
        return detector.fit(data.training, data.validation)


def train_context_detector(
    data: TrainingData,
    num_contexts: int = 12,
    seed: int = 0,
    **detector_kwargs,
) -> ContextDetector:
    """Train the syscall-distribution context detector (second modality).

    Requires :class:`TrainingData` collected with syscall capture (any
    data from :func:`collect_training_data`); raises otherwise rather
    than silently fitting on nothing.
    """
    if not data.has_syscalls:
        raise ValueError(
            "TrainingData carries no syscall matrices; collect it via "
            "collect_training_data (or thread syscall capture through "
            "your custom collection path)"
        )
    detector = ContextDetector(
        num_contexts=num_contexts, seed=seed, **detector_kwargs
    )
    with span("train.fit_contexts"):
        return detector.fit(data.training_syscalls, data.validation_syscalls)

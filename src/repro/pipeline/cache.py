"""Content-addressed on-disk cache for expensive pipeline artifacts.

The evaluation grid re-simulates MHM traces and re-trains detectors
from scratch on every run, which dominates wall-clock time.  Every one
of those stages is a pure function of ``(configuration, seed)``, so
their outputs can be memoised on disk and shared between runs — and
between the worker processes of :mod:`repro.pipeline.runner`.

Design:

* **Content addressing** — an entry's key is the SHA-256 of a
  canonical JSON rendering of everything that determines the output:
  the stage name, the full platform/training configuration, every
  seed, and a code-relevant version (package version + cache schema).
  Changing any of those yields a different key; stale entries are
  never *wrongly* reused, merely orphaned.
* **Atomic writes** — entries are serialised to a temporary file in
  the destination directory and published with :func:`os.replace`, so
  concurrent writers (parallel runner workers racing on the same key)
  can never interleave bytes; readers see either the old complete
  entry or the new complete entry.
* **Corruption detection** — the entry file embeds a SHA-256 digest
  of its payload.  Truncated, bit-flipped or foreign files fail
  verification and are treated as a miss (and unlinked), never a
  crash: the caller recomputes and rewrites.
* **Namespacing** — all entries live under ``<root>/repro-artifacts``
  so ``clear()`` (and the ``repro cache clear`` CLI) removes only this
  package's files even when the root directory is shared.

The default root is ``$REPRO_CACHE_DIR``, falling back to
``~/.cache/repro`` (honouring ``$XDG_CACHE_HOME``).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from .. import faults, obs

__all__ = ["ArtifactCache", "CACHE_NAMESPACE", "CACHE_SCHEMA_VERSION", "default_cache_root"]

#: Subdirectory of the cache root owned by this package; ``clear()``
#: never touches anything outside it.
CACHE_NAMESPACE = "repro-artifacts"

#: Bumped whenever the serialised artifact layout (not the package
#: version) changes incompatibly; part of every cache key.
CACHE_SCHEMA_VERSION = 1

#: Entry file layout: magic, SHA-256 of payload, payload (npz bytes).
_MAGIC = b"RPROART1"
_DIGEST_BYTES = 32


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro`` (XDG-aware)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def _canonical_key(material: dict) -> str:
    payload = json.dumps(
        obs.to_jsonable(material), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactCache:
    """A content-addressed store of named-array bundles.

    Parameters
    ----------
    root:
        Cache root directory (default: :func:`default_cache_root`).
        Entries live under ``<root>/repro-artifacts``.

    Entries are ``dict[str, np.ndarray]`` bundles addressed by
    ``(stage, key)`` where ``key`` comes from :meth:`key`.  Per-stage
    session hit/miss counts are kept on the instance and mirrored into
    the live :mod:`repro.obs` metrics registry (``cache.<stage>.hit``
    / ``.miss`` / ``.corrupt``).
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.dir = self.root / CACHE_NAMESPACE
        self.session_hits: Dict[str, int] = {}
        self.session_misses: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    def key(self, stage: str, material: dict) -> str:
        """Stable hash of everything that determines a stage's output.

        ``material`` is rendered through :func:`repro.obs.to_jsonable`
        (dataclasses, numpy scalars and tuples all canonicalise), so a
        :class:`~repro.sim.platform.PlatformConfig` can be passed
        directly.  The package version and cache schema version are
        always mixed in.
        """
        from .. import __version__

        return _canonical_key(
            {
                "stage": stage,
                "version": __version__,
                "schema": CACHE_SCHEMA_VERSION,
                "material": material,
            }
        )

    def entry_path(self, stage: str, key: str) -> Path:
        return self.dir / stage / key[:2] / f"{key}.art"

    # ------------------------------------------------------------------
    # Get / put
    # ------------------------------------------------------------------
    def get(self, stage: str, key: str) -> Optional[Dict[str, np.ndarray]]:
        """Load an entry, or ``None`` on miss *or* corruption.

        A corrupt entry (truncation, bit flips, foreign file) is
        unlinked and reported as a miss — callers always fall back to
        recomputation, never crash.

        Injection site ``cache.read`` (token: the entry key) fires
        *before* the file is touched, so a plan's decision for a key is
        independent of whether the entry exists yet — required for
        serial ≡ parallel fault determinism.  ``corrupt``/``truncate``
        faults damage the in-memory blob and exercise this exact
        degradation path.
        """
        fault = faults.check("cache.read", token=key)
        path = self.entry_path(stage, key)
        try:
            blob = path.read_bytes()
        except OSError:
            self._record(stage, hit=False)
            return None
        if fault is not None:
            blob = faults.mangle(fault, blob, "cache.read", key)
        try:
            arrays = self._decode(blob)
        except Exception:
            self._record(stage, hit=False, corrupt=True)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self._record(stage, hit=True)
        return arrays

    def put(self, stage: str, key: str, arrays: Dict[str, np.ndarray]) -> Path:
        """Atomically publish an entry (tmp file + ``os.replace``).

        Injection site ``cache.write`` (token: the entry key):
        ``corrupt``/``truncate`` faults damage the blob *as stored* —
        the entry checksum then fails on the next read, which must
        degrade to a recompute, never a crash or a torn result.
        """
        fault = faults.check("cache.write", token=key)
        path = self.entry_path(stage, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        payload = buffer.getvalue()
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        if fault is not None:
            blob = faults.mangle(fault, blob, "cache.write", key)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def fetch(
        self,
        stage: str,
        material: dict,
        compute: Callable[[], Dict[str, np.ndarray]],
    ) -> tuple:
        """Memoise ``compute()`` under ``(stage, material)``.

        Returns ``(arrays, hit)`` where ``hit`` says whether the disk
        entry was used.
        """
        key = self.key(stage, material)
        arrays = self.get(stage, key)
        if arrays is not None:
            return arrays, True
        arrays = {name: np.asarray(value) for name, value in compute().items()}
        self.put(stage, key, arrays)
        return arrays, False

    @staticmethod
    def _decode(blob: bytes) -> Dict[str, np.ndarray]:
        if len(blob) < len(_MAGIC) + _DIGEST_BYTES:
            raise ValueError("cache entry too short")
        if blob[: len(_MAGIC)] != _MAGIC:
            raise ValueError("bad cache entry magic")
        digest = blob[len(_MAGIC) : len(_MAGIC) + _DIGEST_BYTES]
        payload = blob[len(_MAGIC) + _DIGEST_BYTES :]
        if hashlib.sha256(payload).digest() != digest:
            raise ValueError("cache entry checksum mismatch")
        with np.load(io.BytesIO(payload), allow_pickle=False) as data:
            return {name: data[name] for name in data.files}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Entry counts and byte totals per stage, plus session counts."""
        stages: Dict[str, dict] = {}
        total_entries = 0
        total_bytes = 0
        if self.dir.is_dir():
            for stage_dir in sorted(p for p in self.dir.iterdir() if p.is_dir()):
                entries = 0
                size = 0
                for entry in stage_dir.rglob("*.art"):
                    entries += 1
                    size += entry.stat().st_size
                stages[stage_dir.name] = {"entries": entries, "bytes": size}
                total_entries += entries
                total_bytes += size
        return {
            "root": str(self.root),
            "namespace": CACHE_NAMESPACE,
            "stages": stages,
            "entries": total_entries,
            "bytes": total_bytes,
            "session_hits": dict(self.session_hits),
            "session_misses": dict(self.session_misses),
        }

    def clear(self) -> int:
        """Remove this package's namespace directory (and nothing else).

        Returns the number of entries removed.
        """
        removed = 0
        if self.dir.is_dir():
            removed = sum(1 for _ in self.dir.rglob("*.art"))
            shutil.rmtree(self.dir)
        return removed

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _record(self, stage: str, hit: bool, corrupt: bool = False) -> None:
        book = self.session_hits if hit else self.session_misses
        book[stage] = book.get(stage, 0) + 1
        registry = obs.metrics()
        registry.counter(f"cache.{stage}.{'hit' if hit else 'miss'}").inc()
        if corrupt:
            registry.counter(f"cache.{stage}.corrupt").inc()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactCache(root={str(self.root)!r})"

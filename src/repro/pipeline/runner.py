"""Parallel experiment runner with deterministic fan-out.

The paper's evaluation is a grid of *independent* runs — scenarios ×
attacks × ablation axes (granularity δ, L′, J, training-set size) —
but executing them serially and re-simulating from scratch every time
is the wall-clock bottleneck of the reproduction.  This module turns
the grid into explicit jobs and executes them:

* **in parallel** across worker processes
  (:class:`concurrent.futures.ProcessPoolExecutor`, ``--jobs N``), and
* **memoised** through the content-addressed artifact cache of
  :mod:`repro.pipeline.cache`, so warm reruns skip the simulation and
  training stages entirely.

Determinism contract
--------------------
Results are **bit-identical** regardless of worker count, scheduling
order, or cache temperature:

* every :class:`ExperimentJob` carries its *own* explicit seeds; jobs
  never touch shared RNG state;
* grid builders derive those seeds up front via
  ``numpy.random.SeedSequence.spawn`` — job *i*'s seeds are a pure
  function of the root seed and *i*, independent of how many workers
  later execute the grid or in which order jobs finish;
* cache entries round-trip through exact integer/float64 arrays, and
  the fresh-compute path reads back the same arrays it stored.

``tests/pipeline/test_runner_determinism.py`` asserts all of this.

Observability
-------------
With :mod:`repro.obs` enabled, a run records ``runner.jobs.launched``
/ ``completed`` / ``failed`` counters, aggregate ``runner.cache.hit``
/ ``miss`` counters, per-stage wall-clock histograms
(``runner.stage.<stage>``), and one trace event per completed job.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..learn.detector import MhmDetector
from ..learn.metrics import detection_latency, roc_auc_from_scores
from ..sim.platform import Platform, PlatformConfig
from .cache import ArtifactCache
from .experiments import ExperimentScale
from .stages import (
    DETECTOR_STAGE,
    SCENARIO_STAGE,
    SCENARIOS,
    TRAINING_STAGE,
    collect_training_data_cached,
    detector_material,
    run_scenario_cached,
    train_detector_cached,
    training_material,
)

__all__ = [
    "TrainSpec",
    "ExperimentJob",
    "JobResult",
    "ExperimentRunner",
    "expand_grid",
    "build_grid_jobs",
    "run_job",
]

LN10 = float(np.log(10.0))


# ----------------------------------------------------------------------
# Job model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrainSpec:
    """The training protocol of one job (mirrors the paper's recipe)."""

    runs: int = 3
    intervals_per_run: int = 120
    validation_intervals: int = 120
    base_seed: int = 100

    @property
    def total(self) -> int:
        return self.runs * self.intervals_per_run


def _freeze(params: Optional[Mapping]) -> tuple:
    """A mapping as a sorted tuple of pairs (hashable + picklable)."""
    return tuple(sorted(dict(params or {}).items()))


@dataclass(frozen=True)
class ExperimentJob:
    """One independent unit of the evaluation grid.

    A job is entirely self-describing — configuration and every seed
    it uses are stored on the job itself, so executing it is a pure
    function and its result is independent of which worker runs it.
    """

    name: str
    config: PlatformConfig
    train: TrainSpec
    scenario: str = "app-launch"
    attack_params: tuple = ()
    detector_params: tuple = ()
    pre_intervals: int = 40
    attack_intervals: int = 40
    post_intervals: int = 0
    scenario_seed: int = 999
    inject_offset_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; "
                f"choose from {sorted(SCENARIOS)}"
            )

    @property
    def detector_kwargs(self) -> dict:
        return dict(self.detector_params)


@dataclass
class JobResult:
    """Everything one executed job produced.

    Detector parameters travel as the exact fitted arrays so the
    determinism suite can compare runs bit-for-bit and drivers can
    rebuild the detector (:meth:`detector`) without retraining.
    """

    job: ExperimentJob
    num_cells: int
    num_eigenmemories: int
    detector_arrays: Dict[str, np.ndarray]
    log10_densities: np.ndarray
    log10_thresholds: Dict[float, float]
    verdicts: Dict[float, np.ndarray]
    ground_truth: np.ndarray
    attack_interval: int
    revert_interval: Optional[int]
    summary: dict
    cache_hits: Dict[str, int] = field(default_factory=dict)
    cache_misses: Dict[str, int] = field(default_factory=dict)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    computed_stages: Tuple[str, ...] = ()

    def detector(self) -> MhmDetector:
        """Rebuild the job's fitted detector (no retraining)."""
        return MhmDetector.from_arrays(self.detector_arrays)

    def fingerprint(self) -> str:
        """SHA-256 over detector parameters, densities and verdicts —
        two runs are bit-identical iff their fingerprints match."""
        import hashlib

        digest = hashlib.sha256()
        for name in sorted(self.detector_arrays):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(self.detector_arrays[name]).tobytes())
        digest.update(np.ascontiguousarray(self.log10_densities).tobytes())
        for quantile in sorted(self.verdicts):
            digest.update(repr(quantile).encode())
            digest.update(np.ascontiguousarray(self.verdicts[quantile]).tobytes())
        return digest.hexdigest()


# ----------------------------------------------------------------------
# Grid expansion and seed derivation
# ----------------------------------------------------------------------
def expand_grid(axes: Mapping[str, Sequence]) -> list:
    """Cartesian product of named axes, in deterministic order.

    ``expand_grid({"a": [1, 2], "b": ["x"]})`` →
    ``[{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]``.  Axis order follows
    the mapping's insertion order; the last axis varies fastest.
    """
    if not axes:
        return [{}]
    names = list(axes)
    return [
        dict(zip(names, values))
        for values in itertools.product(*(axes[name] for name in names))
    ]


def build_grid_jobs(
    scenarios: Sequence[str],
    scale: ExperimentScale,
    root_seed: int = 0,
    replicas: int = 1,
    base_config: Optional[PlatformConfig] = None,
    config_axes: Optional[Mapping[str, Sequence]] = None,
    detector_params: Optional[Mapping] = None,
    train_overrides: Optional[Mapping] = None,
) -> list:
    """Expand a scenario/ablation grid into seeded jobs.

    Per-job seeds are derived with ``SeedSequence(root_seed).spawn``:
    each configuration point gets a spawned child (training base seed
    + detector seed), and each of its scenario × replica cells gets a
    grandchild (scenario seed).  Jobs that share a configuration point
    therefore share one detector — and one cache entry — while every
    replica sees a fresh, never-trained-on platform boot.
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    base_config = base_config or PlatformConfig()
    config_points = expand_grid(config_axes or {})
    train_overrides = dict(train_overrides or {})
    detector_overrides = dict(detector_params or {})

    config_children = np.random.SeedSequence(root_seed).spawn(len(config_points))
    jobs = []
    for point, child in zip(config_points, config_children):
        config = replace(base_config, **point) if point else base_config
        base_seed, detector_seed = (
            int(word) for word in child.generate_state(2, np.uint32)
        )
        train = TrainSpec(
            runs=train_overrides.get("runs", scale.training_runs),
            intervals_per_run=train_overrides.get(
                "intervals_per_run", scale.intervals_per_run
            ),
            validation_intervals=train_overrides.get(
                "validation_intervals", scale.validation_intervals
            ),
            base_seed=base_seed,
        )
        det_params = {
            "em_restarts": scale.em_restarts,
            "seed": detector_seed,
            **detector_overrides,
        }
        cells = [
            (scenario, replica)
            for scenario in scenarios
            for replica in range(replicas)
        ]
        cell_children = child.spawn(len(cells))
        point_label = "".join(
            f",{axis}={value}" for axis, value in sorted(point.items())
        )
        for (scenario, replica), cell_child in zip(cells, cell_children):
            scenario_seed = int(cell_child.generate_state(1, np.uint32)[0])
            jobs.append(
                ExperimentJob(
                    name=f"{scenario}{point_label},r{replica}",
                    config=config,
                    train=train,
                    scenario=scenario,
                    detector_params=_freeze(det_params),
                    pre_intervals=scale.pre_attack_intervals,
                    attack_intervals=scale.attack_intervals,
                    post_intervals=(
                        scale.post_attack_intervals
                        if scenario == "app-launch"
                        else 0
                    ),
                    scenario_seed=scenario_seed,
                )
            )
    return jobs


# ----------------------------------------------------------------------
# Job execution
# ----------------------------------------------------------------------
def run_job(
    job: ExperimentJob,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> JobResult:
    """Execute one job: train (or load), simulate (or load), score.

    Safe to call from worker processes — it touches no global state
    beyond the on-disk cache, whose writes are atomic.
    """
    cache = ArtifactCache(cache_dir) if use_cache else None
    stage_seconds: Dict[str, float] = {}
    computed: list = []
    hits: Dict[str, int] = {}
    misses: Dict[str, int] = {}

    def record(stage: str, hit: bool) -> None:
        (hits if hit else misses)[stage] = (hits if hit else misses).get(stage, 0) + 1
        if not hit:
            computed.append(stage)

    train = job.train
    train_mat = training_material(
        job.config,
        train.runs,
        train.intervals_per_run,
        train.validation_intervals,
        train.base_seed,
    )

    data_hit: Dict[str, bool] = {}

    def data_provider():
        started = time.perf_counter()
        data, hit = collect_training_data_cached(
            job.config,
            runs=train.runs,
            intervals_per_run=train.intervals_per_run,
            validation_intervals=train.validation_intervals,
            base_seed=train.base_seed,
            cache=cache,
        )
        stage_seconds[TRAINING_STAGE] = time.perf_counter() - started
        data_hit["hit"] = hit
        return data

    started = time.perf_counter()
    with obs.span(f"runner.stage.{DETECTOR_STAGE}"):
        detector, detector_hit = train_detector_cached(
            data_provider,
            detector_material(train_mat, job.detector_kwargs),
            job.detector_kwargs,
            cache=cache,
        )
    stage_seconds[DETECTOR_STAGE] = time.perf_counter() - started
    record(DETECTOR_STAGE, detector_hit)
    if "hit" in data_hit:
        record(TRAINING_STAGE, data_hit["hit"])

    started = time.perf_counter()
    with obs.span(f"runner.stage.{SCENARIO_STAGE}"):
        result, scenario_hit = run_scenario_cached(
            job.config,
            job.scenario,
            attack_params=dict(job.attack_params),
            pre_intervals=job.pre_intervals,
            attack_intervals=job.attack_intervals,
            post_intervals=job.post_intervals,
            scenario_seed=job.scenario_seed,
            inject_offset_fraction=job.inject_offset_fraction,
            cache=cache,
        )
    stage_seconds[SCENARIO_STAGE] = time.perf_counter() - started
    record(SCENARIO_STAGE, scenario_hit)

    started = time.perf_counter()
    with obs.span("runner.stage.score"):
        densities = detector.score_series(result.series)
        truth = result.ground_truth()
        attack_interval = result.attack_interval
        quantiles = tuple(detector.thresholds.quantiles)
        verdicts = {
            q: densities < detector.threshold(q) for q in quantiles
        }
        summary: dict = {
            "name": job.name,
            "scenario": job.scenario,
            "intervals": len(result.series),
            "attack_interval": attack_interval,
            "revert_interval": result.revert_interval,
            "num_cells": job.config.spec.num_cells,
            "num_eigenmemories": detector.num_eigenmemories_,
            "auc": roc_auc_from_scores(-densities, truth),
        }
        for q in quantiles:
            flags = verdicts[q]
            tag = f"theta_{q:g}"
            summary[f"pre_fpr_{tag}"] = (
                float(flags[:attack_interval].mean()) if attack_interval else 0.0
            )
            summary[f"detection_rate_{tag}"] = (
                float(flags[truth].mean()) if truth.any() else 0.0
            )
            summary[f"latency_{tag}"] = detection_latency(flags, attack_interval)
    stage_seconds["score"] = time.perf_counter() - started

    return JobResult(
        job=job,
        num_cells=job.config.spec.num_cells,
        num_eigenmemories=detector.num_eigenmemories_,
        detector_arrays=detector.to_arrays(),
        log10_densities=densities / LN10,
        log10_thresholds={q: detector.log10_threshold(q) for q in quantiles},
        verdicts=verdicts,
        ground_truth=truth,
        attack_interval=attack_interval,
        revert_interval=result.revert_interval,
        summary=summary,
        cache_hits=hits,
        cache_misses=misses,
        stage_seconds=stage_seconds,
        computed_stages=tuple(computed),
    )


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class ExperimentRunner:
    """Executes a list of jobs, serially or across worker processes.

    Parameters
    ----------
    jobs:
        Worker-process count.  ``1`` (default) runs in-process — exact
        same results, and live :mod:`repro.obs` spans cover the inner
        stages too.
    cache_dir:
        Artifact-cache root (default ``~/.cache/repro`` /
        ``$REPRO_CACHE_DIR``).
    use_cache:
        ``False`` disables the on-disk cache entirely.

    Results are always returned in job order, whatever the completion
    order.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.use_cache = use_cache

    def run(self, experiment_jobs: Sequence[ExperimentJob]) -> list:
        experiment_jobs = list(experiment_jobs)
        registry = obs.metrics()
        tracer = obs.tracer()
        start_ns = time.perf_counter_ns()
        registry.counter("runner.jobs.launched").inc(len(experiment_jobs))

        results: list = [None] * len(experiment_jobs)
        with registry.span("runner.run"):
            if self.jobs == 1 or len(experiment_jobs) <= 1:
                for index, job in enumerate(experiment_jobs):
                    results[index] = self._guarded(run_job, job, registry)
            else:
                workers = min(self.jobs, len(experiment_jobs))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(run_job, job, self.cache_dir, self.use_cache)
                        for job in experiment_jobs
                    ]
                    for index, future in enumerate(futures):
                        results[index] = self._guarded(
                            lambda *_: future.result(),
                            experiment_jobs[index],
                            registry,
                        )

        for result in results:
            registry.counter("runner.jobs.completed").inc()
            registry.counter("runner.cache.hit").inc(sum(result.cache_hits.values()))
            registry.counter("runner.cache.miss").inc(
                sum(result.cache_misses.values())
            )
            for stage, seconds in result.stage_seconds.items():
                registry.timer(f"runner.stage.{stage}").observe(seconds * 1e6)
            tracer.instant(
                f"runner.job:{result.job.name}",
                time_ns=time.perf_counter_ns() - start_ns,
                category="runner",
                args={
                    "scenario": result.job.scenario,
                    "computed": list(result.computed_stages),
                    "auc": result.summary.get("auc"),
                },
            )
        return results

    def _guarded(self, call, job: ExperimentJob, registry) -> JobResult:
        try:
            return call(job, self.cache_dir, self.use_cache)
        except Exception:
            registry.counter("runner.jobs.failed").inc()
            raise

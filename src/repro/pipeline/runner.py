"""Parallel experiment runner with deterministic fan-out.

The paper's evaluation is a grid of *independent* runs — scenarios ×
attacks × ablation axes (granularity δ, L′, J, training-set size) —
but executing them serially and re-simulating from scratch every time
is the wall-clock bottleneck of the reproduction.  This module turns
the grid into explicit jobs and executes them:

* **in parallel** across worker processes
  (:class:`concurrent.futures.ProcessPoolExecutor`, ``--jobs N``), and
* **memoised** through the content-addressed artifact cache of
  :mod:`repro.pipeline.cache`, so warm reruns skip the simulation and
  training stages entirely.

Determinism contract
--------------------
Results are **bit-identical** regardless of worker count, scheduling
order, or cache temperature:

* every :class:`ExperimentJob` carries its *own* explicit seeds; jobs
  never touch shared RNG state;
* grid builders derive those seeds up front via
  ``numpy.random.SeedSequence.spawn`` — job *i*'s seeds are a pure
  function of the root seed and *i*, independent of how many workers
  later execute the grid or in which order jobs finish;
* cache entries round-trip through exact integer/float64 arrays, and
  the fresh-compute path reads back the same arrays it stored.

``tests/pipeline/test_runner_determinism.py`` asserts all of this.

Fault tolerance
---------------
The grid must not die with its weakest job.  Each job gets bounded
retries with seeded exponential backoff, an optional per-attempt
wall-clock timeout, and crashed workers are replaced (a hard worker
death breaks a :class:`~concurrent.futures.ProcessPoolExecutor`; the
runner builds a fresh pool and re-queues the interrupted attempts).  A
run returns every *completed* :class:`JobResult` plus a structured
failure manifest (:meth:`ExperimentRunner.failure_manifest`,
``failures.json`` via :meth:`ExperimentRunner.write_failure_manifest`)
instead of raising; ``fail_fast=True`` restores raise-on-first-failure
semantics.  Fault drills are driven by :mod:`repro.faults` plans
(``fault_plan=``), which travel to worker processes and make the whole
failure story deterministic — see ``docs/faults.md``.

Observability
-------------
With :mod:`repro.obs` enabled, a run records ``runner.jobs.launched``
/ ``completed`` / ``failed`` counters, ``runner.retries`` /
``runner.job_failures`` fault-handling counters, aggregate
``runner.cache.hit`` / ``miss`` counters, per-stage wall-clock
histograms (``runner.stage.<stage>``), one trace event per completed
job and one per retry / terminal failure.
"""

from __future__ import annotations

import heapq
import itertools
import json
import time
import traceback as _traceback
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import wait as _futures_wait
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import faults, obs
from ..faults import FaultPlan, uniform_hash
from ..learn.detector import MhmDetector
from ..learn.metrics import detection_latency, roc_auc_from_scores
from ..sim.platform import Platform, PlatformConfig
from .cache import ArtifactCache
from .experiments import ExperimentScale
from .stages import (
    DETECTOR_STAGE,
    SCENARIO_STAGE,
    SCENARIOS,
    TRAINING_STAGE,
    collect_training_data_cached,
    detector_material,
    run_scenario_cached,
    train_detector_cached,
    training_material,
)

__all__ = [
    "TrainSpec",
    "ExperimentJob",
    "JobResult",
    "JobFailure",
    "JobFailedError",
    "ExperimentRunner",
    "expand_grid",
    "build_grid_jobs",
    "run_job",
]

LN10 = float(np.log(10.0))


# ----------------------------------------------------------------------
# Job model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrainSpec:
    """The training protocol of one job (mirrors the paper's recipe)."""

    runs: int = 3
    intervals_per_run: int = 120
    validation_intervals: int = 120
    base_seed: int = 100

    @property
    def total(self) -> int:
        return self.runs * self.intervals_per_run


def _freeze(params: Optional[Mapping]) -> tuple:
    """A mapping as a sorted tuple of pairs (hashable + picklable)."""
    return tuple(sorted(dict(params or {}).items()))


@dataclass(frozen=True)
class ExperimentJob:
    """One independent unit of the evaluation grid.

    A job is entirely self-describing — configuration and every seed
    it uses are stored on the job itself, so executing it is a pure
    function and its result is independent of which worker runs it.
    """

    name: str
    config: PlatformConfig
    train: TrainSpec
    scenario: str = "app-launch"
    attack_params: tuple = ()
    detector_params: tuple = ()
    pre_intervals: int = 40
    attack_intervals: int = 40
    post_intervals: int = 0
    scenario_seed: int = 999
    inject_offset_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; "
                f"choose from {sorted(SCENARIOS)}"
            )

    @property
    def detector_kwargs(self) -> dict:
        return dict(self.detector_params)


@dataclass
class JobResult:
    """Everything one executed job produced.

    Detector parameters travel as the exact fitted arrays so the
    determinism suite can compare runs bit-for-bit and drivers can
    rebuild the detector (:meth:`detector`) without retraining.
    """

    job: ExperimentJob
    num_cells: int
    num_eigenmemories: int
    detector_arrays: Dict[str, np.ndarray]
    log10_densities: np.ndarray
    log10_thresholds: Dict[float, float]
    verdicts: Dict[float, np.ndarray]
    ground_truth: np.ndarray
    attack_interval: int
    revert_interval: Optional[int]
    summary: dict
    cache_hits: Dict[str, int] = field(default_factory=dict)
    cache_misses: Dict[str, int] = field(default_factory=dict)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    computed_stages: Tuple[str, ...] = ()

    def detector(self) -> MhmDetector:
        """Rebuild the job's fitted detector (no retraining)."""
        return MhmDetector.from_arrays(self.detector_arrays)

    def fingerprint(self) -> str:
        """SHA-256 over detector parameters, densities and verdicts —
        two runs are bit-identical iff their fingerprints match."""
        import hashlib

        digest = hashlib.sha256()
        for name in sorted(self.detector_arrays):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(self.detector_arrays[name]).tobytes())
        digest.update(np.ascontiguousarray(self.log10_densities).tobytes())
        for quantile in sorted(self.verdicts):
            digest.update(repr(quantile).encode())
            digest.update(np.ascontiguousarray(self.verdicts[quantile]).tobytes())
        return digest.hexdigest()


@dataclass(frozen=True)
class JobFailure:
    """Terminal failure of one grid job — a ``failures.json`` entry.

    Deliberately contains no wall-clock fields: a failure manifest is
    part of the runner's determinism contract (serial and parallel runs
    of the same seeded fault plan produce identical manifests).
    """

    job_index: int
    job_name: str
    scenario: str
    attempts: int
    error_type: str
    message: str
    site: Optional[str] = None
    traceback: str = ""

    def to_dict(self) -> dict:
        return asdict(self)


class JobFailedError(RuntimeError):
    """Raised in ``fail_fast`` mode when a job exhausts its retries."""

    def __init__(self, failure: JobFailure):
        super().__init__(
            f"job {failure.job_name!r} failed after {failure.attempts} "
            f"attempt(s): {failure.error_type}: {failure.message}"
        )
        self.failure = failure


# ----------------------------------------------------------------------
# Grid expansion and seed derivation
# ----------------------------------------------------------------------
def expand_grid(axes: Mapping[str, Sequence]) -> list:
    """Cartesian product of named axes, in deterministic order.

    ``expand_grid({"a": [1, 2], "b": ["x"]})`` →
    ``[{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]``.  Axis order follows
    the mapping's insertion order; the last axis varies fastest.
    """
    if not axes:
        return [{}]
    names = list(axes)
    return [
        dict(zip(names, values))
        for values in itertools.product(*(axes[name] for name in names))
    ]


def build_grid_jobs(
    scenarios: Sequence[str],
    scale: ExperimentScale,
    root_seed: int = 0,
    replicas: int = 1,
    base_config: Optional[PlatformConfig] = None,
    config_axes: Optional[Mapping[str, Sequence]] = None,
    detector_params: Optional[Mapping] = None,
    train_overrides: Optional[Mapping] = None,
) -> list:
    """Expand a scenario/ablation grid into seeded jobs.

    Per-job seeds are derived with ``SeedSequence(root_seed).spawn``:
    each configuration point gets a spawned child (training base seed
    + detector seed), and each of its scenario × replica cells gets a
    grandchild (scenario seed).  Jobs that share a configuration point
    therefore share one detector — and one cache entry — while every
    replica sees a fresh, never-trained-on platform boot.
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    base_config = base_config or PlatformConfig()
    config_points = expand_grid(config_axes or {})
    train_overrides = dict(train_overrides or {})
    detector_overrides = dict(detector_params or {})

    config_children = np.random.SeedSequence(root_seed).spawn(len(config_points))
    jobs = []
    for point, child in zip(config_points, config_children):
        config = replace(base_config, **point) if point else base_config
        base_seed, detector_seed = (
            int(word) for word in child.generate_state(2, np.uint32)
        )
        train = TrainSpec(
            runs=train_overrides.get("runs", scale.training_runs),
            intervals_per_run=train_overrides.get(
                "intervals_per_run", scale.intervals_per_run
            ),
            validation_intervals=train_overrides.get(
                "validation_intervals", scale.validation_intervals
            ),
            base_seed=base_seed,
        )
        det_params = {
            "em_restarts": scale.em_restarts,
            "seed": detector_seed,
            **detector_overrides,
        }
        cells = [
            (scenario, replica)
            for scenario in scenarios
            for replica in range(replicas)
        ]
        cell_children = child.spawn(len(cells))
        point_label = "".join(
            f",{axis}={value}" for axis, value in sorted(point.items())
        )
        for (scenario, replica), cell_child in zip(cells, cell_children):
            scenario_seed = int(cell_child.generate_state(1, np.uint32)[0])
            jobs.append(
                ExperimentJob(
                    name=f"{scenario}{point_label},r{replica}",
                    config=config,
                    train=train,
                    scenario=scenario,
                    detector_params=_freeze(det_params),
                    pre_intervals=scale.pre_attack_intervals,
                    attack_intervals=scale.attack_intervals,
                    post_intervals=(
                        scale.post_attack_intervals
                        if scenario == "app-launch"
                        else 0
                    ),
                    scenario_seed=scenario_seed,
                )
            )
    return jobs


# ----------------------------------------------------------------------
# Job execution
# ----------------------------------------------------------------------
def run_job(
    job: ExperimentJob,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    attempt: int = 0,
) -> JobResult:
    """Execute one job: train (or load), simulate (or load), score.

    Safe to call from worker processes — it touches no global state
    beyond the on-disk cache, whose writes are atomic.

    ``attempt`` is the retry ordinal; it feeds the fault-injection
    token ``"<job name>@<attempt>"`` (sites ``runner.job``,
    ``stages.fit``, ``stages.replay``), so a probabilistic fault that
    kills attempt 0 rolls a fresh, independent decision for attempt 1.
    """
    fault_token = f"{job.name}@{attempt}"
    faults.check("runner.job", token=fault_token)
    cache = ArtifactCache(cache_dir) if use_cache else None
    stage_seconds: Dict[str, float] = {}
    computed: list = []
    hits: Dict[str, int] = {}
    misses: Dict[str, int] = {}

    def record(stage: str, hit: bool) -> None:
        (hits if hit else misses)[stage] = (hits if hit else misses).get(stage, 0) + 1
        if not hit:
            computed.append(stage)

    train = job.train
    train_mat = training_material(
        job.config,
        train.runs,
        train.intervals_per_run,
        train.validation_intervals,
        train.base_seed,
    )

    data_hit: Dict[str, bool] = {}

    def data_provider():
        started = time.perf_counter()
        data, hit = collect_training_data_cached(
            job.config,
            runs=train.runs,
            intervals_per_run=train.intervals_per_run,
            validation_intervals=train.validation_intervals,
            base_seed=train.base_seed,
            cache=cache,
        )
        stage_seconds[TRAINING_STAGE] = time.perf_counter() - started
        data_hit["hit"] = hit
        return data

    started = time.perf_counter()
    with obs.span(f"runner.stage.{DETECTOR_STAGE}"):
        detector, detector_hit = train_detector_cached(
            data_provider,
            detector_material(train_mat, job.detector_kwargs),
            job.detector_kwargs,
            cache=cache,
            fault_token=fault_token,
        )
    stage_seconds[DETECTOR_STAGE] = time.perf_counter() - started
    record(DETECTOR_STAGE, detector_hit)
    if "hit" in data_hit:
        record(TRAINING_STAGE, data_hit["hit"])

    started = time.perf_counter()
    with obs.span(f"runner.stage.{SCENARIO_STAGE}"):
        result, scenario_hit = run_scenario_cached(
            job.config,
            job.scenario,
            attack_params=dict(job.attack_params),
            pre_intervals=job.pre_intervals,
            attack_intervals=job.attack_intervals,
            post_intervals=job.post_intervals,
            scenario_seed=job.scenario_seed,
            inject_offset_fraction=job.inject_offset_fraction,
            cache=cache,
            fault_token=fault_token,
        )
    stage_seconds[SCENARIO_STAGE] = time.perf_counter() - started
    record(SCENARIO_STAGE, scenario_hit)

    started = time.perf_counter()
    with obs.span("runner.stage.score"):
        densities = detector.score_series(result.series)
        truth = result.ground_truth()
        attack_interval = result.attack_interval
        quantiles = tuple(detector.thresholds.quantiles)
        verdicts = {
            q: densities < detector.threshold(q) for q in quantiles
        }
        summary: dict = {
            "name": job.name,
            "scenario": job.scenario,
            "intervals": len(result.series),
            "attack_interval": attack_interval,
            "revert_interval": result.revert_interval,
            "num_cells": job.config.spec.num_cells,
            "num_eigenmemories": detector.num_eigenmemories_,
            "auc": roc_auc_from_scores(-densities, truth),
        }
        for q in quantiles:
            flags = verdicts[q]
            tag = f"theta_{q:g}"
            summary[f"pre_fpr_{tag}"] = (
                float(flags[:attack_interval].mean()) if attack_interval else 0.0
            )
            summary[f"detection_rate_{tag}"] = (
                float(flags[truth].mean()) if truth.any() else 0.0
            )
            summary[f"latency_{tag}"] = detection_latency(flags, attack_interval)
    stage_seconds["score"] = time.perf_counter() - started

    return JobResult(
        job=job,
        num_cells=job.config.spec.num_cells,
        num_eigenmemories=detector.num_eigenmemories_,
        detector_arrays=detector.to_arrays(),
        log10_densities=densities / LN10,
        log10_thresholds={q: detector.log10_threshold(q) for q in quantiles},
        verdicts=verdicts,
        ground_truth=truth,
        attack_interval=attack_interval,
        revert_interval=result.revert_interval,
        summary=summary,
        cache_hits=hits,
        cache_misses=misses,
        stage_seconds=stage_seconds,
        computed_stages=tuple(computed),
    )


# ----------------------------------------------------------------------
# Guarded execution (shared by the serial path and worker processes)
# ----------------------------------------------------------------------
def _execute_job(
    job: ExperimentJob,
    cache_dir: Optional[str],
    use_cache: bool,
    attempt: int,
    fault_plan: Optional[FaultPlan],
) -> tuple:
    """Run one attempt, never letting an exception cross the boundary.

    Returns ``("ok", JobResult)`` or ``("err", payload)`` where
    ``payload`` is a plain dict with the fields of a manifest entry.
    Catching — and formatting the traceback — *at the raise site* keeps
    error payloads byte-identical between in-process execution and
    worker processes, which is what makes serial and parallel failure
    manifests comparable.
    """
    try:
        with faults.injected(fault_plan):
            return "ok", run_job(job, cache_dir, use_cache, attempt=attempt)
    except Exception as exc:
        return "err", {
            "error_type": type(exc).__name__,
            "message": str(exc),
            "site": getattr(exc, "site", None),
            "traceback": "".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
        }


def _timeout_payload(timeout: float) -> dict:
    return {
        "error_type": "JobTimeout",
        "message": f"job exceeded the per-job wall-clock timeout ({timeout:g}s)",
        "site": None,
        "traceback": "",
    }


def _crash_payload() -> dict:
    return {
        "error_type": "WorkerCrash",
        "message": "worker process died mid-job; pool replaced",
        "site": None,
        "traceback": "",
    }


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class ExperimentRunner:
    """Executes a list of jobs, serially or across worker processes.

    Parameters
    ----------
    jobs:
        Worker-process count.  ``1`` (default) runs in-process — exact
        same results, and live :mod:`repro.obs` spans cover the inner
        stages too.
    cache_dir:
        Artifact-cache root (default ``~/.cache/repro`` /
        ``$REPRO_CACHE_DIR``).
    use_cache:
        ``False`` disables the on-disk cache entirely.
    max_retries:
        Re-attempts per job after its first failure (so a job runs at
        most ``max_retries + 1`` times).
    job_timeout:
        Per-attempt wall-clock budget in seconds.  In worker processes
        the attempt is abandoned at the deadline (the stuck worker is
        retired with its pool); in-process (``jobs=1``) the budget is
        enforced after the attempt returns — a degenerate but
        deterministic equivalent, since the attempt cannot be
        preempted.
    fail_fast:
        Raise :class:`JobFailedError` on the first terminal failure
        instead of degrading to the failure manifest.
    backoff_base / backoff_cap:
        Retry backoff: attempt *k* waits
        ``min(base · 2^k · (0.5 + jitter), cap)`` seconds, with jitter
        drawn purely from ``(retry_seed, job name, k)`` — reruns wait
        identically.
    retry_seed:
        Seed of the backoff jitter stream.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` installed around every
        attempt (including inside worker processes) for fault drills.

    A run **returns completed results only** (in job order); terminal
    failures are collected on :attr:`job_failures` and in
    :meth:`failure_manifest` rather than raised.  A grid is therefore
    never aborted by its weakest job unless ``fail_fast`` asks for
    exactly that.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        max_retries: int = 2,
        job_timeout: Optional[float] = None,
        fail_fast: bool = False,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        retry_seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be > 0")
        self.jobs = jobs
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.use_cache = use_cache
        self.max_retries = max_retries
        self.job_timeout = job_timeout
        self.fail_fast = fail_fast
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.retry_seed = retry_seed
        self.fault_plan = fault_plan
        #: Terminal failures of the last :meth:`run` (job order).
        self.job_failures: List[JobFailure] = []
        #: Retries performed during the last :meth:`run`.
        self.retries: int = 0
        self._job_retries: Dict[str, int] = {}
        self._total_jobs: int = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, experiment_jobs: Sequence[ExperimentJob]) -> list:
        experiment_jobs = list(experiment_jobs)
        registry = obs.metrics()
        tracer = obs.tracer()
        log = obs.logger()
        start_ns = time.perf_counter_ns()
        registry.counter("runner.jobs.launched").inc(len(experiment_jobs))
        if log.enabled:
            log.event(
                "runner.grid.start",
                jobs=len(experiment_jobs),
                workers=self.jobs,
            )
        self.job_failures = []
        self.retries = 0
        self._job_retries: Dict[str, int] = {}
        self._total_jobs = len(experiment_jobs)

        completed: Dict[int, JobResult] = {}
        with registry.span("runner.run"):
            if self.jobs == 1 or len(experiment_jobs) <= 1:
                self._run_serial(experiment_jobs, completed, registry, tracer)
            else:
                self._run_parallel(experiment_jobs, completed, registry, tracer)

        self.job_failures.sort(key=lambda failure: failure.job_index)
        results = [completed[index] for index in sorted(completed)]
        if log.enabled:
            log.event(
                "runner.grid.done",
                completed=len(results),
                failed=len(self.job_failures),
                retries=self.retries,
            )
        for result in results:
            if log.enabled:
                log.event(
                    "runner.job.completed",
                    job=result.job.name,
                    attempts=self._job_retries.get(result.job.name, 0) + 1,
                )
            registry.counter("runner.jobs.completed").inc()
            registry.counter("runner.cache.hit").inc(sum(result.cache_hits.values()))
            registry.counter("runner.cache.miss").inc(
                sum(result.cache_misses.values())
            )
            for stage, seconds in result.stage_seconds.items():
                registry.timer(f"runner.stage.{stage}").observe(seconds * 1e6)
            tracer.instant(
                f"runner.job:{result.job.name}",
                time_ns=time.perf_counter_ns() - start_ns,
                category="runner",
                args={
                    "scenario": result.job.scenario,
                    "computed": list(result.computed_stages),
                    "auc": result.summary.get("auc"),
                },
            )
        return results

    def failure_manifest(self) -> dict:
        """Structured summary of the last run's failures.

        Deterministic for a given grid + fault plan: no wall-clock
        fields, failures in job order.
        """
        return {
            "schema": 1,
            "total_jobs": self._total_jobs,
            "completed": self._total_jobs - len(self.job_failures),
            "failed": len(self.job_failures),
            "retries": self.retries,
            "max_retries": self.max_retries,
            "job_timeout": self.job_timeout,
            "failures": [failure.to_dict() for failure in self.job_failures],
        }

    def write_failure_manifest(self, path) -> Path:
        """Write :meth:`failure_manifest` as JSON (``failures.json``)."""
        path = Path(path)
        path.write_text(
            json.dumps(self.failure_manifest(), indent=2, sort_keys=True) + "\n"
        )
        return path

    # ------------------------------------------------------------------
    # Serial execution
    # ------------------------------------------------------------------
    def _run_serial(self, jobs_list, completed, registry, tracer) -> None:
        for index, job in enumerate(jobs_list):
            attempt = 0
            while True:
                started = time.monotonic()
                status, payload = _execute_job(
                    job, self.cache_dir, self.use_cache, attempt, self.fault_plan
                )
                elapsed = time.monotonic() - started
                if status == "ok" and (
                    self.job_timeout is None or elapsed <= self.job_timeout
                ):
                    completed[index] = payload
                    break
                if status == "ok":
                    payload = _timeout_payload(self.job_timeout)
                if attempt >= self.max_retries:
                    self._record_failure(
                        registry, tracer, index, job, attempt + 1, payload
                    )
                    break
                self._record_retry(registry, tracer, job, attempt, payload)
                time.sleep(self._backoff_seconds(job.name, attempt))
                attempt += 1

    # ------------------------------------------------------------------
    # Parallel execution
    # ------------------------------------------------------------------
    def _run_parallel(self, jobs_list, completed, registry, tracer) -> None:
        workers = min(self.jobs, len(jobs_list))
        # Min-heap of (ready_time, job_index, attempt): jobs waiting to
        # be (re)submitted; retries carry a backoff-delayed ready time.
        ready: list = [(0.0, index, 0) for index in range(len(jobs_list))]
        heapq.heapify(ready)
        inflight: Dict = {}  # future -> (job_index, attempt, deadline)
        pool = ProcessPoolExecutor(max_workers=workers)
        retired = []  # replaced pools, shut down without waiting
        try:
            while ready or inflight:
                now = time.monotonic()
                # Submit whatever is due.  At most ``workers`` attempts
                # are in flight, so submission time ≈ start time and a
                # deadline measures actual execution, not queueing.
                while ready and ready[0][0] <= now and len(inflight) < workers:
                    _, index, attempt = heapq.heappop(ready)
                    future = pool.submit(
                        _execute_job,
                        jobs_list[index],
                        self.cache_dir,
                        self.use_cache,
                        attempt,
                        self.fault_plan,
                    )
                    deadline = (
                        None if self.job_timeout is None else now + self.job_timeout
                    )
                    inflight[future] = (index, attempt, deadline)
                if not inflight:
                    # Everything is waiting out a retry backoff.
                    time.sleep(max(0.0, ready[0][0] - now))
                    continue

                done, _ = _futures_wait(
                    set(inflight),
                    timeout=self._wait_budget(inflight, ready, now),
                    return_when=FIRST_COMPLETED,
                )
                pool_broken = False
                for future in done:
                    index, attempt, _ = inflight.pop(future)
                    try:
                        status, payload = future.result()
                    except BrokenExecutor:
                        # A worker died hard (SIGKILL, os._exit, ...):
                        # the pool is unusable and every in-flight
                        # future fails with it.  Charge an attempt and
                        # let the retry machinery re-run on the
                        # replacement pool.
                        pool_broken = True
                        status, payload = "err", _crash_payload()
                    except Exception as exc:  # e.g. result unpickling
                        status, payload = "err", {
                            "error_type": type(exc).__name__,
                            "message": str(exc),
                            "site": getattr(exc, "site", None),
                            "traceback": "",
                        }
                    self._settle(
                        jobs_list, index, attempt, status, payload,
                        completed, ready, registry, tracer,
                    )

                # Enforce deadlines on attempts still running.  A stuck
                # worker cannot be interrupted, so its attempt is
                # abandoned and its pool retired below.
                now = time.monotonic()
                overdue = [
                    future
                    for future, (_, _, deadline) in inflight.items()
                    if deadline is not None and now >= deadline
                ]
                for future in overdue:
                    index, attempt, _ = inflight.pop(future)
                    future.cancel()
                    self._settle(
                        jobs_list, index, attempt, "err",
                        _timeout_payload(self.job_timeout),
                        completed, ready, registry, tracer,
                    )

                if pool_broken or overdue:
                    # Replace the pool.  Healthy in-flight futures keep
                    # their old workers (shutdown(wait=False) lets
                    # running attempts finish); new submissions go to
                    # the fresh pool, so stuck/dead workers never
                    # starve the grid.
                    registry.counter("runner.pool_replacements").inc()
                    retired.append(pool)
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=workers)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
            for old in retired:
                old.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _wait_budget(inflight, ready, now) -> Optional[float]:
        """How long the event loop may block: until the next deadline
        or the next backoff expiry, whichever comes first."""
        horizon = None
        deadlines = [d for (_, _, d) in inflight.values() if d is not None]
        if deadlines:
            horizon = min(deadlines)
        if ready:
            horizon = ready[0][0] if horizon is None else min(horizon, ready[0][0])
        if horizon is None:
            return None
        return max(horizon - now, 0.005)

    # ------------------------------------------------------------------
    # Attempt bookkeeping
    # ------------------------------------------------------------------
    def _settle(
        self, jobs_list, index, attempt, status, payload,
        completed, ready, registry, tracer,
    ) -> None:
        if status == "ok":
            completed[index] = payload
            return
        job = jobs_list[index]
        if attempt >= self.max_retries:
            self._record_failure(registry, tracer, index, job, attempt + 1, payload)
            return
        self._record_retry(registry, tracer, job, attempt, payload)
        heapq.heappush(
            ready,
            (
                time.monotonic() + self._backoff_seconds(job.name, attempt),
                index,
                attempt + 1,
            ),
        )

    def _backoff_seconds(self, job_name: str, attempt: int) -> float:
        jitter = uniform_hash(self.retry_seed, "runner.backoff", f"{job_name}@{attempt}")
        return min(self.backoff_base * (2**attempt) * (0.5 + jitter), self.backoff_cap)

    def _record_retry(self, registry, tracer, job, attempt, payload) -> None:
        self.retries += 1
        self._job_retries[job.name] = self._job_retries.get(job.name, 0) + 1
        registry.counter("runner.retries").inc()
        log = obs.logger()
        if log.enabled:
            log.event(
                "runner.job.retry",
                level="warn",
                job=job.name,
                attempt=attempt,
                error=payload["error_type"],
            )
        tracer.instant(
            "runner.retry",
            time.perf_counter_ns(),
            category="runner",
            args={
                "job": job.name,
                "attempt": attempt,
                "error_type": payload["error_type"],
                "site": payload.get("site"),
            },
        )

    def _record_failure(
        self, registry, tracer, index, job, attempts, payload
    ) -> None:
        failure = JobFailure(
            job_index=index,
            job_name=job.name,
            scenario=job.scenario,
            attempts=attempts,
            error_type=payload["error_type"],
            message=payload["message"],
            site=payload.get("site"),
            traceback=payload.get("traceback", ""),
        )
        self.job_failures.append(failure)
        registry.counter("runner.job_failures").inc()
        registry.counter("runner.jobs.failed").inc()
        log = obs.logger()
        if log.enabled:
            log.event(
                "runner.job.failed",
                level="error",
                job=job.name,
                attempts=attempts,
                error=failure.error_type,
            )
        tracer.instant(
            "runner.job_failed",
            time.perf_counter_ns(),
            category="runner",
            args={
                "job": job.name,
                "attempts": attempts,
                "error_type": failure.error_type,
                "site": failure.site,
            },
        )
        if self.fail_fast:
            raise JobFailedError(failure)

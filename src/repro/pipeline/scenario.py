"""Attack-scenario execution and bookkeeping.

Runs an :class:`~repro.attacks.base.Attack` against a live platform the
way the paper's evaluation does: monitor normally for a while, inject
"some moments after" an interval boundary, keep monitoring, optionally
revert (qsort's exit in Figure 7), and keep monitoring again.  The
result carries the full MHM series plus the interval indices of every
event, from which per-interval ground-truth labels are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..attacks.base import Attack
from ..core.series import HeatMapSeries
from ..obs import span
from ..sim.platform import Platform

__all__ = ["ScenarioEvent", "ScenarioResult", "ScenarioRunner"]


@dataclass(frozen=True)
class ScenarioEvent:
    """A labelled instant of the scenario timeline."""

    label: str
    time_ns: int
    interval_index: int


@dataclass
class ScenarioResult:
    """Everything one scenario run produced.

    ``syscalls`` is the per-interval syscall-frequency matrix aligned
    row-for-row with ``series`` (the context modality's input);
    ``start_interval_index`` is the platform interval index of row 0 —
    the phase key the drift channel needs when the scenario did not
    start on a fresh boot.
    """

    name: str
    series: HeatMapSeries
    events: list[ScenarioEvent] = field(default_factory=list)
    syscalls: Optional[np.ndarray] = None
    start_interval_index: int = 0

    def event(self, label: str) -> ScenarioEvent:
        for entry in self.events:
            if entry.label == label:
                return entry
        raise KeyError(f"scenario has no event {label!r}")

    @property
    def attack_interval(self) -> int:
        """Index (within the series) of the interval containing inject."""
        return self.event("inject").interval_index

    @property
    def revert_interval(self) -> Optional[int]:
        try:
            return self.event("revert").interval_index
        except KeyError:
            return None

    def ground_truth(self) -> np.ndarray:
        """Per-interval anomaly labels.

        Intervals from the injection up to (and including) the revert
        interval are anomalous; if the attack is never reverted, every
        interval from injection onward is anomalous.
        """
        labels = np.zeros(len(self.series), dtype=bool)
        start = self.attack_interval
        stop = self.revert_interval
        if stop is None:
            labels[start:] = True
        else:
            labels[start : stop + 1] = True
        return labels


class ScenarioRunner:
    """Drives attacks against one platform and collects labelled MHMs."""

    def __init__(self, platform: Platform):
        self.platform = platform

    def run(
        self,
        attack: Attack,
        pre_intervals: int,
        attack_intervals: int,
        post_intervals: int = 0,
        inject_offset_fraction: float = 0.3,
    ) -> ScenarioResult:
        """Execute one scenario.

        Parameters
        ----------
        attack:
            The attack to inject.
        pre_intervals:
            Normal-operation intervals before injection (Figure 7 uses
            ~250).
        attack_intervals:
            Intervals with the attack active.
        post_intervals:
            When positive, the attack is reverted after
            ``attack_intervals`` and monitoring continues for this many
            further intervals (requires a reversible attack).
        inject_offset_fraction:
            Where inside the interval the injection lands — the paper's
            "some moments after the 250th interval".
        """
        if pre_intervals < 0 or attack_intervals < 1 or post_intervals < 0:
            raise ValueError("interval counts out of range")
        if not 0.0 <= inject_offset_fraction < 1.0:
            raise ValueError("inject_offset_fraction must be in [0, 1)")
        if post_intervals > 0 and not attack.reversible:
            raise ValueError(
                f"attack {attack.name!r} is not reversible; "
                f"post_intervals must be 0"
            )

        platform = self.platform
        interval_ns = platform.config.interval_ns
        start_index = platform.intervals_completed
        events: list[ScenarioEvent] = []

        with span("scenario.pre"):
            platform.run_intervals(pre_intervals)

        offset = int(inject_offset_fraction * interval_ns)
        inject_at = platform.now + offset
        platform.sim.schedule_at(inject_at, attack.inject, platform)
        events.append(
            ScenarioEvent(
                label="inject",
                time_ns=inject_at,
                interval_index=platform.intervals_completed - start_index,
            )
        )
        with span("scenario.attack"):
            platform.run_intervals(attack_intervals)

        if post_intervals > 0:
            revert_at = platform.now + offset
            platform.sim.schedule_at(revert_at, attack.revert, platform)
            events.append(
                ScenarioEvent(
                    label="revert",
                    time_ns=revert_at,
                    interval_index=platform.intervals_completed - start_index,
                )
            )
            with span("scenario.post"):
                platform.run_intervals(post_intervals)

        series = platform.secure_core.series(start=start_index)
        return ScenarioResult(
            name=attack.name,
            series=series,
            events=events,
            syscalls=platform.syscall_matrix(start=start_index),
            start_interval_index=start_index,
        )

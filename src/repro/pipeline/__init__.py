"""Experiment pipeline: training protocol, scenario execution, and the
parallel/cached experiment runner."""

from .cache import ArtifactCache, default_cache_root
from .experiments import (
    PAPER_SCALE,
    QUICK_SCALE,
    ExperimentScale,
    ReferenceArtifacts,
    ScenarioOutcome,
    clear_artifact_cache,
    get_reference_artifacts,
    run_app_launch_experiment,
    run_rootkit_experiment,
    run_scenario_experiment,
    run_shellcode_experiment,
)
from .monitoring import Alarm, MonitoringReport, OnlineMonitor
from .runner import (
    ExperimentJob,
    ExperimentRunner,
    JobFailedError,
    JobFailure,
    JobResult,
    TrainSpec,
    build_grid_jobs,
    expand_grid,
    run_job,
)
from .scenario import ScenarioEvent, ScenarioResult, ScenarioRunner
from .training import TrainingData, collect_training_data, train_detector

__all__ = [
    "ArtifactCache",
    "default_cache_root",
    "ExperimentJob",
    "ExperimentRunner",
    "JobFailedError",
    "JobFailure",
    "JobResult",
    "TrainSpec",
    "build_grid_jobs",
    "expand_grid",
    "run_job",
    "TrainingData",
    "collect_training_data",
    "train_detector",
    "ScenarioRunner",
    "ScenarioResult",
    "ScenarioEvent",
    "OnlineMonitor",
    "MonitoringReport",
    "Alarm",
    "ExperimentScale",
    "PAPER_SCALE",
    "QUICK_SCALE",
    "ReferenceArtifacts",
    "ScenarioOutcome",
    "get_reference_artifacts",
    "clear_artifact_cache",
    "run_scenario_experiment",
    "run_app_launch_experiment",
    "run_shellcode_experiment",
    "run_rootkit_experiment",
]

"""Experiment pipeline: training protocol and scenario execution."""

from .experiments import (
    PAPER_SCALE,
    QUICK_SCALE,
    ExperimentScale,
    ReferenceArtifacts,
    ScenarioOutcome,
    clear_artifact_cache,
    get_reference_artifacts,
    run_app_launch_experiment,
    run_rootkit_experiment,
    run_scenario_experiment,
    run_shellcode_experiment,
)
from .monitoring import Alarm, MonitoringReport, OnlineMonitor
from .scenario import ScenarioEvent, ScenarioResult, ScenarioRunner
from .training import TrainingData, collect_training_data, train_detector

__all__ = [
    "TrainingData",
    "collect_training_data",
    "train_detector",
    "ScenarioRunner",
    "ScenarioResult",
    "ScenarioEvent",
    "OnlineMonitor",
    "MonitoringReport",
    "Alarm",
    "ExperimentScale",
    "PAPER_SCALE",
    "QUICK_SCALE",
    "ReferenceArtifacts",
    "ScenarioOutcome",
    "get_reference_artifacts",
    "clear_artifact_cache",
    "run_scenario_experiment",
    "run_app_launch_experiment",
    "run_shellcode_experiment",
    "run_rootkit_experiment",
]

"""Command-line interface.

A small operational front-end so the library is usable without writing
Python — the workflow a deployment would actually script:

    # collect normal behaviour and train a detector
    python -m repro.cli train --runs 4 --intervals 200 --out detector.npz

    # score a fresh normal run against it
    python -m repro.cli monitor --detector detector.npz --intervals 100

    # replay one of the paper's attack scenarios and score it
    python -m repro.cli attack --detector detector.npz --scenario rootkit

    # run the full evaluation grid across 4 worker processes, with
    # simulation/training stages memoised in the artifact cache
    python -m repro.cli experiments --jobs 4 --replicas 2

    # inspect or empty the on-disk artifact cache
    python -m repro.cli cache stats
    python -m repro.cli cache clear

    # inspect a single simulated heat map
    python -m repro.cli heatmap --interval-index 5

    # time the hot-path kernels (reference vs vectorized backends)
    # and record the perf trajectory in BENCH_kernels.json
    python -m repro.cli bench --smoke --check

    # score every attack scenario against every detector column and
    # compare with the declared expected outcomes (docs/attacks.md)
    python -m repro.cli matrix --sizing ci --out conformance_matrix.json

    # pretty-print a metrics manifest written with --metrics-out
    python -m repro.cli stats metrics.json

Observability: ``train``, ``monitor``, ``attack``, ``experiments``
and ``serve`` accept ``--trace PATH`` (Chrome trace-event JSON —
open in chrome://tracing or https://ui.perfetto.dev; a ``.jsonl``
extension selects the line-delimited stream instead),
``--metrics-out PATH`` (a run manifest with config, seeds, versions
and a metrics snapshot) and ``--log PATH`` (schema-versioned
structured JSON log lines; see ``docs/observability.md``).  Any of
these flags enables :mod:`repro.obs` for the command.  ``serve``
additionally takes ``--metrics-dir``/``--metrics-interval`` (periodic
per-shard OpenMetrics snapshot files — the feed for ``repro top``)
and ``--health-out`` (a readiness summary asserted by CI).
``monitor``/``heatmap`` also take ``--json`` for machine-readable
output on stdout.

Exit codes (stable; scripts may rely on them):

* ``0`` — success; for ``monitor``/``attack``, the run completed with
  **no alarm**;
* ``1`` — I/O or input-file error (missing detector/manifest, bad
  JSON, unwritable ``--trace``/``--metrics-out`` directory);
* ``2`` — usage error (argparse convention);
* ``3`` — ``monitor`` or ``attack`` **raised an alarm** (the
  configured number of consecutive intervals scored below θ_p).
  An attack run that detects its attack therefore exits 3 — pipelines
  asserting detection should expect it;
* ``4`` — ``experiments`` completed degraded: one or more grid jobs
  exhausted their retries (``--max-retries``) or timed out
  (``--job-timeout``).  Completed results are still printed and the
  failure manifest is written to ``--failures-out`` if given.  With
  ``--fail-fast`` the first terminal job failure aborts the grid with
  this same exit code;
* ``5`` — ``bench --check`` found a perf regression: a vectorized
  kernel fell below its speedup floor against the reference oracle.
  ``BENCH_kernels.json`` is still written for inspection.
* ``6`` — ``serve`` completed **degraded**: one or more interval
  records were dropped under backpressure (``drop-oldest`` policy with
  the queue overflowing).  The fleet report is still written/printed.
* ``7`` — ``matrix`` found at least one **diverging cell**: a scenario
  × detector combination whose observed outcome differs from the
  outcome the attack class declares.  The matrix JSON is still
  written/printed so the divergence can be inspected.
* ``8`` — ``serve --executor async`` aborted on a **bus stall**: a
  block-policy publish waited longer than ``--stall-timeout`` on a
  subscriber that stopped draining its queue (a deadlocked or wedged
  consumer, as opposed to a merely slow one, which would only stall).

The single source of truth for these values is the :class:`ExitCode`
enum below; the ``EXIT_*`` module constants are aliases kept for
backwards compatibility.
"""

from __future__ import annotations

import argparse
import enum
import json
import sys

import numpy as np

from . import kernels, obs
from .conformance.matrix import SIZINGS as _SIZINGS
from .conformance.matrix import build_matrix
from .faults import FaultPlan
from .learn.detector import MhmDetector
from .learn.ensemble import ENSEMBLE_RULES, EnsembleConfig
from .pipeline.cache import ArtifactCache
from .pipeline.experiments import (
    PAPER_SCALE,
    QUICK_SCALE,
    get_reference_artifacts,
    run_scenario_experiment,
)
from .pipeline.monitoring import OnlineMonitor
from .pipeline.runner import ExperimentRunner, JobFailedError, build_grid_jobs
from .pipeline.scenario import ScenarioRunner
from .pipeline.stages import SCENARIOS as _SCENARIOS
from .pipeline.stages import make_attack
from .pipeline.training import collect_training_data, train_detector
from .serve.worker import MODALITIES as _MODALITIES
from .serve import (
    SERVE_TRACE_CATEGORIES,
    FleetReport,
    FleetService,
    FleetTrainSpec,
    ServeConfig,
    TelemetryConfig,
    write_health,
)
from .serve import BusStallError, RecalibrationPolicy
from .serve.bus import BUS_POLICIES as _BUS_POLICIES
from .serve.service import EXECUTORS as _EXECUTORS
from .sim.platform import Platform, PlatformConfig
from .viz.ascii import render_heatmap, render_series
from .viz.tables import format_metrics, format_table

__all__ = [
    "main",
    "build_parser",
    "ExitCode",
    "EXIT_OK",
    "EXIT_USAGE",
    "EXIT_ALARM",
    "EXIT_JOB_FAILURES",
    "EXIT_BENCH_REGRESSION",
    "EXIT_SERVE_DEGRADED",
    "EXIT_MATRIX_DIVERGENCE",
]


class ExitCode(enum.IntEnum):
    """Every exit code the CLI can return — the single source of truth.

    Scripts may rely on these values; changing one is a breaking
    interface change.  ``tests/test_cli.py`` pins each member.
    """

    #: Clean completion (monitor/attack: no alarm raised).
    OK = 0
    #: I/O or input-file error (missing detector/manifest, bad JSON,
    #: unwritable output directory).
    IO_ERROR = 1
    #: Invalid invocation (argparse errors use the same code).
    USAGE = 2
    #: monitor/attack raised an alarm.
    ALARM = 3
    #: experiments: one or more grid jobs failed terminally (grid
    #: itself completed; surviving results were produced).
    JOB_FAILURES = 4
    #: bench --check: a vectorized kernel fell below its speedup floor.
    BENCH_REGRESSION = 5
    #: serve: intervals were dropped under backpressure.
    SERVE_DEGRADED = 6
    #: matrix: an observed cell outcome diverged from its declaration.
    MATRIX_DIVERGENCE = 7
    #: serve (async executor): a block-policy publish timed out on a
    #: subscriber that stopped draining (BusStallError).
    BUS_STALL = 8


# Backwards-compatible aliases (public API since PR 1).
EXIT_OK = ExitCode.OK
EXIT_USAGE = ExitCode.USAGE
EXIT_ALARM = ExitCode.ALARM
EXIT_JOB_FAILURES = ExitCode.JOB_FAILURES
EXIT_BENCH_REGRESSION = ExitCode.BENCH_REGRESSION
EXIT_SERVE_DEGRADED = ExitCode.SERVE_DEGRADED
EXIT_MATRIX_DIVERGENCE = ExitCode.MATRIX_DIVERGENCE

LN10 = float(np.log(10.0))

_SCALES = {"quick": QUICK_SCALE, "paper": PAPER_SCALE}


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write simulator events as Chrome trace-event JSON "
        "(.jsonl extension: line-delimited events instead)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write a run manifest (config, seed, version, host, metrics)",
    )
    parser.add_argument(
        "--log",
        metavar="PATH",
        help="write structured JSON log lines (schema-versioned events; "
        "see docs/observability.md)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory Heat Map anomaly detection (DAC 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="collect normal MHMs and train a detector")
    train.add_argument("--runs", type=int, default=4, help="independent boots")
    train.add_argument(
        "--intervals", type=int, default=200, help="MHMs collected per boot"
    )
    train.add_argument(
        "--validation", type=int, default=200, help="held-out MHMs for thresholds"
    )
    train.add_argument("--gaussians", type=int, default=5, help="GMM components J")
    train.add_argument("--restarts", type=int, default=5, help="EM restarts")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", required=True, help="output .npz path")
    _add_obs_arguments(train)

    monitor = sub.add_parser("monitor", help="score a fresh normal run")
    monitor.add_argument("--detector", required=True, help="trained .npz detector")
    monitor.add_argument("--intervals", type=int, default=100)
    monitor.add_argument("--seed", type=int, default=12345)
    monitor.add_argument("--quantile", type=float, default=1.0, help="theta_p (%%)")
    monitor.add_argument(
        "--alarm-consecutive",
        type=int,
        default=3,
        help="consecutive abnormal intervals that raise an alarm (exit 3)",
    )
    monitor.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )
    _add_obs_arguments(monitor)

    attack = sub.add_parser("attack", help="replay a paper scenario and score it")
    attack.add_argument("--detector", required=True)
    attack.add_argument(
        "--scenario", choices=sorted(_SCENARIOS), default="rootkit"
    )
    attack.add_argument("--pre", type=int, default=100)
    attack.add_argument("--during", type=int, default=100)
    attack.add_argument("--seed", type=int, default=54321)
    attack.add_argument("--quantile", type=float, default=1.0)
    attack.add_argument(
        "--alarm-consecutive",
        type=int,
        default=1,
        help="consecutive abnormal intervals that raise an alarm (exit 3); "
        "1 reproduces the paper's raw per-interval verdicts",
    )
    attack.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )
    _add_obs_arguments(attack)

    detect = sub.add_parser(
        "detect",
        help="replay a scenario and score it with a chosen modality "
        "(MHM densities, syscall contexts, or the ensemble)",
    )
    detect.add_argument(
        "--scenario", choices=sorted(_SCENARIOS), default="mimicry"
    )
    detect.add_argument(
        "--modality", choices=_MODALITIES, default="ensemble",
        help="which detector(s) decide the verdict (default ensemble)",
    )
    detect.add_argument(
        "--scale", choices=sorted(_SCALES), default="quick",
        help="training/scenario sizing (default quick)",
    )
    detect.add_argument(
        "--quantile", type=float, default=1.0, metavar="P",
        help="combined false-positive budget in percent (default 1.0)",
    )
    detect.add_argument(
        "--mhm-share", type=float, default=0.5,
        help="ensemble: fraction of the budget given to the MHM "
        "modality (default 0.5)",
    )
    detect.add_argument(
        "--ensemble-rule", choices=ENSEMBLE_RULES, default="or",
        help="ensemble fusion rule (default or)",
    )
    detect.add_argument("--seed", type=int, default=0, help="training seed")
    detect.add_argument(
        "--scenario-seed", type=int, default=999,
        help="fresh platform seed for the scenario boot",
    )
    detect.add_argument(
        "--cache-dir", help="artifact cache root (default ~/.cache/repro)"
    )
    detect.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk cache"
    )
    detect.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )
    _add_obs_arguments(detect)

    experiments = sub.add_parser(
        "experiments",
        help="run a scenario/ablation grid in parallel with artifact caching",
    )
    experiments.add_argument(
        "--scale", choices=sorted(_SCALES), default="quick",
        help="training/scenario sizing (paper = full Section 5.2 protocol)",
    )
    experiments.add_argument(
        "--scenario",
        action="append",
        choices=sorted(_SCENARIOS),
        help="scenario(s) to run (repeatable; default: all)",
    )
    experiments.add_argument(
        "--replicas", type=int, default=1,
        help="independent scenario boots per grid point",
    )
    experiments.add_argument(
        "--seed", type=int, default=0,
        help="root seed; per-job seeds derive from it via SeedSequence.spawn",
    )
    experiments.add_argument(
        "--granularity",
        help="comma-separated MHM granularity sweep, e.g. 2048,4096",
    )
    experiments.add_argument(
        "--jobs", "-j", type=int, default=1, help="worker processes"
    )
    experiments.add_argument(
        "--cache-dir", help="artifact cache root (default ~/.cache/repro)"
    )
    experiments.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk cache"
    )
    experiments.add_argument(
        "--max-retries", type=int, default=2,
        help="re-attempts per failed job before it lands in the failure "
        "manifest (default 2)",
    )
    experiments.add_argument(
        "--job-timeout", type=float, metavar="SECONDS",
        help="per-attempt wall-clock budget; overrunning attempts are "
        "abandoned and retried",
    )
    experiments.add_argument(
        "--fail-fast", action="store_true",
        help="abort the grid on the first terminal job failure instead of "
        "degrading to the failure manifest",
    )
    experiments.add_argument(
        "--failures-out", metavar="PATH",
        help="write the structured failure manifest (failures.json) here",
    )
    experiments.add_argument(
        "--fault-plan", metavar="PATH",
        help="JSON fault-injection plan for resilience drills "
        "(see docs/faults.md for the schema)",
    )
    experiments.add_argument("--train-runs", type=int, help="override training boots")
    experiments.add_argument(
        "--train-intervals", type=int, help="override MHMs per training boot"
    )
    experiments.add_argument(
        "--validation", type=int, help="override held-out calibration MHMs"
    )
    experiments.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )
    _add_obs_arguments(experiments)

    bench = sub.add_parser(
        "bench",
        help="time hot-path kernels (reference vs vectorized) "
        "and write BENCH_kernels.json",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="CI-sized problem sizes (seconds, not minutes)",
    )
    bench.add_argument(
        "--out", default="BENCH_kernels.json", metavar="PATH",
        help="perf-trajectory JSON output (default BENCH_kernels.json)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="timed repetitions per vectorized kernel (best-of wins)",
    )
    bench.add_argument(
        "--seed", type=int, default=2015, help="fixture/e2e seed"
    )
    bench.add_argument(
        "--check", action="store_true",
        help="exit 5 if any kernel falls below its speedup floor "
        "(>=3x counting, >=5x GMM scoring, never slower elsewhere)",
    )
    bench.add_argument(
        "--json", action="store_true", help="print the report to stdout too"
    )

    cache = sub.add_parser("cache", help="inspect or empty the artifact cache")
    cache.add_argument("cache_action", choices=("stats", "clear"))
    cache.add_argument(
        "--cache-dir", help="artifact cache root (default ~/.cache/repro)"
    )

    heatmap = sub.add_parser("heatmap", help="render one simulated MHM")
    heatmap.add_argument("--interval-index", type=int, default=0)
    heatmap.add_argument("--seed", type=int, default=2015)
    heatmap.add_argument("--width", type=int, default=92)
    heatmap.add_argument(
        "--json", action="store_true", help="dump the MHM as JSON instead of ASCII"
    )

    serve = sub.add_parser(
        "serve",
        help="run the fleet-scale streaming detection service "
        "(N devices, K shard workers, batched scoring)",
    )
    serve.add_argument(
        "--devices", "-n", type=int, default=8, help="simulated devices"
    )
    serve.add_argument(
        "--shards", "-k", type=int, default=1, help="shard worker processes"
    )
    serve.add_argument(
        "--duration", type=float, metavar="SECONDS",
        help="simulated seconds per device (converted to monitoring "
        "intervals at the paper's 10 ms cadence)",
    )
    serve.add_argument(
        "--intervals", type=int,
        help="monitoring intervals per device (overrides --duration; "
        "default 100)",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="root seed; per-device platform seeds derive from it via "
        "SeedSequence.spawn, so results are shard-count independent",
    )
    serve.add_argument(
        "--policy", choices=_BUS_POLICIES, default="block",
        help="backpressure policy when a shard queue is full "
        "(default block: producers stall, nothing is dropped; "
        "shed needs --executor async)",
    )
    serve.add_argument(
        "--executor", choices=_EXECUTORS, default="lockstep",
        help="shard executor: lockstep (serial reference loop) or "
        "async (event-bus data plane; bit-identical digests)",
    )
    serve.add_argument(
        "--cadences", metavar="C1,C2,...",
        help="heterogeneous device cadences (async executor): device i "
        "emits every Ci fleet steps, cycled over the list "
        "(default: every device every step)",
    )
    serve.add_argument(
        "--recalibrate", action="store_true",
        help="apply drift-suggested thresholds through the "
        "proposal -> canary trial -> commit state machine "
        "(async executor)",
    )
    serve.add_argument(
        "--canary-intervals", type=int, default=24, metavar="N",
        help="shadow-trial length per recalibration proposal, in the "
        "device's scored records (default 24)",
    )
    serve.add_argument(
        "--stall-timeout", type=float, default=30.0, metavar="SECONDS",
        help="async executor: abort with exit code 8 when a "
        "block-policy publish waits longer than this on a stuck "
        "subscriber (default 30; 0 disables)",
    )
    serve.add_argument(
        "--failures-out", metavar="PATH",
        help="write poisoned-subscriber failure records (JSON) here "
        "after an async run",
    )
    serve.add_argument(
        "--capacity", type=int, default=128,
        help="bounded queue capacity per shard (default 128)",
    )
    serve.add_argument(
        "--batch", type=int, default=32,
        help="scoring batch size = fixed kernel batch shape (default 32)",
    )
    serve.add_argument(
        "--drain-per-step", type=int, metavar="M",
        help="throttle: score at most M records per shard per fleet step "
        "(models a saturated scoring core; default unlimited)",
    )
    serve.add_argument(
        "--attacks", type=int, default=0, metavar="N",
        help="inject attacks on N devices (spread evenly, scenarios cycled)",
    )
    serve.add_argument(
        "--scenario", action="append", choices=sorted(_SCENARIOS),
        help="attack scenario(s) to cycle over attacked devices "
        "(repeatable; default all)",
    )
    serve.add_argument(
        "--profiles", default="baseline,rtos,netload",
        help="comma-separated device profiles to mix (default "
        "baseline,rtos,netload)",
    )
    serve.add_argument(
        "--quantile", type=float, default=1.0, metavar="P",
        help="θ_p calibration quantile in percent (default 1.0)",
    )
    serve.add_argument(
        "--modality", choices=_MODALITIES, default="mhm",
        help="scoring modality: mhm (default), contexts, or ensemble "
        "(both, budget split per --mhm-share)",
    )
    serve.add_argument(
        "--mhm-share", type=float, default=0.5,
        help="ensemble: fraction of the --quantile budget given to the "
        "MHM modality (default 0.5)",
    )
    serve.add_argument(
        "--ensemble-rule", choices=ENSEMBLE_RULES, default="or",
        help="ensemble fusion rule (default or)",
    )
    serve.add_argument(
        "--dtype", choices=kernels.DTYPES, default=None,
        help="fused-kernel compute dtype: float64 (default; shipped "
        "digests) or float32 (fast path, ULP-bounded)",
    )
    serve.add_argument(
        "--alarm-consecutive", type=int, default=3,
        help="consecutive sub-θ intervals required for an alarm (default 3)",
    )
    serve.add_argument(
        "--train-runs", type=int, default=2,
        help="training boots per device profile (default 2)",
    )
    serve.add_argument(
        "--train-intervals", type=int, default=80,
        help="MHMs per training boot (default 80)",
    )
    serve.add_argument(
        "--validation", type=int, default=80,
        help="held-out calibration MHMs per profile (default 80)",
    )
    serve.add_argument(
        "--cache-dir", help="artifact cache root (default ~/.cache/repro)"
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="train profile detectors without the on-disk cache",
    )
    serve.add_argument(
        "--report-out", metavar="PATH", help="write the fleet report JSON here"
    )
    serve.add_argument(
        "--fault-plan", metavar="PATH",
        help="JSON fault-injection plan (site serve.score degrades "
        "matching records to SKIPPED verdicts)",
    )
    serve.add_argument(
        "--json", action="store_true",
        help="print the full fleet report JSON on stdout",
    )
    serve.add_argument(
        "--metrics-dir", metavar="DIR",
        help="write periodic per-shard metrics snapshots (JSON + "
        "OpenMetrics text) into DIR — the feed for `repro top`",
    )
    serve.add_argument(
        "--metrics-interval", type=int, default=100, metavar="STEPS",
        help="fleet steps between metrics snapshots (default 100)",
    )
    serve.add_argument(
        "--health-out", metavar="PATH",
        help="write a health/readiness summary JSON after the run",
    )
    _add_obs_arguments(serve)

    fleet_report = sub.add_parser(
        "fleet-report",
        help="render a fleet report JSON written by `serve --report-out`",
    )
    fleet_report.add_argument("report_json", help="fleet report JSON file")
    fleet_report.add_argument(
        "--json", action="store_true",
        help="echo the report as canonical JSON instead of tables",
    )

    stats = sub.add_parser(
        "stats", help="pretty-print a manifest written with --metrics-out"
    )
    stats.add_argument("metrics_json", help="manifest / metrics snapshot JSON file")

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a serve run's --metrics-dir "
        "snapshot files",
    )
    top.add_argument(
        "metrics_dir", help="snapshot directory a `serve --metrics-dir` writes"
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (CI-friendly)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh period (default 2s)",
    )
    top.add_argument(
        "--width", type=int, default=100, help="frame width (default 100)"
    )

    matrix = sub.add_parser(
        "matrix",
        help="score every attack scenario against every detector column "
        "and diff against the declared expected outcomes",
    )
    matrix.add_argument(
        "--sizing", choices=sorted(_SIZINGS), default="ci",
        help="matrix sizing preset (tiny = test-suite scale)",
    )
    matrix.add_argument(
        "--scenario",
        action="append",
        choices=sorted(_SCENARIOS),
        help="scenario row(s) to score (repeatable; default: all registered)",
    )
    matrix.add_argument(
        "--out", metavar="PATH", help="write the matrix JSON document here"
    )
    matrix.add_argument(
        "--json", action="store_true",
        help="emit the matrix JSON on stdout instead of tables",
    )
    matrix.add_argument(
        "--cache-dir", help="artifact cache root (default ~/.cache/repro)"
    )
    matrix.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk cache"
    )

    return parser


# ----------------------------------------------------------------------
# Observability plumbing
# ----------------------------------------------------------------------
def _obs_requested(args) -> bool:
    return bool(
        getattr(args, "trace", None)
        or getattr(args, "metrics_out", None)
        or getattr(args, "log", None)
        or getattr(args, "metrics_dir", None)
    )


def _check_output_paths(args) -> None:
    """Fail before the run, not after it: artefact dirs must exist."""
    import os

    for attr in ("trace", "metrics_out", "log", "health_out"):
        path = getattr(args, attr, None)
        if path:
            parent = os.path.dirname(path) or "."
            if not os.path.isdir(parent):
                raise OSError(
                    f"--{attr.replace('_', '-')} directory does not exist: {parent}"
                )


def _obs_finish(args, command: str, config=None, seed=None, intervals=None, **extra):
    """Write the trace and/or manifest the user asked for."""
    trace_path = getattr(args, "trace", None)
    if trace_path:
        tracer = obs.tracer()
        if str(trace_path).endswith(".jsonl"):
            tracer.write_jsonl(trace_path)
        else:
            tracer.write_chrome(trace_path)
    manifest_path = getattr(args, "metrics_out", None)
    if manifest_path:
        obs.RunInfo.collect(
            command=command,
            config=config,
            seed=seed,
            intervals=intervals,
            metrics=obs.metrics().snapshot(),
            trace_events=len(obs.tracer()),
            **extra,
        ).write(manifest_path)


class _FaultPlanError(ValueError):
    """A --fault-plan file failed validation (usage error, not I/O)."""


def _load_fault_plan(path):
    """Parse a ``--fault-plan`` JSON file (shared by experiments/serve).

    I/O and JSON syntax errors propagate (``main`` maps them to exit
    code 1); schema violations raise :class:`_FaultPlanError` so
    handlers can return the usage exit code.
    """
    if not path:
        return None
    with open(path) as fh:
        plan_dict = json.load(fh)
    try:
        return FaultPlan.from_dict(plan_dict)
    except (KeyError, TypeError, ValueError) as exc:
        raise _FaultPlanError(f"invalid fault plan {path}: {exc}") from exc


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_train(args) -> int:
    config = PlatformConfig()
    data = collect_training_data(
        config,
        runs=args.runs,
        intervals_per_run=args.intervals,
        validation_intervals=args.validation,
        base_seed=100 + args.seed,
    )
    detector = train_detector(
        data,
        num_gaussians=args.gaussians,
        em_restarts=args.restarts,
        seed=args.seed,
    )
    detector.save(args.out)
    print(
        format_table(
            ["quantity", "value"],
            [
                ["training MHMs", data.num_training],
                ["validation MHMs", data.num_validation],
                ["eigenmemories L'", detector.num_eigenmemories_],
                ["variance retained", f"{detector.eigenmemory.retained_variance_:.4%}"],
                ["GMM components J", detector.num_gaussians],
                ["theta_1 (log10)", f"{detector.log10_threshold(1.0):.2f}"],
                ["saved to", args.out],
            ],
            title="trained detector",
        )
    )
    _obs_finish(
        args,
        "train",
        config=config,
        seed=args.seed,
        intervals=args.runs * args.intervals + args.validation,
        detector_out=str(args.out),
        eigenmemories=detector.num_eigenmemories_,
        gaussians=detector.num_gaussians,
    )
    return EXIT_OK


def _cmd_monitor(args) -> int:
    detector = MhmDetector.load(args.detector)
    config = PlatformConfig(seed=args.seed)
    platform = Platform(config)
    monitor = OnlineMonitor(
        platform,
        detector,
        p_percent=args.quantile,
        consecutive_for_alarm=args.alarm_consecutive,
    )
    report = monitor.monitor(args.intervals)
    densities = report.log_densities / LN10
    flags = report.flagged

    if args.json:
        print(json.dumps(_report_json(args, report, densities, detector), indent=2))
    else:
        print(
            render_series(
                densities,
                thresholds={"theta": detector.log10_threshold(args.quantile)},
                height=12,
                width=90,
            )
        )
        print(
            f"{flags} of {report.intervals} intervals flagged "
            f"({report.flag_rate:.1%}) at theta_{args.quantile:g}; "
            f"{len(report.alarms)} alarm(s)"
        )
    _obs_finish(
        args,
        "monitor",
        config=config,
        seed=args.seed,
        intervals=args.intervals,
        detector=str(args.detector),
        alarms=len(report.alarms),
    )
    return EXIT_ALARM if report.alarms else EXIT_OK


def _cmd_attack(args) -> int:
    detector = MhmDetector.load(args.detector)
    config = PlatformConfig(seed=args.seed)
    platform = Platform(config)
    monitor = OnlineMonitor(
        platform,
        detector,
        p_percent=args.quantile,
        consecutive_for_alarm=args.alarm_consecutive,
    )
    monitor.attach()
    result = ScenarioRunner(platform).run(
        _SCENARIOS[args.scenario](),
        pre_intervals=args.pre,
        attack_intervals=args.during,
    )
    results = platform.secure_core.online_results
    densities = np.array([r.log_density for r in results]) / LN10
    flags = np.array([r.is_anomalous for r in results])
    inject = result.attack_interval
    pre_fpr = float(flags[:inject].mean()) if inject else 0.0
    post_rate = float(flags[inject:].mean())
    first_alarm = monitor.alarms[0].interval_index if monitor.alarms else None

    if args.json:
        payload = {
            "command": "attack",
            "scenario": args.scenario,
            "seed": args.seed,
            "quantile_percent": args.quantile,
            "attack_interval": inject,
            "pre_attack_fpr": pre_fpr,
            "post_attack_flag_rate": post_rate,
            "alarms": [vars(a) for a in monitor.alarms],
            "first_alarm_interval": first_alarm,
            "detection_latency_intervals": (
                first_alarm - inject if first_alarm is not None else None
            ),
            "log10_densities": densities,
            "flags": flags,
            "log10_threshold": detector.log10_threshold(args.quantile),
        }
        print(json.dumps(obs.to_jsonable(payload), indent=2))
    else:
        print(
            render_series(
                densities,
                thresholds={"theta": detector.log10_threshold(args.quantile)},
                events={"attack": inject},
                height=12,
                width=90,
            )
        )
        print(
            format_table(
                ["quantity", "value"],
                [
                    ["scenario", args.scenario],
                    ["attack interval", inject],
                    ["pre-attack FPR", f"{pre_fpr:.1%}"],
                    ["post-attack flag rate", f"{post_rate:.1%}"],
                    ["alarms", len(monitor.alarms)],
                    [
                        "first alarm interval",
                        first_alarm if first_alarm is not None else "-",
                    ],
                ],
            )
        )
    _obs_finish(
        args,
        "attack",
        config=config,
        seed=args.seed,
        intervals=args.pre + args.during,
        scenario=args.scenario,
        detector=str(args.detector),
        alarms=len(monitor.alarms),
    )
    return EXIT_ALARM if monitor.alarms else EXIT_OK


def _report_json(args, report, densities, detector) -> dict:
    return obs.to_jsonable(
        {
            "command": "monitor",
            "seed": args.seed,
            "quantile_percent": args.quantile,
            "intervals": report.intervals,
            "flagged": report.flagged,
            "flag_rate": report.flag_rate,
            "skipped": report.skipped,
            "skipped_intervals": report.skipped_intervals,
            "kernels_backend": report.kernels_backend,
            "alarms": [vars(a) for a in report.alarms],
            "analysis_time_us": report.analysis_time_us,
            "interval_us": report.interval_us,
            "analysis_budget_fraction": report.analysis_budget_fraction,
            "log10_densities": densities,
            "log10_threshold": detector.log10_threshold(args.quantile),
        }
    )


def _cmd_experiments(args) -> int:
    scale = _SCALES[args.scale]
    scenarios = args.scenario or sorted(_SCENARIOS)
    config_axes = None
    if args.granularity:
        config_axes = {
            "granularity": [int(v) for v in args.granularity.split(",") if v]
        }
    train_overrides = {}
    if args.train_runs is not None:
        train_overrides["runs"] = args.train_runs
    if args.train_intervals is not None:
        train_overrides["intervals_per_run"] = args.train_intervals
    if args.validation is not None:
        train_overrides["validation_intervals"] = args.validation

    try:
        fault_plan = _load_fault_plan(args.fault_plan)
    except _FaultPlanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return ExitCode.USAGE

    jobs = build_grid_jobs(
        scenarios,
        scale,
        root_seed=args.seed,
        replicas=args.replicas,
        config_axes=config_axes,
        train_overrides=train_overrides or None,
    )
    runner = ExperimentRunner(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        max_retries=args.max_retries,
        job_timeout=args.job_timeout,
        fail_fast=args.fail_fast,
        fault_plan=fault_plan,
    )
    try:
        results = runner.run(jobs)
    except JobFailedError as exc:
        if args.failures_out:
            runner.write_failure_manifest(args.failures_out)
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_JOB_FAILURES
    failures = runner.job_failures
    if args.failures_out and failures:
        runner.write_failure_manifest(args.failures_out)
    hits = sum(sum(r.cache_hits.values()) for r in results)
    misses = sum(sum(r.cache_misses.values()) for r in results)

    if args.json:
        payload = {
            "command": "experiments",
            "scale": args.scale,
            "root_seed": args.seed,
            "jobs": args.jobs,
            "cache": not args.no_cache,
            "cache_hits": hits,
            "cache_misses": misses,
            "retries": runner.retries,
            "failures": runner.failure_manifest()["failures"],
            "results": [
                {
                    **r.summary,
                    "cache_hits": r.cache_hits,
                    "cache_misses": r.cache_misses,
                    "stage_seconds": r.stage_seconds,
                    "fingerprint": r.fingerprint(),
                }
                for r in results
            ],
        }
        print(json.dumps(obs.to_jsonable(payload), indent=2))
    else:
        rows = [
            [
                r.job.name,
                r.num_eigenmemories,
                f"{r.summary['auc']:.3f}",
                f"{r.summary['pre_fpr_theta_1']:.1%}",
                f"{r.summary['detection_rate_theta_1']:.1%}",
                r.summary["latency_theta_1"],
                ",".join(r.computed_stages) or "(all cached)",
                f"{sum(r.stage_seconds.values()):.2f}s",
            ]
            for r in results
        ]
        print(
            format_table(
                [
                    "job",
                    "L'",
                    "AUC",
                    "pre-FPR@th1",
                    "det-rate@th1",
                    "latency",
                    "computed stages",
                    "time",
                ],
                rows,
                title=f"experiment grid ({len(results)} of {len(jobs)} jobs, "
                f"--jobs {args.jobs}, scale {args.scale})",
            )
        )
        print(
            f"cache: {hits} hit(s), {misses} miss(es); "
            f"retries: {runner.retries}"
        )
        for failure in failures:
            print(
                f"FAILED {failure.job_name}: {failure.error_type}: "
                f"{failure.message} (after {failure.attempts} attempt(s))",
                file=sys.stderr,
            )
    _obs_finish(
        args,
        "experiments",
        seed=args.seed,
        intervals=sum(r.summary["intervals"] for r in results),
        scale=args.scale,
        grid_jobs=len(results),
        workers=args.jobs,
        cache_hits=hits,
        cache_misses=misses,
        retries=runner.retries,
        job_failures=len(failures),
    )
    return EXIT_JOB_FAILURES if failures else EXIT_OK


def _cmd_bench(args) -> int:
    from .bench import check_regressions, run_benchmarks, write_report

    results, extras = run_benchmarks(
        smoke=args.smoke, repeats=args.repeats, seed=args.seed
    )
    payload = write_report(
        args.out, results, smoke=args.smoke, repeats=args.repeats, extras=extras
    )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rows = [
            [
                r.kernel,
                r.n,
                f"{r.wall_s * 1e3:.3f} ms",
                f"{r.reference_wall_s * 1e3:.3f} ms",
                f"{r.speedup_vs_reference:.1f}x",
            ]
            for r in results
        ]
        print(
            format_table(
                ["kernel", "n", "vectorized", "reference", "speedup"],
                rows,
                title=f"kernel bench ({payload['mode']}, "
                f"git {payload['git_sha']}) -> {args.out}",
            )
        )
        fleet = payload.get("fleet_throughput")
        if fleet:
            f64, f32 = fleet["float64"], fleet["float32"]
            print(
                f"fleet throughput (pad_to={fleet['pad_to']}, "
                f"batch={fleet['batch_rows']} rows): "
                f"float64 {f64['devices_per_sec']:,.0f} devices/s "
                f"({f64['devices_per_10ms_interval']:,.0f} @ 10 ms), "
                f"float32 {f32['devices_per_sec']:,.0f} devices/s "
                f"({f32['devices_per_10ms_interval']:,.0f} @ 10 ms, "
                f"max {f32['max_ulp_error_log_density']:.1f} ULP "
                f"of budget {f32['ulp_budget']:.0f})"
            )
    failures = check_regressions(results)
    if failures:
        for failure in failures:
            print(f"BENCH REGRESSION {failure}", file=sys.stderr)
        if args.check:
            return EXIT_BENCH_REGRESSION
    return EXIT_OK


def _cmd_cache(args) -> int:
    cache = ArtifactCache(args.cache_dir)
    if args.cache_action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.dir}")
        return EXIT_OK
    stats = cache.stats()
    rows = [
        [stage, info["entries"], f"{info['bytes'] / 1024:.1f} KiB"]
        for stage, info in stats["stages"].items()
    ]
    rows.append(["total", stats["entries"], f"{stats['bytes'] / 1024:.1f} KiB"])
    print(
        format_table(
            ["stage", "entries", "size"],
            rows,
            title=f"artifact cache at {stats['root']} ({stats['namespace']})",
        )
    )
    return EXIT_OK


def _cmd_heatmap(args) -> int:
    platform = Platform(PlatformConfig(seed=args.seed))
    series = platform.collect_intervals(args.interval_index + 1)
    heat_map = series[args.interval_index]
    if args.json:
        spec = heat_map.spec
        payload = {
            "command": "heatmap",
            "seed": args.seed,
            "interval_index": heat_map.interval_index,
            "start_time_ns": heat_map.start_time_ns,
            "spec": {
                "base_address": spec.base_address,
                "region_size": spec.region_size,
                "granularity": spec.granularity,
                "num_cells": spec.num_cells,
            },
            "counts": heat_map.counts,
        }
        print(json.dumps(obs.to_jsonable(payload), indent=2))
    else:
        print(render_heatmap(heat_map, width=args.width, log_scale=True))
    return EXIT_OK


def _cmd_stats(args) -> int:
    with open(args.metrics_json) as fh:
        data = json.load(fh)
    if "metrics" in data and isinstance(data["metrics"], dict):
        host = data.get("host", {})
        rows = [
            ["command", data.get("command", "?")],
            ["argv", " ".join(data.get("argv", []))],
            ["seed", data.get("seed", "-")],
            ["intervals", data.get("intervals", "-")],
            ["version", data.get("version", "?")],
            ["python", host.get("python", "?")],
            ["platform", host.get("platform", "?")],
            ["trace events", data.get("extra", {}).get("trace_events", "-")],
        ]
        print(format_table(["field", "value"], rows, title="run manifest"))
        print()
        snapshot = data["metrics"]
    else:
        snapshot = data
    service_rows = _service_counter_rows(snapshot)
    if service_rows:
        print(
            format_table(
                ["counter", "value"],
                service_rows,
                title="service counters (serve.*/runner.*)",
            )
        )
        print()
    print(format_metrics(snapshot))
    return EXIT_OK


def _cmd_top(args) -> int:
    from .viz.top import run_top

    run_top(
        args.metrics_dir,
        once=args.once,
        interval=args.interval,
        width=args.width,
    )
    return EXIT_OK


def _cmd_matrix(args) -> int:
    sizing = _SIZINGS[args.sizing]
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    matrix = build_matrix(
        sizing=sizing,
        scenarios=args.scenario or None,
        cache=cache,
    )
    document = matrix.to_json()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(document + "\n")
    if args.json:
        print(document)
    else:
        rows = [
            [
                cell.scenario,
                cell.detector,
                cell.expected,
                cell.observed,
                "ok" if cell.matched else "DIVERGED",
            ]
            for cell in matrix.cells
        ]
        print(
            format_table(
                ["scenario", "detector", "expected", "observed", "status"],
                rows,
                title=f"conformance matrix ({matrix.sizing}, "
                f"digest {matrix.digest()[:16]})",
            )
        )
    mismatches = matrix.mismatches()
    for cell in mismatches:
        print(
            f"MATRIX DIVERGENCE {cell.scenario} x {cell.detector}: "
            f"expected {cell.expected!r}, observed {cell.observed!r}",
            file=sys.stderr,
        )
    return EXIT_MATRIX_DIVERGENCE if mismatches else EXIT_OK


def _serve_intervals(args) -> int:
    """Resolve --intervals / --duration into monitoring intervals."""
    if args.intervals is not None:
        return args.intervals
    if args.duration is not None:
        interval_ns = PlatformConfig().interval_ns
        return max(1, round(args.duration * 1e9 / interval_ns))
    return 100


def _render_fleet_report(report: FleetReport) -> str:
    totals = [
        ("devices", report.devices),
        ("shards", report.shards),
        ("intervals/device", report.intervals),
        ("seed", report.seed),
        ("policy", report.policy),
        ("kernels backend", report.kernels_backend),
        ("kernels dtype", report.kernels_dtype),
        ("emitted", report.emitted),
        ("scored", report.scored),
        ("skipped", report.skipped),
        ("dropped", report.dropped),
        ("flagged", report.flagged),
        ("alarms", report.alarms),
        ("block stalls", report.block_stalls),
        ("devices alarmed", report.devices_alarmed),
        ("devices attacked", report.devices_attacked),
        ("attacked devices alarmed", report.attacked_devices_alarmed),
        ("devices drifted", report.devices_drifted),
        ("fleet digest", report.fleet_digest[:16]),
    ]
    rows = []
    for dev in report.device_reports:
        rows.append(
            [
                dev.device_id,
                dev.profile,
                dev.shard,
                dev.scenario or "-",
                dev.scored,
                dev.skipped,
                dev.dropped,
                dev.flagged,
                dev.alarms,
                "-" if dev.detection_latency is None else dev.detection_latency,
                "yes" if dev.drifted else "no",
                dev.digest[:12],
            ]
        )
    return (
        format_table(["metric", "value"], totals, title="fleet totals")
        + "\n\n"
        + format_table(
            [
                "device", "profile", "shard", "scenario", "scored",
                "skipped", "dropped", "flagged", "alarms", "latency",
                "drift", "digest",
            ],
            rows,
            title="devices",
        )
    )


def _service_counter_rows(snapshot: dict) -> list:
    """``serve.*`` / ``runner.*`` counters from a metrics snapshot."""
    rows = []
    for name in sorted(snapshot):
        data = snapshot[name]
        if data.get("type") != "counter":
            continue
        family = data.get("family", name)
        if family.startswith(("serve.", "runner.")):
            rows.append([name, data.get("value", 0)])
    return rows


def _render_telemetry_footer(snapshot: dict) -> str:
    """The fleet report's service-counter footer (empty when no obs)."""
    rows = _service_counter_rows(snapshot)
    if not rows:
        return ""
    return format_table(
        ["counter", "value"], rows, title="service telemetry (serve.*/runner.*)"
    )


def _cmd_serve(args) -> int:
    try:
        fault_plan = _load_fault_plan(args.fault_plan)
    except _FaultPlanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return ExitCode.USAGE
    profiles = tuple(p for p in args.profiles.split(",") if p)
    cadences = None
    if args.cadences:
        try:
            cadences = tuple(int(c) for c in args.cadences.split(",") if c)
        except ValueError:
            print(
                f"error: --cadences must be a comma-separated list of "
                f"integers, got {args.cadences!r}",
                file=sys.stderr,
            )
            return ExitCode.USAGE
    try:
        config = ServeConfig(
            devices=args.devices,
            shards=args.shards,
            intervals=_serve_intervals(args),
            policy=args.policy,
            queue_capacity=args.capacity,
            batch_size=args.batch,
            drain_per_step=args.drain_per_step,
            p_percent=args.quantile,
            consecutive_for_alarm=args.alarm_consecutive,
            seed=args.seed,
            profiles=profiles,
            attacked_devices=args.attacks,
            attack_scenarios=tuple(args.scenario or sorted(_SCENARIOS)),
            train=FleetTrainSpec(
                runs=args.train_runs,
                intervals_per_run=args.train_intervals,
                validation_intervals=args.validation,
            ),
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            modality=args.modality,
            kernels_dtype=args.dtype,
            ensemble=EnsembleConfig(
                p_percent=args.quantile,
                mhm_share=args.mhm_share,
                rule=args.ensemble_rule,
            ),
            executor=args.executor,
            cadences=cadences,
            recalibration=RecalibrationPolicy(
                enabled=args.recalibrate,
                canary_intervals=args.canary_intervals,
            ),
            stall_timeout=args.stall_timeout or None,
        )
        telemetry = TelemetryConfig.from_current(
            metrics_dir=args.metrics_dir,
            metrics_interval=args.metrics_interval,
        )
        service = FleetService(
            config, fault_plan=fault_plan, telemetry=telemetry
        )
        report = service.run()
    except BusStallError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return ExitCode.BUS_STALL
    except (ValueError, KeyError) as exc:
        # KeyError: a budget split landing outside the calibrated
        # threshold banks (the detectors calibrate θ at fixed quantiles).
        print(f"error: {exc}", file=sys.stderr)
        return ExitCode.USAGE
    if args.failures_out:
        failures = (report.bus or {}).get("failures", [])
        with open(args.failures_out, "w") as handle:
            json.dump(failures, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if failures:
            print(
                f"warning: {len(failures)} poisoned subscriber(s) "
                f"-> {args.failures_out}",
                file=sys.stderr,
            )
    if args.report_out:
        report.write(args.report_out)
    if args.health_out:
        summary = write_health(args.health_out, report)
        if not summary["ready"]:
            failing = ", ".join(
                c["name"] for c in summary["checks"] if not c["ok"]
            )
            print(
                f"warning: health NOT ready (failing: {failing}) "
                f"-> {args.health_out}",
                file=sys.stderr,
            )
    if args.json:
        print(report.to_json())
    else:
        print(_render_fleet_report(report))
        footer = _render_telemetry_footer(obs.metrics().snapshot())
        if footer:
            print()
            print(footer)
    _obs_finish(
        args, "serve", seed=args.seed, intervals=config.intervals,
        devices=config.devices, shards=config.shards,
    )
    if report.dropped > 0:
        print(
            f"warning: {report.dropped} interval(s) dropped under "
            f"backpressure (policy={config.policy})",
            file=sys.stderr,
        )
        return ExitCode.SERVE_DEGRADED
    return ExitCode.OK


def _cmd_detect(args) -> int:
    """Replay one scenario and judge it under the chosen modality.

    Mirrors the conformance matrix's verdict rules: a modality
    "detects" when its post-injection per-interval flag rate clears the
    alert floor (5x the budget, min 10%), or — context/ensemble — when
    the phase-drift statistic exceeds its calibrated clean bound.
    Exits :data:`ExitCode.ALARM` on detection, OK on a miss.
    """
    scale = _SCALES[args.scale]
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    try:
        ensemble = EnsembleConfig(
            p_percent=args.quantile,
            mhm_share=args.mhm_share,
            rule=args.ensemble_rule,
        )
        artifacts = get_reference_artifacts(
            scale, seed=args.seed, cache=cache
        )
        outcome = run_scenario_experiment(
            make_attack(args.scenario),
            artifacts,
            scenario_seed=args.scenario_seed,
        )
        p = args.quantile
        modality = args.modality
        if modality == "ensemble":
            p_mhm, p_context = ensemble.p_mhm, ensemble.p_context
        else:
            p_mhm = p if modality == "mhm" else None
            p_context = p if modality == "contexts" else None
        mhm_flags = outcome.flags(p_mhm) if p_mhm is not None else None
        context_flags = (
            outcome.context_flags(p_context) if p_context is not None else None
        )
    except (ValueError, KeyError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return ExitCode.USAGE

    if mhm_flags is not None and context_flags is not None:
        if ensemble.rule == "or":
            fused = mhm_flags | context_flags
        elif ensemble.rule == "and":
            fused = mhm_flags & context_flags
        else:
            weight = ensemble.mhm_weight
            fused = (
                weight * mhm_flags + (1.0 - weight) * context_flags
            ) >= ensemble.vote_threshold
    else:
        fused = mhm_flags if mhm_flags is not None else context_flags

    mask = outcome.ground_truth
    rate = float(fused[mask].mean()) if mask.any() else 0.0
    floor = max(5.0 * p / 100.0, 0.10)
    drift_hit = (
        outcome.context_drift_exceeded if context_flags is not None else False
    )
    detected = rate >= floor or drift_hit
    report = {
        "scenario": args.scenario,
        "modality": modality,
        "p_percent": p,
        "detection_rate": rate,
        "alert_floor": floor,
        "context_drift_max": (
            outcome.context_drift_max if context_flags is not None else None
        ),
        "context_drift_bound": (
            outcome.context_drift_bound if context_flags is not None else None
        ),
        "drift_exceeded": drift_hit,
        "detected": detected,
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        rows = [[key, report[key]] for key in report]
        print(
            format_table(
                ["field", "value"],
                rows,
                title=f"detect: {args.scenario} x {modality}",
            )
        )
    _obs_finish(args, "detect", seed=args.seed, scenario=args.scenario)
    return ExitCode.ALARM if detected else ExitCode.OK


def _cmd_fleet_report(args) -> int:
    with open(args.report_json) as fh:
        payload = json.load(fh)
    try:
        report = FleetReport.from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        print(
            f"error: invalid fleet report {args.report_json}: {exc}",
            file=sys.stderr,
        )
        return ExitCode.USAGE
    if args.json:
        print(report.to_json())
    else:
        print(_render_fleet_report(report))
    return ExitCode.OK


_HANDLERS = {
    "train": _cmd_train,
    "monitor": _cmd_monitor,
    "attack": _cmd_attack,
    "detect": _cmd_detect,
    "experiments": _cmd_experiments,
    "bench": _cmd_bench,
    "cache": _cmd_cache,
    "heatmap": _cmd_heatmap,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "fleet-report": _cmd_fleet_report,
    "top": _cmd_top,
    "matrix": _cmd_matrix,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    enabled_here = _obs_requested(args)
    try:
        _check_output_paths(args)
        if enabled_here:
            # serve restricts the tracer to fleet-layer categories so a
            # long soak's trace stays bounded; single-device commands
            # keep the full simulator event stream.
            categories = (
                SERVE_TRACE_CATEGORIES if args.command == "serve" else None
            )
            obs.enable(trace_categories=categories)
            if getattr(args, "log", None):
                obs.logger().add_sink(obs.FileSink(args.log))
        return _HANDLERS[args.command](args)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return ExitCode.IO_ERROR
    finally:
        if enabled_here:
            obs.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface.

A small operational front-end so the library is usable without writing
Python — the workflow a deployment would actually script:

    # collect normal behaviour and train a detector
    python -m repro.cli train --runs 4 --intervals 200 --out detector.npz

    # score a fresh normal run against it
    python -m repro.cli monitor --detector detector.npz --intervals 100

    # replay one of the paper's attack scenarios and score it
    python -m repro.cli attack --detector detector.npz --scenario rootkit

    # inspect a single simulated heat map
    python -m repro.cli heatmap --interval-index 5
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .attacks import AppLaunchAttack, ShellcodeAttack, SyscallHijackRootkit
from .learn.detector import MhmDetector
from .pipeline.scenario import ScenarioRunner
from .pipeline.training import collect_training_data, train_detector
from .sim.platform import Platform, PlatformConfig
from .viz.ascii import render_heatmap, render_series
from .viz.tables import format_table

__all__ = ["main", "build_parser"]

_SCENARIOS = {
    "app-launch": lambda: AppLaunchAttack(),
    "shellcode": lambda: ShellcodeAttack(),
    "rootkit": lambda: SyscallHijackRootkit(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory Heat Map anomaly detection (DAC 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="collect normal MHMs and train a detector")
    train.add_argument("--runs", type=int, default=4, help="independent boots")
    train.add_argument(
        "--intervals", type=int, default=200, help="MHMs collected per boot"
    )
    train.add_argument(
        "--validation", type=int, default=200, help="held-out MHMs for thresholds"
    )
    train.add_argument("--gaussians", type=int, default=5, help="GMM components J")
    train.add_argument("--restarts", type=int, default=5, help="EM restarts")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", required=True, help="output .npz path")

    monitor = sub.add_parser("monitor", help="score a fresh normal run")
    monitor.add_argument("--detector", required=True, help="trained .npz detector")
    monitor.add_argument("--intervals", type=int, default=100)
    monitor.add_argument("--seed", type=int, default=12345)
    monitor.add_argument("--quantile", type=float, default=1.0, help="theta_p (%%)")

    attack = sub.add_parser("attack", help="replay a paper scenario and score it")
    attack.add_argument("--detector", required=True)
    attack.add_argument(
        "--scenario", choices=sorted(_SCENARIOS), default="rootkit"
    )
    attack.add_argument("--pre", type=int, default=100)
    attack.add_argument("--during", type=int, default=100)
    attack.add_argument("--seed", type=int, default=54321)
    attack.add_argument("--quantile", type=float, default=1.0)

    heatmap = sub.add_parser("heatmap", help="render one simulated MHM")
    heatmap.add_argument("--interval-index", type=int, default=0)
    heatmap.add_argument("--seed", type=int, default=2015)
    heatmap.add_argument("--width", type=int, default=92)

    return parser


def _cmd_train(args) -> int:
    data = collect_training_data(
        PlatformConfig(),
        runs=args.runs,
        intervals_per_run=args.intervals,
        validation_intervals=args.validation,
        base_seed=100 + args.seed,
    )
    detector = train_detector(
        data,
        num_gaussians=args.gaussians,
        em_restarts=args.restarts,
        seed=args.seed,
    )
    detector.save(args.out)
    print(
        format_table(
            ["quantity", "value"],
            [
                ["training MHMs", data.num_training],
                ["validation MHMs", data.num_validation],
                ["eigenmemories L'", detector.num_eigenmemories_],
                ["variance retained", f"{detector.eigenmemory.retained_variance_:.4%}"],
                ["GMM components J", detector.num_gaussians],
                ["theta_1 (log10)", f"{detector.log10_threshold(1.0):.2f}"],
                ["saved to", args.out],
            ],
            title="trained detector",
        )
    )
    return 0


def _cmd_monitor(args) -> int:
    detector = MhmDetector.load(args.detector)
    platform = Platform(PlatformConfig(seed=args.seed))
    series = platform.collect_intervals(args.intervals)
    densities = detector.log10_series(series)
    flags = detector.classify_series(series, p_percent=args.quantile)
    print(
        render_series(
            densities,
            thresholds={"theta": detector.log10_threshold(args.quantile)},
            height=12,
            width=90,
        )
    )
    print(
        f"{int(flags.sum())} of {len(flags)} intervals flagged "
        f"({flags.mean():.1%}) at theta_{args.quantile:g}"
    )
    return 0 if flags.mean() < 0.5 else 1


def _cmd_attack(args) -> int:
    detector = MhmDetector.load(args.detector)
    platform = Platform(PlatformConfig(seed=args.seed))
    result = ScenarioRunner(platform).run(
        _SCENARIOS[args.scenario](),
        pre_intervals=args.pre,
        attack_intervals=args.during,
    )
    densities = detector.log10_series(result.series)
    flags = detector.classify_series(result.series, p_percent=args.quantile)
    inject = result.attack_interval
    print(
        render_series(
            densities,
            thresholds={"theta": detector.log10_threshold(args.quantile)},
            events={"attack": inject},
            height=12,
            width=90,
        )
    )
    pre_fpr = float(flags[:inject].mean()) if inject else 0.0
    post_rate = float(flags[inject:].mean())
    print(
        format_table(
            ["quantity", "value"],
            [
                ["scenario", args.scenario],
                ["attack interval", inject],
                ["pre-attack FPR", f"{pre_fpr:.1%}"],
                ["post-attack flag rate", f"{post_rate:.1%}"],
            ],
        )
    )
    return 0


def _cmd_heatmap(args) -> int:
    platform = Platform(PlatformConfig(seed=args.seed))
    series = platform.collect_intervals(args.interval_index + 1)
    print(render_heatmap(series[args.interval_index], width=args.width, log_scale=True))
    return 0


_HANDLERS = {
    "train": _cmd_train,
    "monitor": _cmd_monitor,
    "attack": _cmd_attack,
    "heatmap": _cmd_heatmap,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Heat-map region specification.

A memory heat map (MHM) is defined in the paper (Section 2) by a triple:
the base address ``AddrBase``, the region size ``S`` and the granularity
``delta``.  These three parameters determine *where* and at *what detail*
the memory behaviour of the system is monitored.

The hardware (Section 3.1, "Address Filtering and Target Cell
Calculation") computes the target cell of a snooped address ``Addr*`` as::

    offset = Addr* - AddrBase          # (i)
    0 <= offset < S                    # (ii) otherwise drop
    idx = offset >> g,  g = log2(delta)  # (iii)

:class:`HeatMapSpec` is the single source of truth for that arithmetic;
both the software heat map (:mod:`repro.core.mhm`) and the Memometer
hardware model (:mod:`repro.hw.memometer`) delegate to it so the two can
never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HeatMapSpec"]


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class HeatMapSpec:
    """Immutable description of a monitored memory region.

    Parameters
    ----------
    base_address:
        First byte of the monitored region (``AddrBase`` in the paper).
    region_size:
        Size ``S`` of the region in bytes.  Need not be a multiple of the
        granularity; the last cell simply covers a partial range.
    granularity:
        Cell size ``delta`` in bytes.  Must be a power of two because the
        hardware computes the cell index with a logical right shift.

    Examples
    --------
    The paper's running example (Figure 1) monitors the Linux kernel
    ``.text`` segment:

    >>> spec = HeatMapSpec(base_address=0xC0008000,
    ...                    region_size=3_013_284, granularity=2048)
    >>> spec.num_cells
    1472
    >>> spec.shift
    11
    """

    base_address: int
    region_size: int
    granularity: int

    def __post_init__(self) -> None:
        if self.base_address < 0:
            raise ValueError(f"base_address must be >= 0, got {self.base_address:#x}")
        if self.region_size <= 0:
            raise ValueError(f"region_size must be > 0, got {self.region_size}")
        if not _is_power_of_two(self.granularity):
            raise ValueError(
                f"granularity must be a positive power of two, got {self.granularity}"
            )

    # ------------------------------------------------------------------
    # Derived parameters
    # ------------------------------------------------------------------
    @property
    def shift(self) -> int:
        """The shift amount ``g = log2(granularity)`` used by the hardware."""
        return self.granularity.bit_length() - 1

    @property
    def num_cells(self) -> int:
        """Number of cells ``L`` (the last cell may cover a partial range)."""
        return -(-self.region_size // self.granularity)

    @property
    def end_address(self) -> int:
        """One past the last monitored byte, ``AddrBase + S``."""
        return self.base_address + self.region_size

    # ------------------------------------------------------------------
    # Address arithmetic (the hardware formula)
    # ------------------------------------------------------------------
    def contains(self, address: int) -> bool:
        """Whether ``address`` falls inside the monitored region."""
        offset = address - self.base_address
        return 0 <= offset < self.region_size

    def cell_index(self, address: int) -> int:
        """Target cell index for an in-region address.

        Raises
        ------
        ValueError
            If the address is outside the monitored region.  The hardware
            silently drops such addresses; callers that want that
            behaviour should test :meth:`contains` first (or use the
            vectorised :meth:`cell_indices`).
        """
        offset = address - self.base_address
        if not 0 <= offset < self.region_size:
            raise ValueError(
                f"address {address:#x} outside region "
                f"[{self.base_address:#x}, {self.end_address:#x})"
            )
        return offset >> self.shift

    def cell_indices(self, addresses: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised address filter + cell calculation.

        Parameters
        ----------
        addresses:
            Integer array of snooped addresses.

        Returns
        -------
        (indices, in_region):
            ``in_region`` is a boolean mask of addresses that passed the
            filter; ``indices`` holds the cell index of each *accepted*
            address (``len(indices) == in_region.sum()``).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        offsets = addresses - self.base_address
        in_region = (offsets >= 0) & (offsets < self.region_size)
        indices = offsets[in_region] >> self.shift
        return indices, in_region

    def cell_start(self, index: int) -> int:
        """First address covered by cell ``index``."""
        self._check_index(index)
        return self.base_address + index * self.granularity

    def cell_range(self, index: int) -> tuple[int, int]:
        """Half-open address range ``[start, end)`` covered by a cell.

        The final cell is clipped to the region end when ``region_size``
        is not a multiple of the granularity.
        """
        start = self.cell_start(index)
        end = min(start + self.granularity, self.end_address)
        return start, end

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_cells:
            raise IndexError(f"cell index {index} out of range [0, {self.num_cells})")

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "base_address": self.base_address,
            "region_size": self.region_size,
            "granularity": self.granularity,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HeatMapSpec":
        return cls(
            base_address=int(data["base_address"]),
            region_size=int(data["region_size"]),
            granularity=int(data["granularity"]),
        )

    def with_granularity(self, granularity: int) -> "HeatMapSpec":
        """Same region observed at a different cell size."""
        return HeatMapSpec(self.base_address, self.region_size, granularity)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HeatMapSpec(base={self.base_address:#x}, size={self.region_size}, "
            f"delta={self.granularity}, cells={self.num_cells})"
        )

"""The Memory Heat Map data structure.

Section 2 of the paper: an MHM is "a concise data structure that
represents how many times a particular memory region was accessed
(regardless of which component accessed it) during a time interval".  It
is a vector ``M = [m_1, ..., m_L]`` of non-negative access counts, one
per cell of the monitored region.

This module holds the *software* representation used by the learning
pipeline.  The hardware counter array with its 32-bit saturation and
double buffering lives in :mod:`repro.hw.memometer`; it exports its
contents as a :class:`MemoryHeatMap`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from .spec import HeatMapSpec

__all__ = ["MemoryHeatMap"]


@dataclass
class MemoryHeatMap:
    """A vector of per-cell access counts for one monitoring interval.

    Parameters
    ----------
    spec:
        The region specification this map was recorded against.
    counts:
        Optional initial counts (length ``spec.num_cells``).  Copied.
    interval_index:
        Position of this map in the sequence of monitoring intervals
        (``-1`` when unknown, e.g. hand-built maps in tests).
    start_time_ns:
        Simulated start time of the monitoring interval.
    """

    spec: HeatMapSpec
    counts: np.ndarray = None  # type: ignore[assignment]
    interval_index: int = -1
    start_time_ns: int = 0

    def __post_init__(self) -> None:
        if self.counts is None:
            self.counts = np.zeros(self.spec.num_cells, dtype=np.int64)
        else:
            counts = np.asarray(self.counts, dtype=np.int64)
            if counts.shape != (self.spec.num_cells,):
                raise ValueError(
                    f"counts must have shape ({self.spec.num_cells},), "
                    f"got {counts.shape}"
                )
            if (counts < 0).any():
                raise ValueError("counts must be non-negative")
            self.counts = counts.copy()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, address: int, count: int = 1) -> bool:
        """Record ``count`` accesses to ``address``.

        Returns ``True`` if the address was inside the monitored region
        (out-of-region addresses are silently dropped, mirroring the
        hardware's address filter).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if not self.spec.contains(address):
            return False
        self.counts[self.spec.cell_index(address)] += count
        return True

    def record_many(
        self, addresses: np.ndarray, weights: Optional[np.ndarray] = None
    ) -> int:
        """Vectorised recording of a burst of addresses.

        Parameters
        ----------
        addresses:
            Integer array of accessed addresses.
        weights:
            Optional per-address access counts (defaults to 1 each).

        Returns
        -------
        int
            Number of accepted (in-region) *accesses* (i.e. the sum of
            accepted weights).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        indices, in_region = self.spec.cell_indices(addresses)
        if weights is None:
            accepted = int(in_region.sum())
            if accepted:
                self.counts += np.bincount(
                    indices, minlength=self.spec.num_cells
                ).astype(np.int64)
            return accepted
        weights = np.asarray(weights, dtype=np.int64)
        if weights.shape != addresses.shape:
            raise ValueError("weights must match addresses in shape")
        if (weights < 0).any():
            raise ValueError("weights must be non-negative")
        kept = weights[in_region]
        if kept.size:
            self.counts += np.bincount(
                indices, weights=kept, minlength=self.spec.num_cells
            ).astype(np.int64)
        return int(kept.sum())

    def record_range(self, start_address: int, length: int, stride: int = 4) -> int:
        """Record a linear sweep of fetches over ``[start, start+length)``.

        Models straight-line execution through a code range: one access
        every ``stride`` bytes.  Returns the number of accepted accesses.
        """
        if length <= 0:
            return 0
        addresses = np.arange(start_address, start_address + length, stride, dtype=np.int64)
        return self.record_many(addresses)

    def reset(self) -> None:
        """Zero all counts (the Memometer does this after analysis)."""
        self.counts[:] = 0

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return self.spec.num_cells

    @property
    def total_accesses(self) -> int:
        """Total traffic volume of the interval (Figure 9's y-axis)."""
        return int(self.counts.sum())

    @property
    def touched_cells(self) -> int:
        """Number of cells with at least one access."""
        return int((self.counts > 0).sum())

    def hottest_cells(self, k: int = 10) -> list[tuple[int, int]]:
        """The ``k`` most-accessed cells as ``(cell_index, count)`` pairs."""
        if k <= 0:
            return []
        k = min(k, self.num_cells)
        order = np.argsort(self.counts)[::-1][:k]
        return [(int(i), int(self.counts[i])) for i in order]

    def as_vector(self, dtype=np.float64) -> np.ndarray:
        """The count vector as a fresh array (the learning pipeline input)."""
        return self.counts.astype(dtype)

    # ------------------------------------------------------------------
    # Arithmetic (MHMs compose additively: Section 2's key idea)
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "MemoryHeatMap") -> None:
        if self.spec != other.spec:
            raise ValueError("heat maps recorded against different specs")

    def __add__(self, other: "MemoryHeatMap") -> "MemoryHeatMap":
        self._check_compatible(other)
        return MemoryHeatMap(self.spec, self.counts + other.counts)

    def __iadd__(self, other: "MemoryHeatMap") -> "MemoryHeatMap":
        self._check_compatible(other)
        self.counts += other.counts
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryHeatMap):
            return NotImplemented
        return self.spec == other.spec and bool(np.array_equal(self.counts, other.counts))

    def copy(self) -> "MemoryHeatMap":
        return MemoryHeatMap(
            self.spec,
            self.counts,
            interval_index=self.interval_index,
            start_time_ns=self.start_time_ns,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "counts": self.counts.tolist(),
            "interval_index": self.interval_index,
            "start_time_ns": self.start_time_ns,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MemoryHeatMap":
        return cls(
            spec=HeatMapSpec.from_dict(data["spec"]),
            counts=np.asarray(data["counts"], dtype=np.int64),
            interval_index=int(data.get("interval_index", -1)),
            start_time_ns=int(data.get("start_time_ns", 0)),
        )

    @classmethod
    def zeros(cls, spec: HeatMapSpec) -> "MemoryHeatMap":
        return cls(spec)

    @classmethod
    def stack(cls, maps: Iterable["MemoryHeatMap"]) -> np.ndarray:
        """Stack a sequence of MHMs into an ``(N, L)`` float matrix.

        This is the training-set matrix the learning pipeline consumes
        (Section 4.1's ``M = {M_1, ..., M_N}``).
        """
        maps = list(maps)
        if not maps:
            raise ValueError("cannot stack an empty sequence of heat maps")
        spec = maps[0].spec
        for m in maps[1:]:
            if m.spec != spec:
                raise ValueError("heat maps recorded against different specs")
        return np.stack([m.as_vector() for m in maps])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryHeatMap(cells={self.num_cells}, total={self.total_accesses}, "
            f"interval={self.interval_index})"
        )

"""Core data structures: the Memory Heat Map and its region spec."""

from .mhm import MemoryHeatMap
from .series import HeatMapSeries
from .spec import HeatMapSpec

__all__ = ["HeatMapSpec", "MemoryHeatMap", "HeatMapSeries"]

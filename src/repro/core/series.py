"""Ordered collections of heat maps.

A :class:`HeatMapSeries` is what one monitoring run produces: the MHM of
every monitoring interval, in order.  It is the unit the pipeline passes
around — a training run yields a series, an attack scenario yields a
series, and the detector scores a series interval by interval
(Figures 7, 8 and 10 are plots over exactly such a series).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from .mhm import MemoryHeatMap
from .spec import HeatMapSpec

__all__ = ["HeatMapSeries"]


class HeatMapSeries:
    """An ordered, spec-homogeneous sequence of :class:`MemoryHeatMap`.

    Supports list-style access, concatenation, slicing and conversion to
    the ``(N, L)`` training matrix used by :mod:`repro.learn`.
    """

    def __init__(self, spec: HeatMapSpec, maps: Optional[Iterable[MemoryHeatMap]] = None):
        self.spec = spec
        self._maps: list[MemoryHeatMap] = []
        if maps is not None:
            for m in maps:
                self.append(m)

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def append(self, heat_map: MemoryHeatMap) -> None:
        if heat_map.spec != self.spec:
            raise ValueError("heat map spec does not match the series spec")
        self._maps.append(heat_map)

    def extend(self, maps: Iterable[MemoryHeatMap]) -> None:
        for m in maps:
            self.append(m)

    def __len__(self) -> int:
        return len(self._maps)

    def __iter__(self) -> Iterator[MemoryHeatMap]:
        return iter(self._maps)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return HeatMapSeries(self.spec, self._maps[item])
        return self._maps[item]

    def __add__(self, other: "HeatMapSeries") -> "HeatMapSeries":
        if other.spec != self.spec:
            raise ValueError("cannot concatenate series with different specs")
        return HeatMapSeries(self.spec, list(self._maps) + list(other._maps))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def matrix(self, dtype=np.float64) -> np.ndarray:
        """Stack into the ``(N, L)`` matrix of Section 4.1."""
        if not self._maps:
            return np.empty((0, self.spec.num_cells), dtype=dtype)
        return np.stack([m.as_vector(dtype) for m in self._maps])

    def traffic_volumes(self) -> np.ndarray:
        """Per-interval total access counts (Figure 9's series)."""
        return np.array([m.total_accesses for m in self._maps], dtype=np.int64)

    def mean_map(self) -> MemoryHeatMap:
        """The empirical mean MHM ``Psi`` (rounded to integer counts)."""
        if not self._maps:
            raise ValueError("cannot take the mean of an empty series")
        mean = self.matrix().mean(axis=0)
        return MemoryHeatMap(self.spec, np.rint(mean).astype(np.int64))

    def split(self, fraction: float) -> tuple["HeatMapSeries", "HeatMapSeries"]:
        """Chronological split, e.g. train/validation for θ calibration."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        cut = int(round(len(self._maps) * fraction))
        cut = max(1, min(cut, len(self._maps) - 1)) if len(self._maps) >= 2 else cut
        return self[:cut], self[cut:]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Save to an ``.npz`` archive (counts matrix + spec + metadata)."""
        np.savez_compressed(
            path,
            counts=self.matrix(dtype=np.int64),
            base_address=self.spec.base_address,
            region_size=self.spec.region_size,
            granularity=self.spec.granularity,
            interval_index=np.array([m.interval_index for m in self._maps], dtype=np.int64),
            start_time_ns=np.array([m.start_time_ns for m in self._maps], dtype=np.int64),
        )

    @classmethod
    def load(cls, path) -> "HeatMapSeries":
        with np.load(path) as data:
            spec = HeatMapSpec(
                base_address=int(data["base_address"]),
                region_size=int(data["region_size"]),
                granularity=int(data["granularity"]),
            )
            counts = data["counts"]
            intervals = data["interval_index"]
            starts = data["start_time_ns"]
        series = cls(spec)
        for row, idx, start in zip(counts, intervals, starts):
            series.append(
                MemoryHeatMap(spec, row, interval_index=int(idx), start_time_ns=int(start))
            )
        return series

    @classmethod
    def from_matrix(
        cls, spec: HeatMapSpec, matrix: Sequence[Sequence[int]]
    ) -> "HeatMapSeries":
        """Build a series from a raw ``(N, L)`` count matrix (tests, docs)."""
        series = cls(spec)
        for i, row in enumerate(np.asarray(matrix, dtype=np.int64)):
            series.append(MemoryHeatMap(spec, row, interval_index=i))
        return series

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HeatMapSeries(n={len(self)}, cells={self.spec.num_cells})"

"""``repro top`` — a live terminal dashboard over metrics snapshots.

Points at the ``--metrics-dir`` a fleet serve is writing
(:class:`~repro.obs.snapshots.SnapshotWriter` files) and renders a
refresh-in-place view: per-shard throughput, queue depth, loss
counters, batch-latency quantiles, and a rolling stream of the most
recent alarm / drift / drop events.  Reads are snapshot-file based —
no socket, no shared memory — so ``repro top`` can watch a run in
another process, a container volume, or a CI artifact directory after
the fact (``--once`` renders a single frame and exits, which is what
the serve-soak job asserts on).
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional

from ..obs.snapshots import latest_snapshots

__all__ = ["render_top", "run_top"]

#: Alarm-stream rows shown per frame.
STREAM_ROWS = 10

_CLEAR = "\x1b[2J\x1b[H"


def _metric(metrics: dict, name: str, shard: int, key: str = "value", default=0):
    """A metric value, preferring the shard-labelled series."""
    for candidate in (f'{name}{{shard="{shard}"}}', name):
        data = metrics.get(candidate)
        if data is not None:
            return data.get(key, default)
    return default


def _quantiles(metrics: dict, name: str, shard: int) -> Dict[str, float]:
    for candidate in (f'{name}{{shard="{shard}"}}', name):
        data = metrics.get(candidate)
        if data is not None:
            return data.get("quantiles") or {}
    return {}


def _fmt_us(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1_000:
        return f"{value / 1_000:.1f}ms"
    return f"{value:.0f}µs"


def _shard_row(shard: int, snapshot: dict) -> List:
    metrics = snapshot.get("metrics", {})
    quantiles = _quantiles(metrics, "serve.shard.batch_latency_us", shard)
    sim_s = snapshot.get("sim_time_ns", 0) / 1e9
    return [
        shard,
        snapshot.get("step", 0),
        f"{sim_s:.2f}s",
        _metric(metrics, "serve.shard.intervals_scored", shard),
        _metric(metrics, "serve.shard.queue_depth", shard),
        _metric(metrics, "serve.queue.dropped", shard),
        _metric(metrics, "serve.intervals_skipped", shard),
        _metric(metrics, "serve.alarms", shard),
        _metric(metrics, "serve.drift.flagged", shard),
        _fmt_us(quantiles.get("p50")),
        _fmt_us(quantiles.get("p95")),
        _fmt_us(quantiles.get("p99")),
    ]


def _event_rows(snapshots: Dict[int, dict]) -> List[List]:
    merged: List[dict] = []
    for shard, snapshot in sorted(snapshots.items()):
        for record in snapshot.get("recent_events", []):
            entry = dict(record)
            entry.setdefault("shard", shard)
            merged.append(entry)
    merged.sort(key=lambda r: (r.get("sim_time_ns", 0), r.get("seq", 0)))
    rows = []
    for record in merged[-STREAM_ROWS:]:
        fields = record.get("fields", {})
        detail = " ".join(f"{k}={fields[k]}" for k in sorted(fields))
        rows.append(
            [
                f"{record.get('sim_time_ns', 0) / 1e9:.2f}s",
                record.get("shard", "-"),
                record.get("device_id", "-"),
                record.get("event", "?"),
                detail,
            ]
        )
    return rows


def render_top(snapshots: Dict[int, dict], source: str = "", width: int = 100) -> str:
    """One dashboard frame from the latest per-shard snapshots."""
    from .tables import format_table

    if not snapshots:
        return f"repro top — no snapshots yet under {source or '(no dir)'}\n"
    shard_rows = [
        _shard_row(shard, snapshot)
        for shard, snapshot in sorted(snapshots.items())
    ]
    total_scored = sum(row[3] for row in shard_rows)
    total_alarms = sum(row[7] for row in shard_rows)
    final = all(s.get("final") for s in snapshots.values())
    header = (
        f"repro top — {source}  "
        f"[shards: {len(snapshots)}  scored: {total_scored}  "
        f"alarms: {total_alarms}  {'final' if final else 'live'}]"
    )
    parts = [
        header[:width],
        "",
        format_table(
            [
                "shard", "step", "sim", "scored", "depth", "drop",
                "skip", "alarm", "drift", "p50", "p95", "p99",
            ],
            shard_rows,
            title="shards",
        ),
    ]
    event_rows = _event_rows(snapshots)
    if event_rows:
        parts.append("")
        parts.append(
            format_table(
                ["sim", "shard", "device", "event", "detail"],
                event_rows,
                title=f"recent events (last {len(event_rows)})",
            )
        )
    return "\n".join(parts) + "\n"


def run_top(
    directory,
    once: bool = False,
    interval: float = 2.0,
    width: int = 100,
    stream=None,
    max_frames: Optional[int] = None,
) -> int:
    """Render the dashboard; refresh in place until the run finalises.

    Returns the number of frames rendered.  ``max_frames`` bounds the
    loop for tests; the interactive loop stops on Ctrl-C or when every
    shard has written its final snapshot.
    """
    out = stream if stream is not None else sys.stdout
    frames = 0
    while True:
        snapshots = latest_snapshots(directory)
        frame = render_top(snapshots, source=str(directory), width=width)
        if not once and frames > 0:
            out.write(_CLEAR)
        out.write(frame)
        out.flush()
        frames += 1
        if once or (max_frames is not None and frames >= max_frames):
            return frames
        if snapshots and all(s.get("final") for s in snapshots.values()):
            return frames
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return frames

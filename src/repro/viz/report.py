"""Reproduction-report aggregation.

Every benchmark writes a paper-vs-measured text report into
``benchmarks/out/``.  :func:`build_report` stitches them into one
Markdown document (``REPORT.md``) in a stable order — the quick way to
eyeball the whole reproduction after ``pytest benchmarks/
--benchmark-only``.
"""

from __future__ import annotations

import pathlib
from typing import Optional, Sequence

__all__ = ["REPORT_ORDER", "build_report", "write_report"]

#: Canonical ordering of the per-benchmark reports.
REPORT_ORDER: tuple[str, ...] = (
    "test_fig1_example_mhm",
    "test_table_taskset",
    "test_sec52_training",
    "test_fig6_eigenmemory",
    "test_fig7_app_launch",
    "test_fig8_shellcode",
    "test_fig9_traffic_volume",
    "test_fig10_rootkit",
    "test_sec54_analysis_time",
    "test_ablation_placement",
    "test_ablation_granularity",
    "test_ablation_eigenmemories",
    "test_ablation_gmm_components",
    "test_ablation_interval",
    "test_ablation_baselines",
    "test_ablation_rtos",
    "test_ablation_smp",
    "test_ablation_localfeatures",
    "test_ablation_stealth",
    "test_ablation_temporal",
    "test_ablation_training_size",
    "test_obs_overhead",
)


def build_report(
    out_dir,
    order: Sequence[str] = REPORT_ORDER,
    title: str = "Memory Heat Map — reproduction report",
) -> str:
    """Concatenate the benchmark reports found in ``out_dir``.

    Reports listed in ``order`` come first (in that order); any extra
    ``.txt`` files in the directory are appended alphabetically.
    Missing reports are noted rather than failing, so a partial
    benchmark run still produces a useful document.
    """
    out_dir = pathlib.Path(out_dir)
    sections: list[str] = [f"# {title}", ""]
    seen = set()

    def add(name: str, path: Optional[pathlib.Path]) -> None:
        sections.append(f"## {name}")
        sections.append("")
        if path is None:
            sections.append("*(report not generated — benchmark not run)*")
        else:
            sections.append("```")
            sections.append(path.read_text().rstrip())
            sections.append("```")
        sections.append("")

    for name in order:
        path = out_dir / f"{name}.txt"
        seen.add(path.name)
        add(name, path if path.exists() else None)

    extras = sorted(
        p for p in out_dir.glob("*.txt") if p.name not in seen
    ) if out_dir.exists() else []
    for path in extras:
        add(path.stem, path)

    return "\n".join(sections)


def write_report(out_dir, destination) -> pathlib.Path:
    """Build the report and write it to ``destination``."""
    destination = pathlib.Path(destination)
    destination.write_text(build_report(out_dir))
    return destination

"""Plain-text table formatting for benchmark and example output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_metrics"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    string_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in string_rows)
    return "\n".join(parts)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_metrics(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as sectioned tables.

    One table per instrument kind (counters, gauges, histograms),
    each sorted by metric name; empty sections are omitted.
    """
    counters = []
    gauges = []
    histograms = []
    for name in sorted(snapshot):
        data = snapshot[name]
        kind = data.get("type")
        if kind == "counter":
            counters.append([name, data.get("value", 0)])
        elif kind == "gauge":
            gauges.append([name, data.get("value", 0.0)])
        elif kind == "histogram":
            histograms.append(
                [
                    name,
                    data.get("count", 0),
                    data.get("mean", 0.0),
                    data.get("min") if data.get("min") is not None else "-",
                    data.get("max") if data.get("max") is not None else "-",
                ]
            )

    sections = []
    if counters:
        sections.append(format_table(["counter", "value"], counters, title="counters"))
    if gauges:
        sections.append(format_table(["gauge", "value"], gauges, title="gauges"))
    if histograms:
        sections.append(
            format_table(
                ["histogram", "count", "mean", "min", "max"],
                histograms,
                title="histograms (µs unless noted)",
            )
        )
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)

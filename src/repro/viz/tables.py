"""Plain-text table formatting for benchmark and example output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    string_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in string_rows)
    return "\n".join(parts)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)

"""Terminal rendering helpers (heat maps, density traces, tables)."""

from .ascii import render_heatmap, render_series, render_sparkline
from .report import build_report, write_report
from .tables import format_table

__all__ = [
    "render_heatmap",
    "render_series",
    "render_sparkline",
    "format_table",
    "build_report",
    "write_report",
]

"""Terminal-friendly rendering of heat maps and density series.

The paper's 2-D heat-map pictures (Figure 1) are "for illustrative
purposes only" — an MHM is a vector.  These helpers give the examples
and benchmarks a way to *show* that vector (and the Figure 7/8/10
density traces) on a terminal, without any plotting dependency.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.mhm import MemoryHeatMap

__all__ = ["render_heatmap", "render_series", "render_sparkline"]

#: Shade ramp from cold to hot.
_SHADES = " .:-=+*#%@"


def _shade(value: float, maximum: float) -> str:
    if maximum <= 0 or value <= 0:
        return _SHADES[0]
    level = int(np.sqrt(value / maximum) * (len(_SHADES) - 1) + 0.5)
    return _SHADES[min(level, len(_SHADES) - 1)]


def render_heatmap(
    heat_map: MemoryHeatMap, width: int = 64, log_scale: bool = False
) -> str:
    """Render an MHM as a 2-D character grid (Figure 1 style).

    Cells are laid out row-major, ``width`` cells per row; intensity is
    a 10-level shade of the cell count (square-root scaled by default,
    logarithmic with ``log_scale``).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    counts = heat_map.as_vector()
    if log_scale:
        counts = np.log1p(counts)
    maximum = float(counts.max())
    rows = []
    for start in range(0, len(counts), width):
        chunk = counts[start : start + width]
        rows.append("".join(_shade(float(v), maximum) for v in chunk))
    header = (
        f"AddrBase {heat_map.spec.base_address:#x}  "
        f"S {heat_map.spec.region_size}  "
        f"delta {heat_map.spec.granularity}  "
        f"cells {heat_map.num_cells}  "
        f"total {heat_map.total_accesses}"
    )
    return header + "\n" + "\n".join(rows)


def render_sparkline(values: Sequence[float], width: int = 72) -> str:
    """One-line sparkline of a value series (resampled to ``width``)."""
    blocks = "▁▂▃▄▅▆▇█"
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return ""
    if values.size > width:
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array(
            [values[a:b].mean() for a, b in zip(edges[:-1], edges[1:])]
        )
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo
    if span <= 0:
        return blocks[0] * len(values)
    indices = ((values - lo) / span * (len(blocks) - 1)).astype(int)
    return "".join(blocks[i] for i in indices)


def render_series(
    values: Sequence[float],
    height: int = 12,
    width: int = 72,
    thresholds: Optional[dict[str, float]] = None,
    events: Optional[dict[str, int]] = None,
) -> str:
    """A character-cell line plot of a density/volume series.

    ``thresholds`` draws labelled horizontal lines (θ_p); ``events``
    draws labelled vertical markers at interval indices (attack
    injection, revert).  This is how the examples reproduce the look of
    Figures 7, 8 and 10 in a terminal.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    if n == 0:
        return ""
    if height < 3:
        raise ValueError("height must be >= 3")

    column_of = lambda i: min(width - 1, int(i / max(1, n) * width))
    resampled = np.full(width, np.nan)
    for column in range(width):
        lo = int(column * n / width)
        hi = max(lo + 1, int((column + 1) * n / width))
        resampled[column] = values[lo:hi].mean()

    all_levels = [v for v in resampled if np.isfinite(v)]
    if thresholds:
        all_levels.extend(thresholds.values())
    lo, hi = min(all_levels), max(all_levels)
    if hi - lo <= 0:
        hi = lo + 1.0
    row_of = lambda v: int((hi - v) / (hi - lo) * (height - 1) + 0.5)

    grid = [[" "] * width for _ in range(height)]
    for name, level in (thresholds or {}).items():
        r = min(height - 1, max(0, row_of(level)))
        for c in range(width):
            grid[r][c] = "-"
        label = name[: max(0, width - 1)]
        for j, ch in enumerate(label):
            if j < width:
                grid[r][j] = ch
    for name, index in (events or {}).items():
        c = column_of(index)
        for r in range(height):
            if grid[r][c] == " ":
                grid[r][c] = "|"
    for c, v in enumerate(resampled):
        if np.isfinite(v):
            grid[row_of(v)][c] = "*"

    axis = f"  y: [{lo:.1f}, {hi:.1f}]   x: 0..{n - 1}"
    return "\n".join("".join(row) for row in grid) + "\n" + axis

"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The sandbox has no `wheel` package, so PEP 660 editable installs fail;
this file lets pip fall back to `setup.py develop`.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()

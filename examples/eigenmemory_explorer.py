#!/usr/bin/env python
"""Explore eigenmemories: the primary activities of the kernel (Fig. 6).

PCA over normal heat maps extracts *eigenmemories* — the orthogonal
activity patterns whose weighted combination reconstructs any normal
MHM (paper Eq. 1, by analogy with eigenfaces).  This example fits the
transform, shows the variance spectrum, renders the leading
eigenmemories as heat maps over the kernel address space, and checks
which kernel subsystems each one loads on.

Run:  python examples/eigenmemory_explorer.py
"""

import numpy as np

from repro import MemoryHeatMap, Platform, PlatformConfig
from repro.learn.pca import Eigenmemory
from repro.sim.kernel.layout import KernelLayout
from repro.viz.ascii import render_heatmap, render_sparkline
from repro.viz.tables import format_table


def subsystem_loadings(component, spec, layout):
    """Aggregate an eigenmemory's |weight| per kernel subsystem."""
    totals = {}
    for index in np.argsort(np.abs(component))[::-1][:64]:
        start, _ = spec.cell_range(int(index))
        subsystem = layout.subsystem_of(start) or "?"
        totals[subsystem] = totals.get(subsystem, 0.0) + abs(float(component[index]))
    total = sum(totals.values()) or 1.0
    return sorted(
        ((s, v / total) for s, v in totals.items()), key=lambda kv: -kv[1]
    )


def main() -> None:
    config = PlatformConfig(seed=7)
    layout = KernelLayout()

    print("collecting 400 normal heat maps ...")
    training = Platform(config).collect_intervals(400)
    matrix = training.matrix()

    model = Eigenmemory(num_components=16).fit(matrix)
    ratios = model.explained_variance_ratio_
    print("\nvariance spectrum (first 16 eigenmemories):")
    print("  " + render_sparkline(np.sqrt(ratios), width=16))
    rows = [
        [k + 1, f"{r:.4%}", f"{np.cumsum(ratios)[k]:.4%}"]
        for k, r in enumerate(ratios)
    ]
    print(format_table(["u_k", "variance", "cumulative"], rows))

    auto = Eigenmemory(variance_target=0.9999).fit(matrix)
    print(
        f"\nthe paper's 99.99% rule keeps L' = {auto.num_components_} "
        f"eigenmemories (paper's traces gave 9)."
    )

    # Render the three leading eigenmemories as pseudo heat maps.
    spec = training.spec
    for k in range(3):
        component = model.components_[k]
        magnitude = np.abs(component)
        pseudo = MemoryHeatMap(
            spec, (magnitude / magnitude.max() * 1000).astype(np.int64)
        )
        print(f"\neigenmemory u_{k + 1} (|weight| over the kernel .text):")
        print(render_heatmap(pseudo, width=92))
        loadings = subsystem_loadings(component, spec, layout)
        summary = ", ".join(f"{s} {v:.0%}" for s, v in loadings[:4])
        print(f"  dominant subsystems: {summary}")

    # Reconstruction demo (Figure 6's equation).
    sample = matrix[123]
    weights = model.transform(sample[np.newaxis])[0]
    reconstructed = model.inverse_transform(weights)
    error = np.linalg.norm(sample - reconstructed) / np.linalg.norm(sample)
    print(
        f"\nreconstruction of one MHM from its 16 weights: "
        f"relative error {error:.2%}"
    )
    print(
        "weights:",
        ", ".join(f"{w:.0f}" for w in weights),
    )


if __name__ == "__main__":
    main()

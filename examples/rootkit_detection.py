#!/usr/bin/env python
"""Scenario 3 end-to-end: catching a kernel rootkit (Figures 9 + 10).

A loadable kernel module hijacks the ``read`` system call by patching
the syscall table.  The malicious wrapper lives in module space —
*outside* the monitored region — and chains to the original handler,
so after the load the memory **traffic volume is indistinguishable
from normal** (Figure 9).  The MHM detector still sees two things:

* the module *loader* runs inside the kernel .text — a massive,
  unmistakable spike at load time;
* the wrapper's per-call delay perturbs the timing of read-heavy tasks
  (sha above all), which shows up as intermittent low densities
  synchronised with sha's 100 ms period (Figure 10).

Run:  python examples/rootkit_detection.py
"""

import numpy as np

from repro import Platform, PlatformConfig
from repro.attacks import SyscallHijackRootkit
from repro.learn.baselines import TrafficVolumeDetector
from repro.pipeline import ScenarioRunner, collect_training_data, train_detector
from repro.viz.ascii import render_series
from repro.viz.tables import format_table


def main() -> None:
    config = PlatformConfig(seed=7)

    print("collecting normal training data (4 boots x 2 s) ...")
    data = collect_training_data(
        config, runs=4, intervals_per_run=200, validation_intervals=200
    )
    detector = train_detector(data, em_restarts=5, seed=0)
    volume_baseline = TrafficVolumeDetector(p_percent=0.5).fit(data.training)
    print(
        f"trained: L' = {detector.num_eigenmemories_}, "
        f"theta_1 = {detector.log10_threshold(1.0):.1f} log10\n"
    )

    print("running the rootkit scenario on a fresh boot ...")
    platform = Platform(config.with_seed(123))
    runner = ScenarioRunner(platform)
    result = runner.run(
        SyscallHijackRootkit(extra_latency_ns=25_000),
        pre_intervals=150,
        attack_intervals=250,
    )
    load = result.attack_interval

    densities = detector.log10_series(result.series)
    volumes = result.series.traffic_volumes().astype(float)
    mhm_flags = densities < detector.log10_threshold(1.0)
    volume_flags = volume_baseline.classify_series(result.series)

    print("\nFigure 9 — traffic volume (what a volume monitor sees):")
    print(render_series(volumes, events={"load": load}, height=10, width=96))

    print("\nFigure 10 — MHM log10 densities (what the paper's detector sees):")
    print(
        render_series(
            np.clip(densities, np.median(densities) - 60, None),
            thresholds={"t1": detector.log10_threshold(1.0)},
            events={"load": load},
            height=12,
            width=96,
        )
    )

    post = slice(load + 2, None)
    print()
    print(
        format_table(
            ["detector", "load spike caught", "post-load flags", "verdict"],
            [
                [
                    "traffic volume",
                    str(bool(volume_flags[load])),
                    f"{volume_flags[post].mean():.1%}",
                    "blind after the load (Figure 9)",
                ],
                [
                    "MHM + GMM",
                    str(bool(mhm_flags[load] or mhm_flags[load + 1])),
                    f"{mhm_flags[post].mean():.1%}",
                    "sees intermittent sha-synchronised drift (Figure 10)",
                ],
            ],
            title="rootkit detectability",
        )
    )

    flagged = np.flatnonzero(mhm_flags[post]) + load + 2
    if flagged.size:
        phases = np.bincount(flagged % 10, minlength=10)
        print(
            f"\npost-load MHM flags by 10-interval phase (sha period = "
            f"10 intervals): {phases.tolist()}"
        )
        print(
            "the flags cluster on the phase where sha executes — the "
            "paper's Section 5.3 observation."
        )


if __name__ == "__main__":
    main()

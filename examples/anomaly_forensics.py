#!/usr/bin/env python
"""Anomaly forensics: from a flagged interval to kernel symbols.

The detector says *when* something is wrong; this example shows the
library answering *what*: the deviation of a flagged MHM from its
nearest normal pattern is attributed cell by cell and translated back
into kernel functions through the layout.  The rootkit's load interval
should point straight at the module loader; the qsort launch at the
fork/exec path.

Run:  python examples/anomaly_forensics.py
"""

from repro import Platform, PlatformConfig
from repro.analysis import explain_heatmap
from repro.attacks import AppLaunchAttack, SyscallHijackRootkit
from repro.pipeline import collect_training_data, train_detector
from repro.sim.kernel.layout import KernelLayout


def main() -> None:
    config = PlatformConfig(seed=7)
    layout = KernelLayout()

    print("training the reference detector ...")
    data = collect_training_data(
        config, runs=4, intervals_per_run=200, validation_intervals=200
    )
    detector = train_detector(data, em_restarts=5, seed=0)

    platform = Platform(config.with_seed(999))
    platform.run_intervals(50)

    print("\n--- a normal interval -------------------------------------")
    normal_map = platform.collect_intervals(1)[0]
    print(explain_heatmap(detector, normal_map, layout, top_k=5).render())

    print("\n--- the rootkit load interval ------------------------------")
    rootkit = SyscallHijackRootkit()
    rootkit.inject(platform)
    load_map = platform.collect_intervals(1)[0]
    print(explain_heatmap(detector, load_map, layout, top_k=8).render())
    rootkit.revert(platform)
    platform.run_intervals(20)

    print("\n--- the qsort launch interval ------------------------------")
    AppLaunchAttack().inject(platform)
    launch_map = platform.collect_intervals(1)[0]
    print(explain_heatmap(detector, launch_map, layout, top_k=8).render())

    print(
        "\nthe forensic trail matches the ground truth: the load interval"
        "\nattributes to the module-loader path (load_module, relocations),"
        "\nthe launch interval to fork/execve and the ELF loader."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Scenario 2 end-to-end: detecting shellcode execution (Figure 8).

The simulated payload reproduces shell-storm #669 (Linux/ARM): it
writes ``0`` to ``/proc/sys/kernel/randomize_va_space`` — disabling
ASLR — then spawns a shell, killing its host application (bitcount).
The kernel-side footprint of those actions, and above all the
permanent disappearance of bitcount's periodic jobs, shifts the MHM
composition for good: densities drop at the attack and never recover.

Run:  python examples/shellcode_detection.py
"""

import numpy as np

from repro import Platform, PlatformConfig
from repro.attacks import ShellcodeAttack
from repro.learn.metrics import detection_latency, roc_auc_from_scores
from repro.pipeline import ScenarioRunner, collect_training_data, train_detector
from repro.viz.ascii import render_series


def main() -> None:
    config = PlatformConfig(seed=7)

    print("collecting normal training data ...")
    data = collect_training_data(
        config, runs=4, intervals_per_run=200, validation_intervals=200
    )
    detector = train_detector(data, em_restarts=5, seed=0)
    theta_1 = detector.log10_threshold(1.0)
    print(f"trained; theta_1 = {theta_1:.1f} log10\n")

    print("injecting the shellcode into bitcount on a fresh boot ...")
    platform = Platform(config.with_seed(321))
    result = ScenarioRunner(platform).run(
        ShellcodeAttack(host="bitcount"),
        pre_intervals=150,
        attack_intervals=150,
    )
    inject = result.attack_interval

    # The semantic payload effects, verifiable in the simulator:
    print(f"ASLR after attack      : {'on' if platform.kernel.aslr.enabled else 'OFF'}")
    print(f"bitcount still running : {'bitcount' in platform.scheduler.task_names}")
    print(f"shell process spawned  : {'sh' in platform.processes.alive_processes()}")

    densities = detector.log10_series(result.series)
    flags = densities < theta_1
    truth = result.ground_truth()

    print("\nFigure 8 — log10 Pr(M):")
    print(
        render_series(
            np.clip(densities, np.median(densities) - 80, None),
            thresholds={"t1": theta_1},
            events={"shellcode": inject},
            height=12,
            width=96,
        )
    )
    print()
    print(f"pre-attack false positives : {flags[:inject].sum()} / {inject}")
    print(
        f"post-attack flagged        : {flags[inject:].sum()} / "
        f"{len(flags) - inject} ({flags[inject:].mean():.0%})"
    )
    print(
        f"detection latency          : "
        f"{detection_latency(flags, inject)} intervals "
        f"({detection_latency(flags, inject) * 10} ms)"
    )
    print(
        f"score separability (AUC)   : "
        f"{roc_auc_from_scores(-densities, truth):.3f}"
    )
    print(
        "\nthe paper's takeaway: 'most shellcodes can be detected because "
        "they typically kill the host process by spawning a shell.'"
    )


if __name__ == "__main__":
    main()

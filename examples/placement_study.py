#!/usr/bin/env python
"""Memometer placement study (the paper's Limitation section, 5.5).

The paper snoops the address line *between the core and L1* because a
snoop point below the cache loses every access that hits.  Section 5.5
considers moving the Memometer to the shared cache or bus ("we would
need only a single Memometer") and conjectures a modest accuracy drop.

This study measures the trade-off on the simulator: traffic retention,
heat-map shape, normal-state false positives and rootkit-load
detection at all three snoop points.

Run:  python examples/placement_study.py
"""

from repro import MhmDetector, Platform, PlatformConfig
from repro.attacks import SyscallHijackRootkit
from repro.viz.tables import format_table


def evaluate(placement: str) -> list:
    config = PlatformConfig(seed=50, placement=placement)
    training = Platform(config).collect_intervals(200)
    validation = Platform(config.with_seed(51)).collect_intervals(150)
    detector = MhmDetector(em_restarts=3, seed=0).fit(training, validation)

    test_platform = Platform(config.with_seed(52))
    normal = test_platform.collect_intervals(80)
    fpr = detector.classify_series(normal, p_percent=1.0).mean()

    SyscallHijackRootkit().inject(test_platform)
    window = test_platform.collect_intervals(3)
    load_caught = detector.classify_series(window, p_percent=1.0).any()

    volumes = training.traffic_volumes()
    touched = training.matrix().astype(bool).sum(axis=1).mean()
    return [
        placement,
        f"{volumes.mean():,.0f}",
        f"{touched:.0f}",
        f"{fpr:.1%}",
        "yes" if load_caught else "NO",
    ]


def main() -> None:
    rows = [evaluate(p) for p in ("pre-l1", "post-l1", "post-l2")]
    print(
        format_table(
            [
                "snoop point",
                "accesses / interval",
                "touched cells",
                "normal FPR @ theta_1",
                "rootkit load caught",
            ],
            rows,
            title="Memometer placement study (Section 5.5)",
        )
    )
    print(
        "\nreading: pre-L1 (the paper's design) sees the full fetch\n"
        "stream; one level down the stream thins but gross anomalies\n"
        "are still caught; below the shared L2 the kernel's hot set\n"
        "fits in cache and the steady-state signal almost vanishes —\n"
        "for this region size, the 'simpler' bus-level Memometer would\n"
        "cost real accuracy, which is why the paper snoops pre-L1."
    )


if __name__ == "__main__":
    main()

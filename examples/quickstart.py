#!/usr/bin/env python
"""Quickstart: train the MHM detector and catch an anomaly.

This is the smallest end-to-end tour of the library:

1. boot the simulated dual-core platform (Section 5.1's prototype:
   synthetic Linux-3.4 kernel, MiBench task set at 78 % utilisation,
   Memometer snooping the kernel .text segment at 2 KB granularity);
2. collect normal memory heat maps and train the eigenmemory + GMM
   detector (Section 4);
3. monitor a fresh boot — normal behaviour scores above theta_1;
4. launch an unexpected application and watch the densities collapse.

Run:  python examples/quickstart.py
"""

from repro import MhmDetector, Platform, PlatformConfig
from repro.sim.workloads import qsort_task
from repro.viz.ascii import render_heatmap, render_series

TRAIN_INTERVALS = 300  # 3 s of 10 ms heat maps
MONITOR_INTERVALS = 60


def main() -> None:
    # 1. Boot and look at one heat map -------------------------------
    config = PlatformConfig(seed=7)
    platform = Platform(config)
    first = platform.collect_intervals(1)[0]
    print("One 10 ms memory heat map of the kernel .text segment:")
    print(render_heatmap(first, width=92, log_scale=True))
    print()

    # 2. Train on normal behaviour ------------------------------------
    training = platform.collect_intervals(TRAIN_INTERVALS)
    validation = Platform(config.with_seed(8)).collect_intervals(150)
    detector = MhmDetector(seed=0).fit(training, validation)
    print(
        f"trained: L' = {detector.num_eigenmemories_} eigenmemories "
        f"({detector.eigenmemory.retained_variance_:.4%} variance), "
        f"J = {detector.num_gaussians} Gaussians"
    )
    print(
        f"thresholds: theta_0.5 = {detector.log10_threshold(0.5):.1f}, "
        f"theta_1 = {detector.log10_threshold(1.0):.1f}  (log10 density)"
    )
    print()

    # 3. Monitor a fresh, normal boot ---------------------------------
    monitor = Platform(config.with_seed(99))
    normal = monitor.collect_intervals(MONITOR_INTERVALS)
    normal_flags = detector.classify_series(normal, p_percent=1.0)
    print(
        f"fresh normal boot: {normal_flags.sum()} of {len(normal)} intervals "
        f"flagged ({normal_flags.mean():.1%} false-positive rate)"
    )

    # 4. Launch an unexpected application -----------------------------
    monitor.processes.launch(qsort_task())
    attacked = monitor.collect_intervals(MONITOR_INTERVALS)
    attack_flags = detector.classify_series(attacked, p_percent=1.0)
    print(
        f"after launching qsort: {attack_flags.sum()} of {len(attacked)} "
        f"intervals flagged ({attack_flags.mean():.1%})"
    )
    print()

    densities = detector.log10_series(normal + attacked)
    print("log10 Pr(M) across the monitored window (| = qsort launch):")
    print(
        render_series(
            densities,
            thresholds={"t1": detector.log10_threshold(1.0)},
            events={"launch": MONITOR_INTERVALS},
            height=12,
            width=96,
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Tour of the scaling extensions: SMP platforms and RTOS mode.

The paper's Limitation section (5.5) sketches how the architecture
scales to more cores — for SMP, one set of MHM memories with the snoop
logic replicated per core — and its conclusion (Section 7) predicts
the technique works even better on an RTOS, whose memory behaviour is
more deterministic.  Both are implemented; this example walks through
them.

Run:  python examples/smp_rtos_tour.py
"""

import numpy as np

from repro import MhmDetector, Platform, PlatformConfig
from repro.attacks import SyscallHijackRootkit
from repro.sim.smp import partition_tasks, per_core_utilization
from repro.sim.workloads import paper_taskset, rtos_config
from repro.sim.workloads.mibench import crc32_task, dijkstra_task
from repro.viz.tables import format_table


def smp_demo() -> None:
    print("=" * 68)
    print("SMP: six tasks partitioned across two monitored cores")
    print("=" * 68)
    tasks = partition_tasks(paper_taskset() + [crc32_task(), dijkstra_task()], 2)
    loads = per_core_utilization(tasks, 2)
    print(
        format_table(
            ["task", "exec", "period", "core"],
            [
                [t.name, f"{t.exec_time_ns / 1e6:g} ms", f"{t.period_ns / 1e6:g} ms", t.core]
                for t in tasks
            ],
            title=f"worst-fit-decreasing partition (loads: "
            f"{loads[0]:.2f} / {loads[1]:.2f})",
        )
    )

    config = PlatformConfig(seed=31, monitored_cores=2, tasks=tuple(tasks))
    training = Platform(config).collect_intervals(250)
    validation = Platform(config.with_seed(32)).collect_intervals(150)
    detector = MhmDetector(em_restarts=3, seed=0).fit(training, validation)

    live = Platform(config.with_seed(33))
    normal = live.collect_intervals(80)
    print(
        f"\nsingle Memometer aggregating both cores: "
        f"{training.traffic_volumes().mean():,.0f} accesses/interval"
    )
    print(
        f"normal FPR on a fresh SMP boot: "
        f"{detector.classify_series(normal, 1.0).mean():.1%}"
    )
    SyscallHijackRootkit().inject(live)
    spike = live.collect_intervals(2)
    print(
        f"rootkit load caught on the shared MHM stream: "
        f"{bool(detector.classify_series(spike, 1.0).any())}"
    )


def rtos_demo() -> None:
    print()
    print("=" * 68)
    print("RTOS mode: harmonic, memory-locked, deterministic kernel paths")
    print("=" * 68)
    rows = []
    for label, config in (
        ("Linux-like", PlatformConfig(seed=41)),
        ("RTOS-like", rtos_config(seed=41)),
    ):
        series = Platform(config).collect_intervals(150)
        matrix = series.matrix()
        mean = matrix.mean(axis=0)
        hot = mean > 10
        spread = float((matrix.std(axis=0)[hot] / mean[hot]).mean())
        volumes = series.traffic_volumes()
        rows.append(
            [
                label,
                f"{volumes.mean():,.0f}",
                f"{np.std(volumes) / np.mean(volumes):.1%}",
                f"{spread:.1%}",
            ]
        )
    print(
        format_table(
            [
                "platform",
                "accesses / interval",
                "volume variation",
                "hot-cell relative spread",
            ],
            rows,
            title="normal-behaviour tightness (lower = easier to model)",
        )
    )
    print(
        "\nthe RTOS platform's maps are measurably tighter — the paper's\n"
        "Section 7 expectation ('our techniques will be even more\n"
        "effective') — see benchmarks/test_ablation_rtos.py for the\n"
        "head-to-head detection comparison."
    )


if __name__ == "__main__":
    smp_demo()
    rtos_demo()

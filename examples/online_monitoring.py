#!/usr/bin/env python
"""Run-time monitoring on the secure core (Figure 2's loop).

The previous examples score heat maps *offline*.  This one runs the
paper's actual deployment model: the trained detector sits on the
secure core and scores each MHM the moment the Memometer completes it,
with an alarm policy on top (K consecutive abnormal intervals), while
attacks hit the system live.

Run:  python examples/online_monitoring.py
"""

from repro import Platform, PlatformConfig
from repro.attacks import AppLaunchAttack, SyscallHijackRootkit
from repro.pipeline import OnlineMonitor, collect_training_data, train_detector


def main() -> None:
    config = PlatformConfig(seed=7)

    print("training the reference detector ...")
    data = collect_training_data(
        config, runs=4, intervals_per_run=200, validation_intervals=200
    )
    detector = train_detector(data, em_restarts=5, seed=0)

    platform = Platform(config.with_seed(2024))
    monitor = OnlineMonitor(
        platform, detector, p_percent=1.0, consecutive_for_alarm=2
    )

    def show(label, report):
        alarm = report.first_alarm_interval()
        print(
            f"{label:<28} {report.intervals:4d} intervals | "
            f"{report.flagged:3d} flagged ({report.flag_rate:5.1%}) | "
            f"alarms {len(report.alarms)}"
            + (f" (first at interval {alarm})" if alarm is not None else "")
        )

    print(
        f"\nsecure-core analysis budget: "
        f"{detector.num_eigenmemories_} eigenmemories, "
        f"{detector.num_gaussians} Gaussians -> "
        f"{platform.secure_core.timing.analysis_time_us(platform.spec.num_cells, detector.num_eigenmemories_, detector.num_gaussians):.0f} us "
        f"per 10 ms interval"
    )
    print()

    # Phase 1: quiet system.
    show("normal operation", monitor.monitor(150))

    # Phase 2: an operator (or attacker) launches qsort.
    qsort = AppLaunchAttack()
    qsort.inject(platform)
    show("qsort running", monitor.monitor(120))

    # Phase 3: qsort exits; the system should go quiet again.
    qsort.revert(platform)
    show("after qsort exit", monitor.monitor(120))

    # Phase 4: the rootkit loads.
    SyscallHijackRootkit().inject(platform)
    show("rootkit loaded", monitor.monitor(120))

    print(
        "\nalarm log (interval, time, consecutive abnormal, log density):"
    )
    for alarm in monitor.alarms:
        print(
            f"  interval {alarm.interval_index:4d}  "
            f"t={alarm.time_ns / 1e9:6.2f}s  "
            f"streak={alarm.consecutive}  "
            f"ln Pr={alarm.log_density:9.1f}"
        )


if __name__ == "__main__":
    main()

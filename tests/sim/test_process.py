"""Tests for the process lifecycle manager."""

import pytest

from repro.sim.engine import NS_PER_MS
from repro.sim.workloads.mibench import qsort_task


class TestLaunch:
    def test_launch_emits_fork_exec(self, platform):
        platform.run_for(5 * NS_PER_MS)
        before_fork = platform.kernel.invocation_count("syscall.fork")
        record = platform.processes.launch(qsort_task())
        assert platform.kernel.invocation_count("syscall.fork") == before_fork + 1
        assert platform.kernel.invocation_count("syscall.execve") >= 1
        assert record.alive
        assert record.pid >= 100

    def test_launched_task_joins_schedule(self, platform):
        platform.run_for(5 * NS_PER_MS)
        platform.processes.launch(qsort_task())
        assert "qsort" in platform.scheduler.task_names
        platform.run_for(100 * NS_PER_MS)
        assert platform.scheduler.task("qsort").stats.completions >= 2

    def test_first_release_defaults_to_one_period(self, platform):
        platform.run_for(5 * NS_PER_MS)
        platform.processes.launch(qsort_task())
        platform.run_for(20 * NS_PER_MS)  # < one 30 ms period
        assert platform.scheduler.task("qsort").stats.releases == 0
        platform.run_for(15 * NS_PER_MS)
        assert platform.scheduler.task("qsort").stats.releases == 1

    def test_double_launch_rejected(self, platform):
        platform.processes.launch(qsort_task())
        with pytest.raises(ValueError, match="already running"):
            platform.processes.launch(qsort_task())

    def test_cold_start_page_faults(self, platform):
        before = platform.kernel.invocation_count("kernel.page_fault")
        platform.processes.launch(qsort_task())
        assert platform.kernel.invocation_count("kernel.page_fault") > before

    def test_aslr_recorded_at_launch(self, platform):
        record = platform.processes.launch(qsort_task())
        assert record.aslr_randomized
        platform.kernel.aslr.sysctl_write(0)
        record2 = platform.processes.launch(_renamed(qsort_task(), "qsort2"))
        assert not record2.aslr_randomized


def _renamed(task, name):
    from dataclasses import replace

    return replace(task, name=name)


class TestKill:
    def test_kill_launched_process(self, platform):
        platform.processes.launch(qsort_task())
        platform.run_for(100 * NS_PER_MS)
        before_exit = platform.kernel.invocation_count("syscall.exit_group")
        record = platform.processes.kill("qsort")
        assert not record.alive
        assert "qsort" not in platform.scheduler.task_names
        assert platform.kernel.invocation_count("syscall.exit_group") == before_exit + 1

    def test_kill_boot_task(self, platform):
        """Tasks admitted at boot can be killed too (the shellcode path)."""
        record = platform.processes.kill("bitcount")
        assert not record.alive
        assert "bitcount" not in platform.scheduler.task_names

    def test_kill_unknown_rejected(self, platform):
        with pytest.raises(KeyError):
            platform.processes.kill("ghost")

    def test_double_kill_rejected(self, platform):
        platform.processes.kill("bitcount")
        with pytest.raises(KeyError):
            platform.processes.kill("bitcount")


class TestShell:
    def test_spawn_shell_is_aperiodic(self, platform):
        tasks_before = set(platform.scheduler.task_names)
        record = platform.processes.spawn_shell()
        assert record.alive
        assert set(platform.scheduler.task_names) == tasks_before

    def test_alive_processes_listing(self, platform):
        platform.processes.launch(qsort_task())
        platform.processes.spawn_shell()
        alive = platform.processes.alive_processes()
        assert "qsort" in alive
        assert "sh" in alive
